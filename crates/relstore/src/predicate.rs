//! Boolean predicates over universal-relation tuples.
//!
//! Query selections (the `WHERE` clauses of the aggregate sub-queries
//! `q_1, …, q_m`) are arbitrary boolean combinations of atomic comparisons
//! `[R.A op c]`. Candidate explanations use only the conjunctive fragment
//! ([`Conjunction`]); Definition 2.3 restricts explanation atoms to
//! `{=, <, ≤, >, ≥}` on single attributes.
//!
//! Null semantics: any comparison involving `NULL` is *false* (two-valued
//! logic). The paper's candidate explanations are equalities against
//! constants drawn from the data, so three-valued logic never becomes
//! observable; selections in the experiments likewise never compare nulls.

use crate::database::Database;
use crate::schema::AttrRef;
use crate::value::Value;
use std::fmt;

/// Comparison operator of an atomic predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate `lhs op rhs` under two-valued null semantics.
    #[inline]
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        if lhs.is_null() || rhs.is_null() {
            return false;
        }
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// An atomic predicate `[R.A op c]` (Definition 2.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The attribute compared.
    pub attr: AttrRef,
    /// The comparison operator.
    pub op: CmpOp,
    /// The constant compared against.
    pub value: Value,
}

impl Atom {
    /// Equality atom.
    pub fn eq(attr: AttrRef, value: impl Into<Value>) -> Atom {
        Atom {
            attr,
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// Evaluate against a universal tuple (one row index per relation).
    #[inline]
    pub fn eval(&self, db: &Database, utuple: &[u32]) -> bool {
        let row = utuple[self.attr.rel] as usize;
        self.op.eval(db.value(self.attr, row), &self.value)
    }

    /// Evaluate against a single row of the atom's own relation.
    #[inline]
    pub fn eval_row(&self, db: &Database, row: usize) -> bool {
        self.op.eval(db.value(self.attr, row), &self.value)
    }

    /// Render with schema names.
    pub fn display<'a>(&'a self, db: &'a Database) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Atom, &'a Database);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(
                    f,
                    "[{} {} {}]",
                    self.1.schema().attr_name(self.0.attr),
                    self.0.op,
                    self.0.value
                )
            }
        }
        D(self, db)
    }
}

/// A conjunction of atoms — the shape of a candidate explanation
/// (Definition 2.3). The empty conjunction is `true`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Conjunction {
    /// The conjuncts.
    pub atoms: Vec<Atom>,
}

impl Conjunction {
    /// The empty (always-true) conjunction.
    pub fn trivial() -> Conjunction {
        Conjunction { atoms: Vec::new() }
    }

    /// A conjunction from atoms.
    pub fn new(atoms: Vec<Atom>) -> Conjunction {
        Conjunction { atoms }
    }

    /// Evaluate against a universal tuple.
    #[inline]
    pub fn eval(&self, db: &Database, utuple: &[u32]) -> bool {
        self.atoms.iter().all(|a| a.eval(db, utuple))
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether this is the trivial explanation (matches every tuple).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Promote to a general [`Predicate`].
    pub fn to_predicate(&self) -> Predicate {
        Predicate::And(self.atoms.iter().cloned().map(Predicate::Atom).collect())
    }
}

/// A boolean predicate expression over universal tuples.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// An atomic comparison.
    Atom(Atom),
    /// Conjunction of sub-predicates (empty = true).
    And(Vec<Predicate>),
    /// Disjunction of sub-predicates (empty = false).
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Equality atom shortcut.
    pub fn eq(attr: AttrRef, value: impl Into<Value>) -> Predicate {
        Predicate::Atom(Atom::eq(attr, value))
    }

    /// Comparison atom shortcut.
    pub fn cmp(attr: AttrRef, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::Atom(Atom {
            attr,
            op,
            value: value.into(),
        })
    }

    /// `attr BETWEEN lo AND hi` (inclusive), as used by the paper's year
    /// ranges (`2000 <= z.year AND z.year <= 2004`).
    pub fn between(attr: AttrRef, lo: impl Into<Value>, hi: impl Into<Value>) -> Predicate {
        Predicate::And(vec![
            Predicate::cmp(attr, CmpOp::Ge, lo),
            Predicate::cmp(attr, CmpOp::Le, hi),
        ])
    }

    /// Conjunction shortcut.
    pub fn and(parts: impl IntoIterator<Item = Predicate>) -> Predicate {
        Predicate::And(parts.into_iter().collect())
    }

    /// Disjunction shortcut.
    pub fn or(parts: impl IntoIterator<Item = Predicate>) -> Predicate {
        Predicate::Or(parts.into_iter().collect())
    }

    /// Negation shortcut.
    #[allow(clippy::should_implement_trait)]
    pub fn not(p: Predicate) -> Predicate {
        Predicate::Not(Box::new(p))
    }

    /// Evaluate against a universal tuple (one row index per relation).
    pub fn eval(&self, db: &Database, utuple: &[u32]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Atom(a) => a.eval(db, utuple),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(db, utuple)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(db, utuple)),
            Predicate::Not(p) => !p.eval(db, utuple),
        }
    }

    /// The attributes mentioned anywhere in the predicate.
    pub fn attrs(&self) -> Vec<AttrRef> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_attrs(&self, out: &mut Vec<AttrRef>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Atom(a) => out.push(a.attr),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_attrs(out);
                }
            }
            Predicate::Not(p) => p.collect_attrs(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    fn db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("R", &[("year", T::Int), ("venue", T::Str)], &["year"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R", vec![2001.into(), "SIGMOD".into()]).unwrap();
        db.insert("R", vec![2011.into(), "VLDB".into()]).unwrap();
        db.insert("R", vec![Value::Null, "PODS".into()]).unwrap();
        db
    }

    fn year(db: &Database) -> AttrRef {
        db.schema().attr("R", "year").unwrap()
    }
    fn venue(db: &Database) -> AttrRef {
        db.schema().attr("R", "venue").unwrap()
    }

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Eq.eval(&Value::Int(1), &Value::Int(1)));
        assert!(CmpOp::Ne.eval(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Le.eval(&Value::Int(2), &Value::Int(2)));
        assert!(CmpOp::Gt.eval(&Value::str("b"), &Value::str("a")));
        assert!(CmpOp::Ge.eval(&Value::Float(2.0), &Value::Int(2)));
    }

    #[test]
    fn null_comparisons_are_false() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert!(!op.eval(&Value::Null, &Value::Int(1)));
            assert!(!op.eval(&Value::Int(1), &Value::Null));
            assert!(!op.eval(&Value::Null, &Value::Null));
        }
    }

    #[test]
    fn atom_eval_over_rows() {
        let db = db();
        let a = Atom::eq(venue(&db), "SIGMOD");
        assert!(a.eval_row(&db, 0));
        assert!(!a.eval_row(&db, 1));
        assert!(a.eval(&db, &[0]));
    }

    #[test]
    fn between_and_boolean_combinators() {
        let db = db();
        let p = Predicate::and([
            Predicate::between(year(&db), 2000, 2004),
            Predicate::eq(venue(&db), "SIGMOD"),
        ]);
        assert!(p.eval(&db, &[0]));
        assert!(!p.eval(&db, &[1]));
        // Null year falls outside every range.
        assert!(!p.eval(&db, &[2]));

        let q = Predicate::or([
            Predicate::eq(venue(&db), "VLDB"),
            Predicate::eq(venue(&db), "PODS"),
        ]);
        assert!(!q.eval(&db, &[0]));
        assert!(q.eval(&db, &[1]));
        assert!(q.eval(&db, &[2]));

        assert!(Predicate::not(Predicate::False).eval(&db, &[0]));
        assert!(Predicate::True.eval(&db, &[2]));
    }

    #[test]
    fn conjunction_eval_and_trivial() {
        let db = db();
        let c = Conjunction::new(vec![
            Atom::eq(venue(&db), "SIGMOD"),
            Atom::eq(year(&db), 2001),
        ]);
        assert!(c.eval(&db, &[0]));
        assert!(!c.eval(&db, &[1]));
        assert!(Conjunction::trivial().eval(&db, &[1]));
        assert!(Conjunction::trivial().is_empty());
        assert_eq!(c.len(), 2);
        assert_eq!(c.to_predicate().eval(&db, &[0]), c.eval(&db, &[0]));
    }

    #[test]
    fn attrs_collects_and_dedups() {
        let db = db();
        let p = Predicate::or([
            Predicate::eq(venue(&db), "a"),
            Predicate::not(Predicate::between(year(&db), 1, 2)),
            Predicate::eq(venue(&db), "b"),
        ]);
        assert_eq!(p.attrs(), vec![year(&db), venue(&db)]);
    }
}
