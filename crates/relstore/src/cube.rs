//! The data-cube operator (`GROUP BY … WITH CUBE`).
//!
//! Given dimensions `A' = (A_1, …, A_d)` and an aggregate, the cube holds
//! one cell per observed combination of dimension values *for every subset
//! of the dimensions*, with `Value::Null` in the "don't care" coordinates —
//! exactly SQL Server's `WITH CUBE` that Section 4 of the paper builds
//! Algorithm 1 on. Each cube row *is* a candidate explanation: the
//! conjunction of equalities on its non-null coordinates.
//!
//! Two strategies are provided (and ablation-benched against each other):
//!
//! * [`CubeStrategy::SubsetEnumeration`] — every input tuple updates all
//!   `2^d` cells it belongs to. Simple; cost `O(|U| · 2^d)` hash updates.
//! * [`CubeStrategy::LatticeRollup`] — group into finest-level cells first,
//!   then roll cells up the lattice level by level; each cell is touched
//!   once per parent. Cost `O(|U| + Σ_cells)`; wins when `|U| ≫ #cells`
//!   (low-cardinality dimensions, the natality setting).
//!
//! ```
//! use exq_relstore::aggregate::AggFunc;
//! use exq_relstore::cube::{compute, CubeStrategy};
//! use exq_relstore::{Database, Predicate, SchemaBuilder, Universal, Value, ValueType};
//!
//! let schema = SchemaBuilder::new()
//!     .relation("R", &[("id", ValueType::Int), ("g", ValueType::Str)], &["id"])
//!     .build()?;
//! let mut db = Database::new(schema);
//! for (i, g) in ["a", "a", "b"].iter().enumerate() {
//!     db.insert("R", vec![(i as i64).into(), (*g).into()])?;
//! }
//! let u = Universal::compute(&db, &db.full_view());
//! let g = db.schema().attr("R", "g")?;
//! let cube = compute(&db, &u, &Predicate::True, &[g], &AggFunc::CountStar, CubeStrategy::Auto)?;
//! assert_eq!(cube.get(&[Value::str("a")]), Some(2.0));
//! assert_eq!(cube.grand_total(), Some(3.0));
//! # Ok::<(), exq_relstore::Error>(())
//! ```

use crate::aggregate::{AggFunc, AggState};
use crate::column::{CodedPredicate, ColumnStore};
use crate::database::Database;
use crate::dict::{Dict, NO_CODE};
use crate::error::{Error, Result};
use crate::join::Universal;
use crate::par::{self, ExecConfig};
use crate::predicate::Predicate;
use crate::schema::AttrRef;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Maximum cube dimensionality. `2^16` masks per tuple is already far past
/// anything interactive; the paper's experiments stop at 8.
pub const MAX_CUBE_DIMS: usize = 16;

/// Tuple-accumulation block size. Input tuples are folded into per-block
/// cell maps which are then merged in block order, so the float-addition
/// grouping is a function of the input length alone — never of the thread
/// count. This is what makes cube output bit-identical at any `--threads`.
const ACCUM_BLOCK: usize = 4096;

/// Which cube algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CubeStrategy {
    /// Per-tuple enumeration of all `2^d` ancestor cells.
    SubsetEnumeration,
    /// Finest-level grouping followed by level-wise roll-up.
    LatticeRollup,
    /// Sample the input to estimate the distinct-cell count and pick
    /// between the two: roll-up when cells ≪ rows (the low-cardinality
    /// categorical setting), subset enumeration when nearly every tuple
    /// has its own cell (roll-up would only add a regrouping pass).
    #[default]
    Auto,
}

/// Sample size for [`CubeStrategy::Auto`]'s distinct-cell estimate.
const AUTO_SAMPLE: usize = 2048;

/// Resolve [`CubeStrategy::Auto`] against the actual input.
fn resolve_strategy(
    db: &Database,
    u: &Universal,
    dims: &[AttrRef],
    strategy: CubeStrategy,
) -> CubeStrategy {
    match strategy {
        CubeStrategy::Auto => {
            let sample = AUTO_SAMPLE.min(u.len());
            if sample == 0 {
                return CubeStrategy::SubsetEnumeration;
            }
            let distinct = crate::stats::estimate_distinct_coords(db, u, dims, sample);
            // Dense in the sample → likely high-cardinality: enumerate.
            if distinct * 2 >= sample {
                CubeStrategy::SubsetEnumeration
            } else {
                CubeStrategy::LatticeRollup
            }
        }
        resolved => resolved,
    }
}

/// A cube coordinate: one value per dimension, `Value::Null` marking
/// "don't care".
pub type Coord = Box<[Value]>;

/// A computed data cube.
#[derive(Debug, Clone)]
pub struct Cube {
    /// The dimension attributes, in coordinate order.
    pub dims: Vec<AttrRef>,
    /// Aggregate value per cell. Only non-empty cells are present.
    pub cells: HashMap<Coord, f64>,
}

impl Cube {
    /// Number of cells (including the all-null grand total, if any input
    /// tuple matched).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the cube has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The value at a coordinate, if that cell exists.
    pub fn get(&self, coord: &[Value]) -> Option<f64> {
        self.cells.get(coord).copied()
    }

    /// The grand total (all coordinates null).
    pub fn grand_total(&self) -> Option<f64> {
        let coord: Coord = vec![Value::Null; self.dims.len()].into_boxed_slice();
        self.get(&coord)
    }
}

/// Compute the cube of `agg` over the universal tuples of `u` satisfying
/// `selection`, grouped (with cube) by `dims`.
///
/// Errors if `dims` exceeds [`MAX_CUBE_DIMS`] or if any input tuple has a
/// NULL dimension value (a NULL coordinate would be indistinguishable from
/// "don't care"; the paper's datasets recode missing values explicitly).
pub fn compute(
    db: &Database,
    u: &Universal,
    selection: &Predicate,
    dims: &[AttrRef],
    agg: &AggFunc,
    strategy: CubeStrategy,
) -> Result<Cube> {
    compute_with(
        db,
        u,
        selection,
        dims,
        agg,
        strategy,
        &ExecConfig::sequential(),
    )
}

/// [`compute`] with an explicit executor. Output is bit-identical at any
/// thread count: accumulation is blocked by `ACCUM_BLOCK` and merged in
/// block order, and roll-up merges iterate cells in coordinate order.
///
/// When every dimension column is dictionary-coded this runs entirely in
/// `u32` code space and decodes the cells at the end; otherwise it takes
/// the row-oriented `Value` path. Both run the *same* generic grouping
/// code over the same block structure, tuple order, and fold order, so
/// their cells are bit-identical (see `CubeSpace`).
pub fn compute_with(
    db: &Database,
    u: &Universal,
    selection: &Predicate,
    dims: &[AttrRef],
    agg: &AggFunc,
    strategy: CubeStrategy,
    exec: &ExecConfig,
) -> Result<Cube> {
    if let Some(coded) = compute_coded_with(db, u, selection, dims, agg, strategy, exec)? {
        return Ok(coded.decode());
    }
    compute_rows_with(db, u, selection, dims, agg, strategy, exec)
}

/// The retained row-oriented reference path of [`compute_with`]: groups
/// on cloned `Value` coordinates regardless of how the dimension columns
/// are encoded. The differential test suite asserts its cells are
/// bit-identical to the columnar path's.
pub fn compute_rows_with(
    db: &Database,
    u: &Universal,
    selection: &Predicate,
    dims: &[AttrRef],
    agg: &AggFunc,
    strategy: CubeStrategy,
    exec: &ExecConfig,
) -> Result<Cube> {
    if dims.len() > MAX_CUBE_DIMS {
        return Err(Error::TooManyCubeDimensions(dims.len()));
    }
    agg.validate(db.schema())?;
    let space = ValueSpace { dims };
    let cells = compute_in(
        db,
        u,
        &Selection::Rows(selection),
        &space,
        agg,
        strategy,
        exec,
    )?;
    Ok(Cube {
        dims: dims.to_vec(),
        cells,
    })
}

/// The selection evaluator for one cube run: the reference path keeps the
/// `Value`-based [`Predicate::eval`]; the coded path pre-compiles the
/// predicate against the column store (per-code masks), which returns
/// bit-identical decisions (see [`ColumnStore::compile_predicate`]).
enum Selection<'a> {
    /// Row-oriented reference: evaluate the predicate as given.
    Rows(&'a Predicate),
    /// Code-space compilation of the same predicate.
    Coded(CodedPredicate<'a>),
}

impl Selection<'_> {
    #[inline]
    fn eval(&self, db: &Database, t: &[u32]) -> bool {
        match self {
            Selection::Rows(p) => p.eval(db, t),
            Selection::Coded(p) => p.eval(db, t),
        }
    }
}

/// The code-space fast path: compute the cube without materializing any
/// `Value`, returning the cells keyed by dictionary codes (with
/// [`NO_CODE`] as the "don't care" coordinate). Returns `Ok(None)` —
/// before recording any counter — when some dimension column is not
/// dictionary-coded; the caller falls back to [`compute_rows_with`].
pub fn compute_coded_with(
    db: &Database,
    u: &Universal,
    selection: &Predicate,
    dims: &[AttrRef],
    agg: &AggFunc,
    strategy: CubeStrategy,
    exec: &ExecConfig,
) -> Result<Option<CodedCube>> {
    if dims.len() > MAX_CUBE_DIMS {
        return Err(Error::TooManyCubeDimensions(dims.len()));
    }
    agg.validate(db.schema())?;
    let store = Arc::clone(db.columns());
    let cells = match CodedSpace::new(&store, dims) {
        None => return Ok(None),
        Some(space) => {
            let sel = Selection::Coded(store.compile_predicate(selection));
            compute_in(db, u, &sel, &space, agg, strategy, exec)?
        }
    };
    Ok(Some(CodedCube {
        dims: dims.to_vec(),
        store,
        cells,
    }))
}

/// A cube whose cells are keyed by dictionary codes instead of values:
/// `cells[j]` holds the code of dimension `j`'s value in its column's
/// dictionary, or [`NO_CODE`] for "don't care". Decodable at the output
/// boundary; `core::cube_algo` joins several of these on raw code keys
/// before decoding once.
#[derive(Debug, Clone)]
pub struct CodedCube {
    dims: Vec<AttrRef>,
    store: Arc<ColumnStore>,
    /// Aggregate value per coded cell.
    pub cells: HashMap<Box<[u32]>, f64>,
}

impl CodedCube {
    /// The dimension attributes, in coordinate order.
    pub fn dims(&self) -> &[AttrRef] {
        &self.dims
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the cube has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Decode one coded cell key into a `Value` coordinate, substituting
    /// `dont_care` for [`NO_CODE`] slots ([`Value::Null`] for plain cube
    /// semantics; Algorithm 1 uses its dummy marker instead).
    pub fn decode_coord(&self, key: &[u32], dont_care: &Value) -> Coord {
        self.dims
            .iter()
            .zip(key)
            .map(|(&a, &code)| {
                if code == NO_CODE {
                    dont_care.clone()
                } else {
                    let (_, dict) = self
                        .store
                        .dict_column(a)
                        .expect("CodedCube is only built over dictionary-coded dimensions");
                    dict.value(code).clone()
                }
            })
            .collect()
    }

    /// Materialize as a value-keyed [`Cube`].
    pub fn decode(self) -> Cube {
        let mut cells = HashMap::with_capacity(self.cells.len());
        // exq-lint: allow(L001): map-to-map re-keying via a bijective decode; no order observable
        for (key, &v) in &self.cells {
            cells.insert(self.decode_coord(key, &Value::Null), v);
        }
        Cube {
            dims: self.dims,
            cells,
        }
    }
}

/// The strategy dispatch and counter bookkeeping shared by both cube
/// paths. Counter semantics are identical whichever [`CubeSpace`] runs:
/// `cube.runs`, the strategy tag, `cube.input_tuples` (selected tuples),
/// `cube.cells`, and per-level cell counts all describe the same
/// stitched semantic events.
fn compute_in<S: CubeSpace>(
    db: &Database,
    u: &Universal,
    selection: &Selection<'_>,
    space: &S,
    agg: &AggFunc,
    strategy: CubeStrategy,
    exec: &ExecConfig,
) -> Result<HashMap<S::Key, f64>> {
    let sink = exec.metrics();
    let _span = sink.span("cube");
    sink.incr("cube.runs");
    let resolved = resolve_strategy(db, u, space.dims(), strategy);
    let (states, selected) = match resolved {
        CubeStrategy::SubsetEnumeration => {
            sink.incr("cube.strategy.subset_enumeration");
            accumulate_in(db, u, selection, space, agg, exec, true)?
        }
        CubeStrategy::LatticeRollup => {
            sink.incr("cube.strategy.lattice_rollup");
            lattice_rollup_in(db, u, selection, space, agg, exec)?
        }
        CubeStrategy::Auto => unreachable!("resolve_strategy never returns Auto"),
    };
    sink.add("cube.input_tuples", selected);
    let cells: HashMap<S::Key, f64> = states.into_iter().map(|(k, s)| (k, s.finalize())).collect();
    sink.add("cube.cells", cells.len() as u64);
    if sink.is_enabled() {
        // Cells materialized per lattice level, where a cell's level is
        // its number of specified (non-don't-care) coordinates — the
        // grand total is level 0, finest-grain cells are level d.
        let mut per_level = vec![0u64; space.dims().len() + 1];
        // exq-lint: allow(L001): per-level integer counting is order-independent
        for key in cells.keys() {
            per_level[space.level_of(key)] += 1;
        }
        for (level, n) in per_level.iter().enumerate() {
            if *n > 0 {
                sink.add(&format!("cube.cells.level.{level}"), *n);
            }
        }
    }
    Ok(cells)
}

/// Plain `GROUP BY` (no cube): only the finest-level cells. This is the
/// operator behind series queries (one aggregate value per group), and
/// the first phase of the lattice roll-up.
pub fn group_by(
    db: &Database,
    u: &Universal,
    selection: &Predicate,
    dims: &[AttrRef],
    agg: &AggFunc,
) -> Result<Cube> {
    group_by_with(db, u, selection, dims, agg, &ExecConfig::sequential())
}

/// [`group_by`] with an explicit executor. Like [`compute_with`], runs in
/// code space when every dimension column is dictionary-coded.
pub fn group_by_with(
    db: &Database,
    u: &Universal,
    selection: &Predicate,
    dims: &[AttrRef],
    agg: &AggFunc,
    exec: &ExecConfig,
) -> Result<Cube> {
    if dims.len() > MAX_CUBE_DIMS {
        return Err(Error::TooManyCubeDimensions(dims.len()));
    }
    agg.validate(db.schema())?;
    let store = Arc::clone(db.columns());
    if let Some(space) = CodedSpace::new(&store, dims) {
        let sel = Selection::Coded(store.compile_predicate(selection));
        let (cells, _selected) = accumulate_in(db, u, &sel, &space, agg, exec, false)?;
        let mut decoded = HashMap::with_capacity(cells.len());
        // exq-lint: allow(L001): map-to-map re-keying via a bijective decode; each cell finalizes independently
        for (key, s) in &cells {
            decoded.insert(space.decode_key(key), s.finalize());
        }
        return Ok(Cube {
            dims: dims.to_vec(),
            cells: decoded,
        });
    }
    let space = ValueSpace { dims };
    let (cells, _selected) =
        accumulate_in(db, u, &Selection::Rows(selection), &space, agg, exec, false)?;
    Ok(Cube {
        dims: dims.to_vec(),
        // exq-lint: allow(L001): map-to-map re-keying; each cell finalizes independently, no order observable
        cells: cells.into_iter().map(|(k, s)| (k, s.finalize())).collect(),
    })
}

/// A coordinate representation for the generic cube machinery.
///
/// [`accumulate_in`] and [`lattice_rollup_in`] are written once against
/// this trait and instantiated for two spaces: [`ValueSpace`] (keys are
/// cloned `Value` coordinates — the reference path) and [`CodedSpace`]
/// (keys are `u32` dictionary codes — the fast path). The bit-identity
/// argument between the two is structural: both instantiations execute
/// the same block partitioning, tuple order, entry/update sequence, and
/// merge/fold order; the only difference is the key type, and the
/// code↔value mapping is a bijection whose [`CubeSpace::cmp_keys`] orders
/// keys exactly like the `Value` total order on decoded coordinates (the
/// dictionary `rank` table, with "don't care" below everything, mirroring
/// `Value::Null`). So every float addition happens between the same
/// numbers in the same order in both spaces.
trait CubeSpace: Sync {
    /// One dimension's slot in an extracted base coordinate.
    type Elem: Clone + Send;
    /// A cell key: a full or masked coordinate.
    type Key: Clone + Eq + Hash + Send + Sync;

    /// The dimension attributes.
    fn dims(&self) -> &[AttrRef];
    /// Extract tuple `t`'s base coordinate into `out` (cleared first);
    /// errors on NULL dimension values.
    fn extract(&self, db: &Database, t: &[u32], out: &mut Vec<Self::Elem>) -> Result<()>;
    /// The finest-level key for a base coordinate.
    fn full_key(&self, base: &[Self::Elem]) -> Self::Key;
    /// The key for `base` restricted to the dimensions set in `mask`.
    fn masked_key(&self, base: &[Self::Elem], mask: u32) -> Self::Key;
    /// Set dimension `j` of `key` to "don't care".
    fn clear_dim(&self, key: &mut Self::Key, j: usize);
    /// Total order on keys, equal to the lexicographic `Value` order of
    /// the decoded coordinates.
    fn cmp_keys(&self, a: &Self::Key, b: &Self::Key) -> Ordering;
    /// Number of specified (non-don't-care) dimensions of `key`.
    fn level_of(&self, key: &Self::Key) -> usize;
}

/// The row-oriented reference space: coordinates of cloned [`Value`]s.
struct ValueSpace<'a> {
    dims: &'a [AttrRef],
}

impl CubeSpace for ValueSpace<'_> {
    type Elem = Value;
    type Key = Coord;

    fn dims(&self) -> &[AttrRef] {
        self.dims
    }

    fn extract(&self, db: &Database, t: &[u32], out: &mut Vec<Value>) -> Result<()> {
        out.clear();
        for &a in self.dims {
            let v = db.value(a, t[a.rel] as usize);
            if v.is_null() {
                return Err(null_dimension_error(db, a));
            }
            out.push(v.clone());
        }
        Ok(())
    }

    fn full_key(&self, base: &[Value]) -> Coord {
        base.to_vec().into_boxed_slice()
    }

    fn masked_key(&self, base: &[Value], mask: u32) -> Coord {
        base.iter()
            .enumerate()
            .map(|(j, v)| {
                if mask & (1 << j) != 0 {
                    v.clone()
                } else {
                    Value::Null
                }
            })
            .collect()
    }

    fn clear_dim(&self, key: &mut Coord, j: usize) {
        key[j] = Value::Null;
    }

    fn cmp_keys(&self, a: &Coord, b: &Coord) -> Ordering {
        a.cmp(b)
    }

    fn level_of(&self, key: &Coord) -> usize {
        key.iter().filter(|v| !v.is_null()).count()
    }
}

/// The columnar fast space: coordinates of `u32` dictionary codes, with
/// [`NO_CODE`] as "don't care".
struct CodedSpace<'a> {
    dims: &'a [AttrRef],
    /// Per dimension: the column's codes (per row) and dictionary.
    cols: Vec<(&'a [u32], &'a Dict)>,
}

impl<'a> CodedSpace<'a> {
    /// `Some` iff every dimension column is dictionary-coded.
    fn new(store: &'a ColumnStore, dims: &'a [AttrRef]) -> Option<CodedSpace<'a>> {
        let cols = dims
            .iter()
            .map(|&a| store.dict_column(a))
            .collect::<Option<Vec<_>>>()?;
        Some(CodedSpace { dims, cols })
    }

    /// Rank of one key slot under the decoded `Value` order: "don't care"
    /// first (as `Value::Null` sorts below everything), then dictionary
    /// rank. Null *values* never appear in keys ([`CubeSpace::extract`]
    /// rejects them), so the two cannot collide.
    #[inline]
    fn slot_rank(&self, j: usize, code: u32) -> u64 {
        if code == NO_CODE {
            0
        } else {
            u64::from(self.cols[j].1.rank(code)) + 1
        }
    }

    /// Decode a key into a `Value` coordinate with `Null` don't-cares.
    fn decode_key(&self, key: &[u32]) -> Coord {
        key.iter()
            .enumerate()
            .map(|(j, &code)| {
                if code == NO_CODE {
                    Value::Null
                } else {
                    self.cols[j].1.value(code).clone()
                }
            })
            .collect()
    }
}

impl CubeSpace for CodedSpace<'_> {
    type Elem = u32;
    type Key = Box<[u32]>;

    fn dims(&self) -> &[AttrRef] {
        self.dims
    }

    fn extract(&self, db: &Database, t: &[u32], out: &mut Vec<u32>) -> Result<()> {
        out.clear();
        for (&a, &(codes, dict)) in self.dims.iter().zip(&self.cols) {
            let code = codes[t[a.rel] as usize];
            if dict.is_null_code(code) {
                return Err(null_dimension_error(db, a));
            }
            out.push(code);
        }
        Ok(())
    }

    fn full_key(&self, base: &[u32]) -> Box<[u32]> {
        base.into()
    }

    fn masked_key(&self, base: &[u32], mask: u32) -> Box<[u32]> {
        base.iter()
            .enumerate()
            .map(
                |(j, &code)| {
                    if mask & (1 << j) != 0 {
                        code
                    } else {
                        NO_CODE
                    }
                },
            )
            .collect()
    }

    fn clear_dim(&self, key: &mut Box<[u32]>, j: usize) {
        key[j] = NO_CODE;
    }

    fn cmp_keys(&self, a: &Box<[u32]>, b: &Box<[u32]>) -> Ordering {
        for (j, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            match self.slot_rank(j, x).cmp(&self.slot_rank(j, y)) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn level_of(&self, key: &Box<[u32]>) -> usize {
        key.iter().filter(|&&code| code != NO_CODE).count()
    }
}

/// The `Error::TypeMismatch` for a NULL cube dimension value.
fn null_dimension_error(db: &Database, a: AttrRef) -> Error {
    Error::TypeMismatch {
        relation: db.schema().relation(a.rel).name.clone(),
        attribute: db.schema().relation(a.rel).attributes[a.col].name.clone(),
        expected: "non-null cube dimension".to_string(),
        got: "null".to_string(),
    }
}

/// Fold the selected universal tuples into a cell map, one coordinate per
/// tuple (`enumerate_masks = false`) or all `2^d` ancestor coordinates
/// (`enumerate_masks = true`).
///
/// Tuples are processed in fixed [`ACCUM_BLOCK`]-sized blocks and the
/// per-block maps merged in block order, so both the error reported (the
/// first failing tuple's, in input order) and the float-addition grouping
/// are independent of the thread count. Also returns the number of tuples
/// passing `selection` (summed over blocks in block order, so the count
/// shares the determinism guarantee).
fn accumulate_in<S: CubeSpace>(
    db: &Database,
    u: &Universal,
    selection: &Selection<'_>,
    space: &S,
    agg: &AggFunc,
    exec: &ExecConfig,
    enumerate_masks: bool,
) -> Result<(HashMap<S::Key, AggState>, u64)> {
    let d = space.dims().len();
    let store = Arc::clone(db.columns());
    let agg_eval = agg.compile(&store);
    let parts = par::try_map_index_blocks(exec, u.len(), ACCUM_BLOCK, |_, range| {
        let mut cells: HashMap<S::Key, AggState> = HashMap::new();
        let mut selected: u64 = 0;
        let mut base: Vec<S::Elem> = Vec::with_capacity(d);
        for i in range {
            let t = u.tuple(i);
            if !selection.eval(db, t) {
                continue;
            }
            selected += 1;
            space.extract(db, t, &mut base)?;
            if enumerate_masks {
                for mask in 0..(1u32 << d) {
                    let state = cells
                        .entry(space.masked_key(&base, mask))
                        .or_insert_with(|| agg_eval.new_state());
                    agg_eval.update(state, db, t)?;
                }
            } else {
                let state = cells
                    .entry(space.full_key(&base))
                    .or_insert_with(|| agg_eval.new_state());
                agg_eval.update(state, db, t)?;
            }
        }
        Ok((cells, selected))
    })?;
    let mut parts = parts.into_iter();
    let (mut acc, mut selected) = parts.next().unwrap_or_default();
    for (part, count) in parts {
        selected += count;
        for (coord, state) in part {
            match acc.get_mut(&coord) {
                Some(existing) => existing.merge(&state),
                None => {
                    acc.insert(coord, state);
                }
            }
        }
    }
    Ok((acc, selected))
}

fn lattice_rollup_in<S: CubeSpace>(
    db: &Database,
    u: &Universal,
    selection: &Selection<'_>,
    space: &S,
    agg: &AggFunc,
    exec: &ExecConfig,
) -> Result<(HashMap<S::Key, AggState>, u64)> {
    let d = space.dims().len();
    // Finest-level grouping.
    let (base_cells, selected) = accumulate_in(db, u, selection, space, agg, exec, false)?;

    // Roll up level by level (decreasing popcount). Each mask M (≠ full)
    // aggregates from its parent P = M | lowest unset bit, which has
    // exactly one more bit — so every mask of one level only reads maps of
    // the level above, and the masks within a level are independent: the
    // whole level can fan out. Parent cells are folded in coordinate
    // order, which fixes the float-addition order no matter how the
    // parent's HashMap happens to be laid out.
    let full = (1u32 << d) - 1;
    let mut per_mask: Vec<HashMap<S::Key, AggState>> = (0..=full).map(|_| HashMap::new()).collect();
    per_mask[full as usize] = base_cells;

    for level in (0..d as u32).rev() {
        let level_masks: Vec<u32> = (0..full).filter(|m| m.count_ones() == level).collect();
        let computed = par::map_blocks(exec, &level_masks, 1, |_, masks| {
            masks
                .iter()
                .map(|&mask| (mask, rollup_one_mask_in(space, &per_mask, mask, d)))
                .collect::<Vec<_>>()
        });
        for group in computed {
            for (mask, cells) in group {
                per_mask[mask as usize] = cells;
            }
        }
    }

    // Flatten. Coordinates are disjoint across masks because no dimension
    // value is null.
    let mut out = HashMap::new();
    for m in per_mask {
        out.extend(m);
    }
    Ok((out, selected))
}

/// Compute one roll-up mask's cell map from its (read-only) parent level.
fn rollup_one_mask_in<S: CubeSpace>(
    space: &S,
    per_mask: &[HashMap<S::Key, AggState>],
    mask: u32,
    d: usize,
) -> HashMap<S::Key, AggState> {
    let lowest_unset = (0..d as u32)
        .find(|j| mask & (1 << j) == 0)
        .expect("mask != full");
    let parent = mask | (1 << lowest_unset);
    let parent_cells = &per_mask[parent as usize];
    let mut entries: Vec<(&S::Key, &AggState)> = parent_cells.iter().collect();
    entries.sort_unstable_by(|a, b| space.cmp_keys(a.0, b.0));
    let mut child: HashMap<S::Key, AggState> = HashMap::with_capacity(parent_cells.len());
    for (coord, state) in entries {
        let mut child_coord = coord.clone();
        space.clear_dim(&mut child_coord, lowest_unset as usize);
        match child.get_mut(&child_coord) {
            Some(existing) => existing.merge(state),
            None => {
                child.insert(child_coord, state.clone());
            }
        }
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    /// Example 4.1's database (the Figure 3 instance), cube over
    /// (Author.name, Publication.year) with COUNT(*).
    fn figure3_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "Author",
                &[
                    ("id", T::Str),
                    ("name", T::Str),
                    ("inst", T::Str),
                    ("dom", T::Str),
                ],
                &["id"],
            )
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation(
                "Publication",
                &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
                &["pubid"],
            )
            .standard_fk("Authored", &["id"], "Author")
            .back_and_forth_fk("Authored", &["pubid"], "Publication")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (id, name, inst, dom) in [
            ("A1", "JG", "C.edu", "edu"),
            ("A2", "RR", "M.com", "com"),
            ("A3", "CM", "I.com", "com"),
        ] {
            db.insert(
                "Author",
                vec![id.into(), name.into(), inst.into(), dom.into()],
            )
            .unwrap();
        }
        for (id, pubid) in [
            ("A1", "P1"),
            ("A2", "P1"),
            ("A1", "P2"),
            ("A3", "P2"),
            ("A2", "P3"),
            ("A3", "P3"),
        ] {
            db.insert("Authored", vec![id.into(), pubid.into()])
                .unwrap();
        }
        for (pubid, year, venue) in [
            ("P1", 2001, "SIGMOD"),
            ("P2", 2011, "VLDB"),
            ("P3", 2001, "SIGMOD"),
        ] {
            db.insert("Publication", vec![pubid.into(), year.into(), venue.into()])
                .unwrap();
        }
        db
    }

    fn cube_of(strategy: CubeStrategy) -> (Database, Cube) {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let dims = vec![
            db.schema().attr("Author", "name").unwrap(),
            db.schema().attr("Publication", "year").unwrap(),
        ];
        let cube = compute(
            &db,
            &u,
            &Predicate::True,
            &dims,
            &AggFunc::CountStar,
            strategy,
        )
        .unwrap();
        (db, cube)
    }

    fn assert_example_41(cube: &Cube) {
        // The 11 rows of Example 4.1.
        let rows: [(&[Value], f64); 11] = [
            (&[Value::str("JG"), Value::Int(2001)], 1.0),
            (&[Value::str("JG"), Value::Int(2011)], 1.0),
            (&[Value::str("RR"), Value::Int(2001)], 2.0),
            (&[Value::str("CM"), Value::Int(2001)], 1.0),
            (&[Value::str("CM"), Value::Int(2011)], 1.0),
            (&[Value::str("JG"), Value::Null], 2.0),
            (&[Value::str("RR"), Value::Null], 2.0),
            (&[Value::str("CM"), Value::Null], 2.0),
            (&[Value::Null, Value::Int(2001)], 4.0),
            (&[Value::Null, Value::Int(2011)], 2.0),
            (&[Value::Null, Value::Null], 6.0),
        ];
        assert_eq!(cube.len(), 11);
        for (coord, expected) in rows {
            assert_eq!(cube.get(coord), Some(expected), "cell {coord:?}");
        }
        assert_eq!(cube.grand_total(), Some(6.0));
    }

    #[test]
    fn example_41_subset_enumeration() {
        let (_, cube) = cube_of(CubeStrategy::SubsetEnumeration);
        assert_example_41(&cube);
    }

    #[test]
    fn example_41_lattice_rollup() {
        let (_, cube) = cube_of(CubeStrategy::LatticeRollup);
        assert_example_41(&cube);
    }

    #[test]
    fn strategies_agree_with_selection_and_distinct() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let dims = vec![
            db.schema().attr("Author", "dom").unwrap(),
            db.schema().attr("Publication", "venue").unwrap(),
        ];
        let sel = Predicate::eq(db.schema().attr("Publication", "year").unwrap(), 2001);
        let agg = AggFunc::CountDistinct(db.schema().attr("Publication", "pubid").unwrap());
        let a = compute(&db, &u, &sel, &dims, &agg, CubeStrategy::SubsetEnumeration).unwrap();
        let b = compute(&db, &u, &sel, &dims, &agg, CubeStrategy::LatticeRollup).unwrap();
        assert_eq!(a.cells, b.cells);
        // Both SIGMOD papers in 2001 regardless of author domain.
        assert_eq!(a.get(&[Value::Null, Value::str("SIGMOD")]), Some(2.0));
        assert_eq!(
            a.get(&[Value::str("edu"), Value::Null]),
            Some(1.0),
            "JG only on P1"
        );
    }

    #[test]
    fn zero_dims_gives_grand_total_only() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        for strategy in [CubeStrategy::SubsetEnumeration, CubeStrategy::LatticeRollup] {
            let cube = compute(
                &db,
                &u,
                &Predicate::True,
                &[],
                &AggFunc::CountStar,
                strategy,
            )
            .unwrap();
            assert_eq!(cube.len(), 1);
            assert_eq!(cube.get(&[]), Some(6.0));
        }
    }

    #[test]
    fn empty_selection_gives_empty_cube() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let dims = vec![db.schema().attr("Author", "name").unwrap()];
        for strategy in [CubeStrategy::SubsetEnumeration, CubeStrategy::LatticeRollup] {
            let cube = compute(
                &db,
                &u,
                &Predicate::False,
                &dims,
                &AggFunc::CountStar,
                strategy,
            )
            .unwrap();
            assert!(cube.is_empty());
            assert_eq!(cube.grand_total(), None);
        }
    }

    #[test]
    fn parallel_cube_is_bit_identical_across_thread_counts() {
        // Multi-block input (> ACCUM_BLOCK tuples) with a float measure, so
        // any thread-count-dependent accumulation order would change bits.
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[
                    ("id", T::Int),
                    ("g", T::Str),
                    ("h", T::Int),
                    ("x", T::Float),
                ],
                &["id"],
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for i in 0..10_000i64 {
            let g = format!("g{}", i % 7);
            let x = (i as f64) * 0.1 + 0.3;
            db.insert(
                "R",
                vec![i.into(), g.as_str().into(), (i % 3).into(), x.into()],
            )
            .unwrap();
        }
        let u = Universal::compute(&db, &db.full_view());
        let dims = vec![
            db.schema().attr("R", "g").unwrap(),
            db.schema().attr("R", "h").unwrap(),
        ];
        let agg = AggFunc::Sum(db.schema().attr("R", "x").unwrap());
        for strategy in [CubeStrategy::SubsetEnumeration, CubeStrategy::LatticeRollup] {
            let seq = compute(&db, &u, &Predicate::True, &dims, &agg, strategy).unwrap();
            for threads in [2, 3, 7] {
                let exec = ExecConfig::with_threads(threads);
                let par =
                    compute_with(&db, &u, &Predicate::True, &dims, &agg, strategy, &exec).unwrap();
                assert_eq!(seq.cells.len(), par.cells.len());
                for (coord, v) in &seq.cells {
                    let pv = par
                        .get(coord)
                        .unwrap_or_else(|| panic!("missing {coord:?}"));
                    assert_eq!(
                        v.to_bits(),
                        pv.to_bits(),
                        "{strategy:?} cell {coord:?} differs at {threads} threads"
                    );
                }
            }
        }
        // group_by too.
        let seq = group_by(&db, &u, &Predicate::True, &dims, &agg).unwrap();
        for threads in [2, 7] {
            let exec = ExecConfig::with_threads(threads);
            let par = group_by_with(&db, &u, &Predicate::True, &dims, &agg, &exec).unwrap();
            for (coord, v) in &seq.cells {
                assert_eq!(v.to_bits(), par.get(coord).unwrap().to_bits());
            }
            assert_eq!(seq.cells.len(), par.cells.len());
        }
    }

    #[test]
    fn group_by_rejects_too_many_dims() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let dims = vec![db.schema().attr("Author", "name").unwrap(); MAX_CUBE_DIMS + 1];
        let err = group_by(&db, &u, &Predicate::True, &dims, &AggFunc::CountStar).unwrap_err();
        assert!(matches!(err, Error::TooManyCubeDimensions(n) if n == MAX_CUBE_DIMS + 1));
    }

    #[test]
    fn too_many_dims_rejected() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let dims = vec![db.schema().attr("Author", "name").unwrap(); MAX_CUBE_DIMS + 1];
        let err = compute(
            &db,
            &u,
            &Predicate::True,
            &dims,
            &AggFunc::CountStar,
            CubeStrategy::SubsetEnumeration,
        )
        .unwrap_err();
        assert!(matches!(err, Error::TooManyCubeDimensions(_)));
    }

    #[test]
    fn null_dimension_value_rejected() {
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("g", T::Str)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R", vec![1.into(), Value::Null]).unwrap();
        let u = Universal::compute(&db, &db.full_view());
        let dims = vec![db.schema().attr("R", "g").unwrap()];
        for strategy in [CubeStrategy::SubsetEnumeration, CubeStrategy::LatticeRollup] {
            assert!(compute(
                &db,
                &u,
                &Predicate::True,
                &dims,
                &AggFunc::CountStar,
                strategy
            )
            .is_err());
        }
    }

    #[test]
    fn group_by_is_the_finest_cube_level() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let dims = vec![
            db.schema().attr("Author", "name").unwrap(),
            db.schema().attr("Publication", "year").unwrap(),
        ];
        let g = group_by(&db, &u, &Predicate::True, &dims, &AggFunc::CountStar).unwrap();
        // Exactly the 5 fully-specified rows of Example 4.1.
        assert_eq!(g.len(), 5);
        assert_eq!(g.get(&[Value::str("RR"), Value::Int(2001)]), Some(2.0));
        assert_eq!(
            g.get(&[Value::Null, Value::Int(2001)]),
            None,
            "no roll-up rows"
        );

        // Every finest-level cube cell matches.
        let full = compute(
            &db,
            &u,
            &Predicate::True,
            &dims,
            &AggFunc::CountStar,
            CubeStrategy::LatticeRollup,
        )
        .unwrap();
        for (coord, v) in &g.cells {
            assert_eq!(full.get(coord), Some(*v));
        }
    }

    #[test]
    fn group_by_with_selection() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let dims = vec![db.schema().attr("Author", "dom").unwrap()];
        let sel = Predicate::eq(db.schema().attr("Publication", "venue").unwrap(), "SIGMOD");
        let g = group_by(&db, &u, &sel, &dims, &AggFunc::CountStar).unwrap();
        assert_eq!(g.get(&[Value::str("com")]), Some(3.0), "u2, u5, u6");
        assert_eq!(g.get(&[Value::str("edu")]), Some(1.0), "u1");
    }

    #[test]
    fn auto_matches_explicit_strategies() {
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        let dims = vec![
            db.schema().attr("Author", "name").unwrap(),
            db.schema().attr("Publication", "year").unwrap(),
        ];
        let auto = compute(
            &db,
            &u,
            &Predicate::True,
            &dims,
            &AggFunc::CountStar,
            CubeStrategy::Auto,
        )
        .unwrap();
        let explicit = compute(
            &db,
            &u,
            &Predicate::True,
            &dims,
            &AggFunc::CountStar,
            CubeStrategy::LatticeRollup,
        )
        .unwrap();
        assert_eq!(auto.cells, explicit.cells);
    }

    #[test]
    fn auto_on_empty_input() {
        let db = figure3_db();
        let mut view = db.full_view();
        view.live[0].clear();
        let u = Universal::compute(&db, &view);
        let dims = vec![db.schema().attr("Author", "name").unwrap()];
        let cube = compute(
            &db,
            &u,
            &Predicate::True,
            &dims,
            &AggFunc::CountStar,
            CubeStrategy::Auto,
        )
        .unwrap();
        assert!(cube.is_empty());
    }

    #[test]
    fn rollup_of_sum_and_minmax() {
        let schema = SchemaBuilder::new()
            .relation(
                "R",
                &[("id", T::Int), ("g", T::Str), ("x", T::Int)],
                &["id"],
            )
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (i, (g, x)) in [("a", 1), ("a", 5), ("b", 3)].iter().enumerate() {
            db.insert("R", vec![(i as i64).into(), (*g).into(), (*x).into()])
                .unwrap();
        }
        let u = Universal::compute(&db, &db.full_view());
        let dims = vec![db.schema().attr("R", "g").unwrap()];
        let x = db.schema().attr("R", "x").unwrap();
        for (agg, a_total, a_cell) in [
            (AggFunc::Sum(x), 9.0, 6.0),
            (AggFunc::Min(x), 1.0, 1.0),
            (AggFunc::Max(x), 5.0, 5.0),
            (AggFunc::Avg(x), 3.0, 3.0),
        ] {
            for strategy in [CubeStrategy::SubsetEnumeration, CubeStrategy::LatticeRollup] {
                let cube = compute(&db, &u, &Predicate::True, &dims, &agg, strategy).unwrap();
                assert_eq!(cube.get(&[Value::Null]), Some(a_total), "{agg:?} total");
                assert_eq!(cube.get(&[Value::str("a")]), Some(a_cell), "{agg:?} cell a");
            }
        }
    }
}
