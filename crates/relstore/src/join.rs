//! The universal relation `U(D) = R_1 ⋈ … ⋈ R_k`.
//!
//! All relations are joined on all foreign-key constraints (Section 2). The
//! schema's foreign-key graph is a forest, so the join is acyclic: each
//! connected component is joined along a BFS tree with hash indexes, and
//! components are cross-multiplied (a schema normally has one component).
//!
//! Universal tuples are stored as flat arrays of row indices — one `u32`
//! per relation — so no attribute values are copied; accessors project on
//! demand.

use crate::column::ColumnStore;
use crate::database::{Database, View};
use crate::dict::{Dict, NO_CODE};
use crate::index::HashIndex;
use crate::par::{self, ExecConfig};
use crate::schema::{AttrRef, DatabaseSchema};
use crate::table::Relation;
use crate::tupleset::TupleSet;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Root-row partitions smaller than this run inline — the per-thread
/// bookkeeping would cost more than the probe itself.
const MIN_PARALLEL_ROOTS: usize = 1024;

/// One edge of a component's BFS join tree.
#[derive(Debug, Clone)]
pub struct TreeEdge {
    /// The relation closer to the root.
    pub parent: usize,
    /// The relation further from the root.
    pub child: usize,
    /// Join columns on the parent side.
    pub parent_cols: Vec<usize>,
    /// Join columns on the child side.
    pub child_cols: Vec<usize>,
}

/// A connected component of the foreign-key graph with its BFS join tree.
#[derive(Debug, Clone)]
pub struct Component {
    /// Relations in the component.
    pub relations: Vec<usize>,
    /// The BFS root.
    pub root: usize,
    /// Tree edges in BFS (top-down) order.
    pub edges: Vec<TreeEdge>,
}

/// Decompose the schema's foreign-key graph into components with BFS join
/// trees.
pub fn join_forest(schema: &DatabaseSchema) -> Vec<Component> {
    let adj = schema.fk_adjacency();
    let fks = schema.foreign_keys();
    let n = schema.relation_count();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        let mut relations = vec![start];
        let mut edges = Vec::new();
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &(fk_idx, v) in &adj[u] {
                if seen[v] {
                    continue;
                }
                seen[v] = true;
                let fk = &fks[fk_idx];
                let (parent_cols, child_cols) = if fk.from_rel == u {
                    (fk.from_cols.clone(), fk.to_cols.clone())
                } else {
                    (fk.to_cols.clone(), fk.from_cols.clone())
                };
                edges.push(TreeEdge {
                    parent: u,
                    child: v,
                    parent_cols,
                    child_cols,
                });
                relations.push(v);
                queue.push_back(v);
            }
        }
        components.push(Component {
            relations,
            root: start,
            edges,
        });
    }
    components
}

/// The universal relation: a sequence of tuples, each a row index per
/// relation in schema order.
#[derive(Debug, Clone)]
pub struct Universal {
    schema: Arc<DatabaseSchema>,
    stride: usize,
    data: Vec<u32>,
}

impl Universal {
    /// Compute `U` over the live rows of `view`, sequentially.
    pub fn compute(db: &Database, view: &View) -> Universal {
        Universal::compute_with(db, view, &ExecConfig::sequential())
    }

    /// Compute `U` with the hash-join probe fanned out over `exec`'s
    /// workers: base-table root rows are partitioned into blocks, each
    /// worker expands its blocks through the whole edge list against
    /// shared per-edge hash indexes, and the per-block outputs are
    /// stitched back in row-id order — so the tuple order (lexicographic
    /// in root row, then child rows) is identical at every thread count.
    pub fn compute_with(db: &Database, view: &View, exec: &ExecConfig) -> Universal {
        let _span = exec.metrics().span("join");
        let schema = db.schema_arc();
        let stride = schema.relation_count();
        let components = join_forest(&schema);
        exec.metrics().incr("join.runs");
        exec.metrics()
            .add("join.components", components.len() as u64);

        // Join each component independently.
        let mut per_component: Vec<Vec<u32>> = Vec::with_capacity(components.len());
        for comp in &components {
            let tuples = join_component(db, view, comp, stride, exec);
            // Per-component output size distribution. Recorded on the
            // orchestrating thread in component order, so the histogram
            // is bit-identical at every thread count.
            exec.metrics()
                .observe("join.component_rows", (tuples.len() / stride) as u64);
            per_component.push(tuples);
        }

        // Cross product across components. If any component is empty the
        // whole universal relation is empty.
        let mut data = per_component.pop().unwrap_or_default();
        for other in per_component.into_iter().rev() {
            if data.is_empty() || other.is_empty() {
                data.clear();
                break;
            }
            let mut combined =
                Vec::with_capacity((data.len() / stride) * (other.len() / stride) * stride);
            for a in data.chunks_exact(stride) {
                for b in other.chunks_exact(stride) {
                    combined.extend(a.iter().zip(b).map(|(&x, &y)| x.min(y)));
                }
            }
            data = combined;
        }

        let u = Universal {
            schema,
            stride,
            data,
        };
        exec.metrics().add("join.tuples", u.len() as u64);
        u
    }

    /// Delta-extend a universal relation after rows were appended to
    /// `db`: returns the universal relation a from-scratch
    /// [`Universal::compute_with`] over the current full view would
    /// produce — tuple for tuple, in the same order — plus, per
    /// relation, the set of rows appearing in at least one *new* tuple
    /// (sized to the post-append relation lengths). `old_lens[rel]` is
    /// each relation's length when `old` was computed.
    ///
    /// This is the paper's program-**P** idea run forward: instead of a
    /// deletion fixpoint, the appended rows are the seed Δ and one
    /// semi-naive round materializes every join combination that uses
    /// them. For a single-component schema the new tuples are
    /// partitioned by their *first* relation (in component order) that
    /// holds a new row: for pivot `i`, relations before `i` are
    /// restricted to their old rows, relation `i` to its new rows, and
    /// later relations are unrestricted. Each partition runs through the
    /// ordinary `join_component` machinery, so every new tuple is
    /// produced exactly once. Because the component's output order is
    /// strictly lexicographic in (root row, edge-child rows…) — a key in
    /// which every component relation appears exactly once — sorting the
    /// delta by that key and merging it with `old` (already sorted, and
    /// key-disjoint since old tuples hold no new rows) reproduces the
    /// rebuild order exactly.
    ///
    /// Note `old` may have been computed over a *reduced* view: full
    /// semijoin reduction keeps exactly the rows participating in some
    /// universal tuple, so the universal relation over the reduced view
    /// equals the one over the full view.
    ///
    /// Multi-component schemas would need per-component tuple caches to
    /// delta the cross product, so they fall back to a full recompute
    /// (the returned touched-rows sets then cover the whole projection,
    /// which is still a correct over-approximation of "new").
    pub fn extend_for_append_with(
        old: &Universal,
        db: &Database,
        old_lens: &[usize],
        exec: &ExecConfig,
    ) -> (Universal, Vec<TupleSet>) {
        let sink = exec.metrics();
        let _span = sink.span("ingest.delta_join");
        let schema = db.schema_arc();
        let stride = schema.relation_count();
        if (0..stride).all(|rel| db.relation_len(rel) == old_lens[rel]) {
            let touched = (0..stride)
                .map(|rel| TupleSet::empty(db.relation_len(rel)))
                .collect();
            return (old.clone(), touched);
        }
        let components = join_forest(&schema);
        if components.len() != 1 {
            sink.incr("ingest.delta.full_rebuilds");
            let u = Universal::compute_with(db, &db.full_view(), exec);
            let touched = (0..stride).map(|rel| u.projected_rows(db, rel)).collect();
            return (u, touched);
        }
        let comp = &components[0];

        // One join_component run per pivot relation that gained rows.
        let mut delta: Vec<u32> = Vec::new();
        for (i, &pivot) in comp.relations.iter().enumerate() {
            if db.relation_len(pivot) == old_lens[pivot] {
                continue;
            }
            let live = (0..stride)
                .map(|rel| {
                    let len = db.relation_len(rel);
                    match comp.relations.iter().position(|&r| r == rel) {
                        Some(j) if j < i => TupleSet::prefix(len, old_lens[rel]),
                        Some(j) if j == i => TupleSet::prefix(len, old_lens[rel]).complement(),
                        _ => TupleSet::full(len),
                    }
                })
                .collect();
            let view = View { live };
            delta.extend(join_component(db, &view, comp, stride, exec));
        }
        sink.add("ingest.delta.tuples", (delta.len() / stride) as u64);

        let mut touched: Vec<TupleSet> = (0..stride)
            .map(|rel| TupleSet::empty(db.relation_len(rel)))
            .collect();
        for t in delta.chunks_exact(stride) {
            for (rel, &row) in t.iter().enumerate() {
                if row != u32::MAX {
                    touched[rel].insert(row as usize);
                }
            }
        }

        // Sort the delta by the component's output key and merge with the
        // old tuples. No two tuples share a key (old/old by strictness of
        // the component order, old/delta because a delta tuple holds at
        // least one new row, delta/delta by the exactly-once partition).
        let key_slots: Vec<usize> = std::iter::once(comp.root)
            .chain(comp.edges.iter().map(|e| e.child))
            .collect();
        let key_cmp = |a: &[u32], b: &[u32]| {
            key_slots
                .iter()
                .map(|&s| a[s])
                .cmp(key_slots.iter().map(|&s| b[s]))
        };
        let mut delta_tuples: Vec<&[u32]> = delta.chunks_exact(stride).collect();
        delta_tuples.sort_unstable_by(|a, b| key_cmp(a, b));
        let mut data = Vec::with_capacity(old.data.len() + delta.len());
        let mut old_iter = old.data.chunks_exact(stride).peekable();
        let mut delta_iter = delta_tuples.into_iter().peekable();
        loop {
            match (old_iter.peek(), delta_iter.peek()) {
                (Some(a), Some(b)) => {
                    if key_cmp(a, b) == std::cmp::Ordering::Less {
                        data.extend_from_slice(old_iter.next().expect("peeked"));
                    } else {
                        data.extend_from_slice(delta_iter.next().expect("peeked"));
                    }
                }
                (Some(_), None) => data.extend_from_slice(old_iter.next().expect("peeked")),
                (None, Some(_)) => data.extend_from_slice(delta_iter.next().expect("peeked")),
                (None, None) => break,
            }
        }
        let u = Universal {
            schema,
            stride,
            data,
        };
        (u, touched)
    }

    /// Number of universal tuples.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.stride).unwrap_or(0)
    }

    /// Whether there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The tuple at index `i`: one row index per relation.
    #[inline]
    pub fn tuple(&self, i: usize) -> &[u32] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// Iterator over tuples.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[u32]> {
        self.data.chunks_exact(self.stride.max(1))
    }

    /// `Π_{A_rel}(U)` as a row set: the rows of relation `rel` that appear
    /// in at least one universal tuple.
    pub fn projected_rows(&self, db: &Database, rel: usize) -> TupleSet {
        let mut set = TupleSet::empty(db.relation_len(rel));
        for t in self.iter() {
            set.insert(t[rel] as usize);
        }
        set
    }

    /// The schema this universal relation was computed over.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }
}

/// A per-edge probe mapping a parent row to its matching child rows.
///
/// When every join column on both sides is dictionary-coded, the probe
/// works entirely in `u32` code space: parent codes are translated into
/// the child's dictionary once per *code* (not per row), and child rows
/// are bucketed per code (single-column edges) or keyed by code tuples
/// (composite edges) — the inner probe loop then never clones or hashes a
/// [`Value`]. Otherwise the edge falls back to the `Value`-keyed
/// [`HashIndex`]. Bucket contents are pushed in live-row ascending order
/// in every variant, exactly like [`HashIndex::build`], so the probe
/// order — and hence the universal tuple order — is identical across
/// variants and thread counts.
enum EdgeProbe<'a> {
    /// One coded join column: `buckets[child_code]` lists child rows.
    Single {
        /// Parent-side codes, per parent row.
        parent_codes: &'a [u32],
        /// Parent code → child code, or [`NO_CODE`].
        translate: Vec<u32>,
        /// Child code → live child rows, ascending.
        buckets: Vec<Vec<u32>>,
    },
    /// One coded join column, but with few live parent rows (the delta
    /// side of an incremental join): instead of translating every parent
    /// code and bucketing every child code, only the codes the live
    /// parent rows can actually present are translated, and child rows
    /// are bucketed under those parent codes directly. Build cost is
    /// O(live parents + child scan), not O(dictionaries).
    SingleSparse {
        /// Parent-side codes, per parent row.
        parent_codes: &'a [u32],
        /// Parent code → live child rows, ascending; codes no live
        /// parent row holds are simply absent.
        buckets: HashMap<u32, Vec<u32>>,
    },
    /// Composite coded join columns: child rows keyed by code tuples.
    Multi {
        /// Per join column: parent-side codes per parent row.
        parent_codes: Vec<&'a [u32]>,
        /// Per join column: parent code → child code, or [`NO_CODE`].
        translations: Vec<Vec<u32>>,
        /// Child code tuple → live child rows, ascending.
        map: HashMap<Box<[u32]>, Vec<u32>>,
    },
    /// Fallback for undictionarized columns: `Value`-keyed hash index.
    Values(HashIndex),
}

impl EdgeProbe<'_> {
    /// Build the probe for `edge` over the live child rows of `view`.
    fn build<'a>(
        db: &Database,
        store: &'a ColumnStore,
        view: &View,
        edge: &TreeEdge,
    ) -> EdgeProbe<'a> {
        let parent: Option<Vec<(&[u32], &Dict)>> = edge
            .parent_cols
            .iter()
            .map(|&col| {
                store.dict_column(AttrRef {
                    rel: edge.parent,
                    col,
                })
            })
            .collect();
        let child: Option<Vec<(&[u32], &Dict)>> = edge
            .child_cols
            .iter()
            .map(|&col| {
                store.dict_column(AttrRef {
                    rel: edge.child,
                    col,
                })
            })
            .collect();
        match (parent, child) {
            (Some(parent), Some(child)) if parent.len() == 1 => {
                let (parent_codes, pdict) = parent[0];
                let (child_codes, cdict) = child[0];
                // When few parent rows are live — the delta partitions of
                // [`Universal::extend_for_append_with`] — the full
                // per-code translation table and per-code bucket vector
                // would dwarf the probe itself; translate only the codes
                // those rows hold. Both variants bucket child rows in
                // live-row ascending order, so the choice (a function of
                // the view alone) never changes the output.
                let parent_live = view.live(edge.parent).count();
                if parent_live * 16 <= pdict.len() {
                    let mut translated: std::collections::HashSet<u32> =
                        std::collections::HashSet::with_capacity(parent_live);
                    let mut child_to_parent: HashMap<u32, u32> =
                        HashMap::with_capacity(parent_live);
                    for row in view.live(edge.parent).iter() {
                        let pc = parent_codes[row];
                        if translated.insert(pc) {
                            if let Some(cc) = cdict.code(pdict.value(pc)) {
                                child_to_parent.insert(cc, pc);
                            }
                        }
                    }
                    let mut buckets: HashMap<u32, Vec<u32>> =
                        HashMap::with_capacity(child_to_parent.len());
                    for row in view.live(edge.child).iter() {
                        if let Some(&pc) = child_to_parent.get(&child_codes[row]) {
                            buckets.entry(pc).or_default().push(row as u32);
                        }
                    }
                    return EdgeProbe::SingleSparse {
                        parent_codes,
                        buckets,
                    };
                }
                let translate = pdict.translate_to(cdict);
                let mut buckets = vec![Vec::new(); cdict.len()];
                for row in view.live(edge.child).iter() {
                    buckets[child_codes[row] as usize].push(row as u32);
                }
                EdgeProbe::Single {
                    parent_codes,
                    translate,
                    buckets,
                }
            }
            (Some(parent), Some(child)) => {
                let translations = parent
                    .iter()
                    .zip(&child)
                    .map(|(&(_, pd), &(_, cd))| pd.translate_to(cd))
                    .collect();
                let parent_codes = parent.iter().map(|&(codes, _)| codes).collect();
                let mut map: HashMap<Box<[u32]>, Vec<u32>> = HashMap::new();
                let mut key: Vec<u32> = Vec::with_capacity(child.len());
                for row in view.live(edge.child).iter() {
                    key.clear();
                    key.extend(child.iter().map(|&(codes, _)| codes[row]));
                    map.entry(key.as_slice().into())
                        .or_default()
                        .push(row as u32);
                }
                EdgeProbe::Multi {
                    parent_codes,
                    translations,
                    map,
                }
            }
            _ => EdgeProbe::Values(HashIndex::build(
                db,
                edge.child,
                &edge.child_cols,
                view.live(edge.child),
            )),
        }
    }

    /// The live child rows matching `parent_row`, in ascending order.
    /// `vkey`/`ckey` are reusable scratch buffers for the `Values` and
    /// `Multi` variants.
    #[inline]
    fn child_rows<'s>(
        &'s self,
        parent_rel: &Relation,
        parent_cols: &[usize],
        parent_row: usize,
        vkey: &mut Vec<Value>,
        ckey: &mut Vec<u32>,
    ) -> &'s [u32] {
        match self {
            EdgeProbe::Single {
                parent_codes,
                translate,
                buckets,
            } => {
                let code = translate[parent_codes[parent_row] as usize];
                if code == NO_CODE {
                    &[]
                } else {
                    &buckets[code as usize]
                }
            }
            EdgeProbe::SingleSparse {
                parent_codes,
                buckets,
            } => buckets
                .get(&parent_codes[parent_row])
                .map_or(&[][..], Vec::as_slice),
            EdgeProbe::Multi {
                parent_codes,
                translations,
                map,
            } => {
                ckey.clear();
                for (codes, translate) in parent_codes.iter().zip(translations) {
                    let code = translate[codes[parent_row] as usize];
                    if code == NO_CODE {
                        return &[];
                    }
                    ckey.push(code);
                }
                map.get(ckey.as_slice()).map_or(&[][..], Vec::as_slice)
            }
            EdgeProbe::Values(index) => {
                parent_rel.project_into(parent_row, parent_cols, vkey);
                index.get(vkey)
            }
        }
    }
}

/// Join one component along its BFS tree; returns flat tuples of `stride`
/// row indices where slots outside the component hold `u32::MAX`.
///
/// The output order is lexicographic in (root row, first-edge child row,
/// second-edge child row, …), which is a property of the *input* alone:
/// partitioning the root rows and concatenating the per-block outputs in
/// block order reproduces it exactly, so the parallel path is
/// bit-identical to the sequential one.
fn join_component(
    db: &Database,
    view: &View,
    comp: &Component,
    stride: usize,
    exec: &ExecConfig,
) -> Vec<u32> {
    let roots: Vec<u32> = view.live(comp.root).iter().map(|row| row as u32).collect();

    // Counter discipline: counts are derived from the inputs and the
    // stitched outputs on this (orchestrating) thread, never from
    // per-worker progress, so they are bit-identical at any thread
    // count. `build_rows` counts the rows *entering* each edge's probe
    // structure as a function of the view alone, regardless of which
    // probe variant the edge's columns allow.
    let sink = exec.metrics();
    sink.add("join.root_rows", roots.len() as u64);
    sink.add(
        "join.build_rows",
        comp.edges
            .iter()
            .map(|e| view.live(e.child).count() as u64)
            .sum(),
    );
    let record_matches = |data: &Vec<u32>| {
        sink.add("join.probe_matches", (data.len() / stride.max(1)) as u64);
    };

    // Build each edge's probe once, up front, and share it read-only
    // across the sequential loop or the parallel workers alike.
    let store = Arc::clone(db.columns());
    let probes: Vec<EdgeProbe<'_>> = comp
        .edges
        .iter()
        .map(|e| EdgeProbe::build(db, &store, view, e))
        .collect();

    if !exec.is_parallel() || roots.len() < MIN_PARALLEL_ROOTS {
        let data = expand_roots(db, comp, stride, &roots, &probes);
        record_matches(&data);
        return data;
    }

    let block = par::even_block_size(exec, roots.len());
    let parts = par::map_blocks(exec, &roots, block, |_, chunk| {
        expand_roots(db, comp, stride, chunk, &probes)
    });
    let mut data = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        data.extend(part);
    }
    record_matches(&data);
    data
}

/// Expand a slice of root rows through every edge of the component,
/// against the shared prebuilt per-edge probes.
fn expand_roots(
    db: &Database,
    comp: &Component,
    stride: usize,
    roots: &[u32],
    probes: &[EdgeProbe<'_>],
) -> Vec<u32> {
    let mut partials: Vec<u32> = Vec::with_capacity(roots.len() * stride);
    for &row in roots {
        let base = partials.len();
        partials.resize(base + stride, u32::MAX);
        partials[base + comp.root] = row;
    }

    let mut vkey: Vec<Value> = Vec::new();
    let mut ckey: Vec<u32> = Vec::new();
    for (edge, probe) in comp.edges.iter().zip(probes) {
        if partials.is_empty() {
            break;
        }
        let parent_rel = db.relation(edge.parent);
        let mut next: Vec<u32> = Vec::with_capacity(partials.len());
        for t in partials.chunks_exact(stride) {
            let parent_row = t[edge.parent] as usize;
            let matches = probe.child_rows(
                parent_rel,
                &edge.parent_cols,
                parent_row,
                &mut vkey,
                &mut ckey,
            );
            for &child_row in matches {
                let base = next.len();
                next.extend_from_slice(t);
                next[base + edge.child] = child_row;
            }
        }
        partials = next;
    }
    partials
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::{Value, ValueType as T};

    /// The Figure 3 instance of the running example.
    fn figure3_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation(
                "Author",
                &[
                    ("id", T::Str),
                    ("name", T::Str),
                    ("inst", T::Str),
                    ("dom", T::Str),
                ],
                &["id"],
            )
            .relation(
                "Authored",
                &[("id", T::Str), ("pubid", T::Str)],
                &["id", "pubid"],
            )
            .relation(
                "Publication",
                &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
                &["pubid"],
            )
            .standard_fk("Authored", &["id"], "Author")
            .back_and_forth_fk("Authored", &["pubid"], "Publication")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (id, name, inst, dom) in [
            ("A1", "JG", "C.edu", "edu"),
            ("A2", "RR", "M.com", "com"),
            ("A3", "CM", "I.com", "com"),
        ] {
            db.insert(
                "Author",
                vec![id.into(), name.into(), inst.into(), dom.into()],
            )
            .unwrap();
        }
        for (id, pubid) in [
            ("A1", "P1"),
            ("A2", "P1"),
            ("A1", "P2"),
            ("A3", "P2"),
            ("A2", "P3"),
            ("A3", "P3"),
        ] {
            db.insert("Authored", vec![id.into(), pubid.into()])
                .unwrap();
        }
        for (pubid, year, venue) in [
            ("P1", 2001, "SIGMOD"),
            ("P2", 2011, "VLDB"),
            ("P3", 2001, "SIGMOD"),
        ] {
            db.insert("Publication", vec![pubid.into(), year.into(), venue.into()])
                .unwrap();
        }
        db.validate().unwrap();
        db
    }

    #[test]
    fn join_forest_of_running_example() {
        let db = figure3_db();
        let forest = join_forest(db.schema());
        assert_eq!(forest.len(), 1);
        let comp = &forest[0];
        assert_eq!(comp.relations.len(), 3);
        assert_eq!(comp.edges.len(), 2);
    }

    #[test]
    fn universal_matches_figure4() {
        // Figure 4: six universal tuples u1..u6.
        let db = figure3_db();
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(u.len(), 6);

        // Each tuple must be join-consistent: Authored.id = Author.id and
        // Authored.pubid = Publication.pubid.
        let author = db.schema().relation_index("Author").unwrap();
        let authored = db.schema().relation_index("Authored").unwrap();
        let publication = db.schema().relation_index("Publication").unwrap();
        for t in u.iter() {
            let a = db.relation(author).row(t[author] as usize);
            let ad = db.relation(authored).row(t[authored] as usize);
            let p = db.relation(publication).row(t[publication] as usize);
            assert_eq!(a[0], ad[0]);
            assert_eq!(ad[1], p[0]);
        }

        // Every base tuple appears (the instance is semijoin-reduced).
        for rel in [author, authored, publication] {
            assert_eq!(u.projected_rows(&db, rel).count(), db.relation_len(rel));
        }
    }

    #[test]
    fn universal_on_restricted_view() {
        let db = figure3_db();
        let mut view = db.full_view();
        // Remove publication P1 (row 0): u1, u2 disappear.
        let publication = db.schema().relation_index("Publication").unwrap();
        view.live[publication].remove(0);
        let u = Universal::compute(&db, &view);
        assert_eq!(u.len(), 4);
        // Authored rows s1 (A1,P1) and s2 (A2,P1) are now dangling.
        let authored = db.schema().relation_index("Authored").unwrap();
        let rows = u.projected_rows(&db, authored);
        assert!(!rows.contains(0) && !rows.contains(1));
        assert_eq!(rows.count(), 4);
    }

    #[test]
    fn empty_relation_empties_universal() {
        let db = figure3_db();
        let mut view = db.full_view();
        view.live[0].clear();
        let u = Universal::compute(&db, &view);
        assert!(u.is_empty());
        assert_eq!(u.len(), 0);
    }

    #[test]
    fn cross_product_of_disconnected_components() {
        let schema = SchemaBuilder::new()
            .relation("A", &[("x", T::Int)], &["x"])
            .relation("B", &[("y", T::Int)], &["y"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("A", vec![1.into()]).unwrap();
        db.insert("A", vec![2.into()]).unwrap();
        db.insert("B", vec![10.into()]).unwrap();
        db.insert("B", vec![20.into()]).unwrap();
        db.insert("B", vec![30.into()]).unwrap();
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(u.len(), 6);
        let mut pairs: Vec<(u32, u32)> = u.iter().map(|t| (t[0], t[1])).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]);
    }

    #[test]
    fn disconnected_with_one_empty_component_is_empty() {
        let schema = SchemaBuilder::new()
            .relation("A", &[("x", T::Int)], &["x"])
            .relation("B", &[("y", T::Int)], &["y"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("A", vec![1.into()]).unwrap();
        let u = Universal::compute(&db, &db.full_view());
        assert!(u.is_empty());
    }

    #[test]
    fn parallel_universal_matches_sequential() {
        // Enough root rows to clear MIN_PARALLEL_ROOTS, with uneven
        // fan-out so block boundaries land mid-expansion.
        let schema = SchemaBuilder::new()
            .relation("P", &[("id", T::Int)], &["id"])
            .relation("C", &[("id", T::Int), ("p", T::Int)], &["id"])
            .standard_fk("C", &["p"], "P")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for i in 0..1500i64 {
            db.insert("P", vec![i.into()]).unwrap();
        }
        let mut cid = 0i64;
        for i in 0..1500i64 {
            for _ in 0..(i % 4) {
                db.insert("C", vec![cid.into(), i.into()]).unwrap();
                cid += 1;
            }
        }
        let view = db.full_view();
        let sequential = Universal::compute(&db, &view);
        assert!(!sequential.is_empty());
        for threads in [2, 3, 7, 16] {
            let exec = crate::par::ExecConfig::with_threads(threads);
            let parallel = Universal::compute_with(&db, &view, &exec);
            assert_eq!(sequential.len(), parallel.len(), "threads = {threads}");
            assert!(
                sequential.iter().eq(parallel.iter()),
                "tuple order must be identical at {threads} threads"
            );
        }
    }

    /// Extend `old` over the appended rows and assert tuple-for-tuple
    /// equality with a from-scratch recompute, at several thread counts.
    fn assert_extend_matches_rebuild(db: &Database, old: &Universal, old_lens: &[usize]) {
        let rebuilt = Universal::compute(db, &db.full_view());
        let (seq, touched) =
            Universal::extend_for_append_with(old, db, old_lens, &ExecConfig::sequential());
        assert_eq!(seq.len(), rebuilt.len(), "tuple count");
        assert!(
            seq.iter().eq(rebuilt.iter()),
            "tuple order must match rebuild"
        );
        // Touched rows cover exactly the rows gaining new tuples (or the
        // whole projection on the fallback path) — either way a subset of
        // the rebuild's projection.
        for (rel, rows) in touched.iter().enumerate() {
            assert!(
                rows.is_subset(&rebuilt.projected_rows(db, rel)),
                "rel {rel}"
            );
        }
        for threads in [2, 7] {
            let exec = ExecConfig::with_threads(threads);
            let (par, par_touched) = Universal::extend_for_append_with(old, db, old_lens, &exec);
            assert!(par.iter().eq(rebuilt.iter()), "threads = {threads}");
            assert_eq!(par_touched, touched, "touched rows at {threads} threads");
        }
    }

    #[test]
    fn extend_for_append_matches_rebuild_on_running_example() {
        let mut db = figure3_db();
        let old = Universal::compute(&db, &db.full_view());
        let old_lens = vec![3, 6, 3];
        // New author, new publication, and new Authored edges touching
        // both old and new rows — every pivot position gains rows.
        db.append_batch(vec![
            (
                "Author".into(),
                vec![vec!["A4".into(), "XY".into(), "C.edu".into(), "edu".into()]],
            ),
            (
                "Publication".into(),
                vec![vec!["P4".into(), 2013.into(), "SIGMOD".into()]],
            ),
            (
                "Authored".into(),
                vec![
                    vec!["A4".into(), "P4".into()],
                    vec!["A1".into(), "P4".into()],
                    vec!["A4".into(), "P1".into()],
                ],
            ),
        ])
        .unwrap();
        assert_extend_matches_rebuild(&db, &old, &old_lens);
    }

    #[test]
    fn extend_for_append_from_reduced_view_matches_rebuild() {
        // `PreparedDb` computes the universal relation over the reduced
        // view; parity must hold from that starting point too.
        let mut db = figure3_db();
        // A dangling author (no publications) so reduction actually drops.
        db.insert(
            "Author",
            vec!["A9".into(), "ZZ".into(), "Z.org".into(), "org".into()],
        )
        .unwrap();
        let reduced = crate::semijoin::reduce(&db, &db.full_view());
        let old = Universal::compute(&db, &reduced);
        let old_lens = vec![4, 6, 3];
        db.append_batch(vec![(
            "Authored".into(),
            vec![vec!["A9".into(), "P2".into()]],
        )])
        .unwrap();
        assert_extend_matches_rebuild(&db, &old, &old_lens);
    }

    #[test]
    fn extend_for_append_single_relation() {
        let schema = SchemaBuilder::new()
            .relation("R", &[("a", T::Int)], &["a"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for i in 0..5 {
            db.insert("R", vec![Value::Int(i)]).unwrap();
        }
        let old = Universal::compute(&db, &db.full_view());
        db.append_batch(vec![(
            "R".into(),
            vec![vec![Value::Int(7)], vec![Value::Int(9)]],
        )])
        .unwrap();
        assert_extend_matches_rebuild(&db, &old, &[5]);
    }

    #[test]
    fn extend_for_append_with_no_new_rows_is_identity() {
        let db = figure3_db();
        let old = Universal::compute(&db, &db.full_view());
        let (same, touched) =
            Universal::extend_for_append_with(&old, &db, &[3, 6, 3], &ExecConfig::sequential());
        assert!(same.iter().eq(old.iter()));
        assert!(touched.iter().all(TupleSet::is_empty));
    }

    #[test]
    fn extend_for_append_multi_component_falls_back() {
        let schema = SchemaBuilder::new()
            .relation("A", &[("x", T::Int)], &["x"])
            .relation("B", &[("y", T::Int)], &["y"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("A", vec![1.into()]).unwrap();
        db.insert("B", vec![10.into()]).unwrap();
        let old = Universal::compute(&db, &db.full_view());
        db.append_batch(vec![
            ("A".into(), vec![vec![2.into()]]),
            ("B".into(), vec![vec![20.into()]]),
        ])
        .unwrap();
        assert_extend_matches_rebuild(&db, &old, &[1, 1]);
    }

    #[test]
    fn single_relation_universal_is_identity() {
        let schema = SchemaBuilder::new()
            .relation("R", &[("a", T::Int)], &["a"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for i in 0..5 {
            db.insert("R", vec![Value::Int(i)]).unwrap();
        }
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(u.len(), 5);
        let rows: Vec<u32> = u.iter().map(|t| t[0]).collect();
        assert_eq!(rows, vec![0, 1, 2, 3, 4]);
    }
}
