//! Yannakakis-style full semijoin reduction.
//!
//! A database is *semijoin-reduced* (globally consistent) when every tuple
//! participates in at least one universal tuple: `R_i = Π_{A_i}(U(D))` for
//! all `i`. The paper requires (a) the input database and (b) every
//! residual database `D − Δ` to be semijoin-reduced (Definition 2.6, item
//! 2); Rule (ii) of program **P** *is* a semijoin reduction.
//!
//! For an acyclic schema the classic two-pass reducer (bottom-up then
//! top-down along the join tree) produces the reduction without
//! materializing the join.
//!
//! ```
//! use exq_relstore::{semijoin, Database, SchemaBuilder, ValueType};
//!
//! let schema = SchemaBuilder::new()
//!     .relation("Parent", &[("id", ValueType::Int)], &["id"])
//!     .relation("Child", &[("id", ValueType::Int), ("p", ValueType::Int)], &["id"])
//!     .standard_fk("Child", &["p"], "Parent")
//!     .build()?;
//! let mut db = Database::new(schema);
//! db.insert("Parent", vec![1.into()])?;
//! db.insert("Parent", vec![2.into()])?; // no children: dangles
//! db.insert("Child", vec![10.into(), 1.into()])?;
//!
//! let reduced = semijoin::reduce(&db, &db.full_view());
//! assert!(reduced.live(0).contains(0));
//! assert!(!reduced.live(0).contains(1), "Parent(2) joins nothing");
//! assert!(!semijoin::is_reduced(&db, &db.full_view()));
//! # Ok::<(), exq_relstore::Error>(())
//! ```

use crate::database::{Database, View};
use crate::dict::{Dict, NO_CODE};
use crate::index::key_set;
use crate::join::{join_forest, Component};
use crate::par::{self, ExecConfig};
use crate::schema::AttrRef;
use crate::tupleset::TupleSet;
use std::collections::HashSet;

/// Fully reduce `view`: the returned view keeps exactly the rows that
/// appear in `U` computed over `view`.
pub fn reduce(db: &Database, view: &View) -> View {
    reduce_with(db, view, &ExecConfig::sequential())
}

/// [`reduce`] with an explicit executor. Sibling edges of the join tree
/// (same child depth) have independent semijoin targets, so their drop
/// sets are computed in parallel and applied in edge order; the surviving
/// row sets are identical to the sequential sweep at any thread count.
pub fn reduce_with(db: &Database, view: &View, exec: &ExecConfig) -> View {
    let mut out = view.clone();
    reduce_in_place_with(db, &mut out, exec);
    out
}

/// In-place variant of [`reduce`], reusing the caller's live sets.
pub fn reduce_in_place(db: &Database, view: &mut View) {
    reduce_in_place_with(db, view, &ExecConfig::sequential())
}

/// In-place variant of [`reduce_with`].
pub fn reduce_in_place_with(db: &Database, view: &mut View, exec: &ExecConfig) {
    let sink = exec.metrics();
    let _span = sink.span("semijoin");
    sink.incr("semijoin.runs");
    sink.add("semijoin.rows_in", view.total_live() as u64);
    let components = join_forest(db.schema());
    for comp in &components {
        reduce_component(db, view, comp, exec);
    }
    // Cross-component semantics: the universal relation is the cross
    // product of the component joins, so one empty component empties all
    // projections.
    if view.live.iter().any(TupleSet::is_empty) {
        let cleared: u64 = view.live.iter().map(|set| set.count() as u64).sum();
        sink.add("semijoin.rows_dropped", cleared);
        sink.add("semijoin.drops.cross_component", cleared);
        for set in &mut view.live {
            set.clear();
        }
    }
    // Conservation law (asserted by the property suite):
    // rows_in == rows_dropped + rows_surviving, per reduction run.
    sink.add("semijoin.rows_surviving", view.total_live() as u64);
}

/// Whether `view` is already semijoin-reduced.
pub fn is_reduced(db: &Database, view: &View) -> bool {
    &reduce(db, view) == view
}

/// One directed semijoin step `target ⋉= source`, borrowed from a tree edge.
struct Step<'a> {
    target: usize,
    target_cols: &'a [usize],
    source: usize,
    source_cols: &'a [usize],
}

fn reduce_component(db: &Database, view: &mut View, comp: &Component, exec: &ExecConfig) {
    // Child depth per edge (edges are in BFS order, so parents resolve
    // before their children).
    let mut depth = vec![0usize; db.schema().relation_count()];
    for e in &comp.edges {
        depth[e.child] = depth[e.parent] + 1;
    }
    let max_depth = comp.edges.iter().map(|e| depth[e.child]).max().unwrap_or(0);

    // Bottom-up: parent ⋉= child, deepest children first. Edges within one
    // depth level only *read* child live sets (untouched at this level) and
    // *shrink* parent live sets, so their drop sets are independent.
    for d in (1..=max_depth).rev() {
        let steps: Vec<Step<'_>> = comp
            .edges
            .iter()
            .rev()
            .filter(|e| depth[e.child] == d)
            .map(|e| Step {
                target: e.parent,
                target_cols: &e.parent_cols,
                source: e.child,
                source_cols: &e.child_cols,
            })
            .collect();
        apply_steps(db, view, &steps, exec, "bottom_up");
    }
    // Top-down: child ⋉= parent, shallowest first. Each child is the target
    // of exactly one tree edge, so a depth level's steps touch disjoint
    // relations.
    for d in 1..=max_depth {
        let steps: Vec<Step<'_>> = comp
            .edges
            .iter()
            .filter(|e| depth[e.child] == d)
            .map(|e| Step {
                target: e.child,
                target_cols: &e.child_cols,
                source: e.parent,
                source_cols: &e.parent_cols,
            })
            .collect();
        apply_steps(db, view, &steps, exec, "top_down");
    }
}

/// Run one depth level's semijoin steps: compute every step's drop set
/// against the unchanged view (in parallel when allowed), then apply the
/// removals in step order. Removals only shrink live sets and each step's
/// keys come from source relations no step of the level mutates, so the
/// union of drops equals the sequential step-after-step result.
fn apply_steps(db: &Database, view: &mut View, steps: &[Step<'_>], exec: &ExecConfig, pass: &str) {
    if steps.is_empty() {
        return;
    }
    // Count *effective* removals (`TupleSet::remove` returning true), not
    // drop-list lengths: two sibling steps sharing a target can both list
    // a row when computed against the frozen view, while the sequential
    // sweep lists it once. The set of rows actually removed is identical
    // on both paths, so this count is deterministic across thread counts.
    let sink = exec.metrics();
    sink.incr("semijoin.passes");
    let mut dropped: u64 = 0;
    if steps.len() < 2 || !exec.is_parallel() {
        for s in steps {
            let drops = compute_drops(db, view, s);
            for row in drops {
                dropped += u64::from(view.live[s.target].remove(row));
            }
        }
    } else {
        let frozen: &View = view;
        let drops = par::map_blocks(exec, steps, 1, |_, chunk| {
            chunk
                .iter()
                .map(|s| (s.target, compute_drops(db, frozen, s)))
                .collect::<Vec<_>>()
        });
        for group in drops {
            for (target, rows) in group {
                for row in rows {
                    dropped += u64::from(view.live[target].remove(row));
                }
            }
        }
    }
    sink.add("semijoin.rows_dropped", dropped);
    sink.add(&format!("semijoin.drops.{pass}"), dropped);
}

/// Live rows of `step.target` whose join key has no live `step.source` row.
fn compute_drops(db: &Database, view: &View, step: &Step<'_>) -> Vec<usize> {
    if let Some(drops) = compute_drops_coded(db, view, step) {
        return drops;
    }
    let keys = key_set(db, step.source, step.source_cols, view.live(step.source));
    let relation = db.relation(step.target);
    let mut key = Vec::with_capacity(step.target_cols.len());
    let mut to_drop = Vec::new();
    for row in view.live(step.target).iter() {
        relation.project_into(row, step.target_cols, &mut key);
        if !keys.contains(key.as_slice()) {
            to_drop.push(row);
        }
    }
    to_drop
}

/// Code-space variant of [`compute_drops`], applicable when every join
/// column on both sides is dictionary-coded: live source rows are marked
/// per target-side code (translating source codes via the dictionaries,
/// once per code), and target rows whose code was never marked drop. The
/// drop set — and its row order, ascending — is identical to the `Value`
/// path, since a code translation exists exactly when the `Value` key
/// occurs in the source dictionary.
fn compute_drops_coded(db: &Database, view: &View, step: &Step<'_>) -> Option<Vec<usize>> {
    let store = db.columns();
    let source: Vec<(&[u32], &Dict)> = step
        .source_cols
        .iter()
        .map(|&col| {
            store.dict_column(AttrRef {
                rel: step.source,
                col,
            })
        })
        .collect::<Option<_>>()?;
    let target: Vec<(&[u32], &Dict)> = step
        .target_cols
        .iter()
        .map(|&col| {
            store.dict_column(AttrRef {
                rel: step.target,
                col,
            })
        })
        .collect::<Option<_>>()?;
    let translations: Vec<Vec<u32>> = source
        .iter()
        .zip(&target)
        .map(|(&(_, sd), &(_, td))| sd.translate_to(td))
        .collect();

    let mut to_drop = Vec::new();
    if let ([(source_codes, _)], [(target_codes, td)]) = (&source[..], &target[..]) {
        // Single column: membership is a dense bitmap over the target's
        // code space.
        let mut live_code = vec![false; td.len()];
        for row in view.live(step.source).iter() {
            let code = translations[0][source_codes[row] as usize];
            if code != NO_CODE {
                live_code[code as usize] = true;
            }
        }
        for row in view.live(step.target).iter() {
            if !live_code[target_codes[row] as usize] {
                to_drop.push(row);
            }
        }
    } else {
        // Composite key: membership set of translated code tuples. A
        // source key with any untranslatable column can't match a target
        // row, so it is skipped.
        let mut keys: HashSet<Box<[u32]>> = HashSet::new();
        let mut key: Vec<u32> = Vec::with_capacity(source.len());
        'source: for row in view.live(step.source).iter() {
            key.clear();
            for ((codes, _), translate) in source.iter().zip(&translations) {
                let code = translate[codes[row] as usize];
                if code == NO_CODE {
                    continue 'source;
                }
                key.push(code);
            }
            keys.insert(key.as_slice().into());
        }
        let mut probe: Vec<u32> = Vec::with_capacity(target.len());
        for row in view.live(step.target).iter() {
            probe.clear();
            probe.extend(target.iter().map(|&(codes, _)| codes[row]));
            if !keys.contains(probe.as_slice()) {
                to_drop.push(row);
            }
        }
    }
    Some(to_drop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::Universal;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    /// Example 2.9's path schema R1(x), S1(x,y), R2(y), S2(y,z), R3(z).
    fn path_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("R1", &[("x", T::Str)], &["x"])
            .relation("S1", &[("x", T::Str), ("y", T::Str)], &["x", "y"])
            .relation("R2", &[("y", T::Str)], &["y"])
            .relation("S2", &[("y", T::Str), ("z", T::Str)], &["y", "z"])
            .relation("R3", &[("z", T::Str)], &["z"])
            .standard_fk("S1", &["x"], "R1")
            .standard_fk("S1", &["y"], "R2")
            .standard_fk("S2", &["y"], "R2")
            .standard_fk("S2", &["z"], "R3")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R1", vec!["a".into()]).unwrap();
        db.insert("S1", vec!["a".into(), "b".into()]).unwrap();
        db.insert("R2", vec!["b".into()]).unwrap();
        db.insert("S2", vec!["b".into(), "c".into()]).unwrap();
        db.insert("R3", vec!["c".into()]).unwrap();
        db.validate().unwrap();
        db
    }

    #[test]
    fn reduced_instance_is_fixed_point() {
        let db = path_db();
        let view = db.full_view();
        assert!(is_reduced(&db, &view));
        assert_eq!(reduce(&db, &view), view);
    }

    #[test]
    fn dangling_cascades_through_path() {
        // Example 2.9's observation: deleting S1(a,b) leaves dangling
        // tuples everywhere; semijoin reduction empties the instance.
        let db = path_db();
        let s1 = db.schema().relation_index("S1").unwrap();
        let mut view = db.full_view();
        view.live[s1].remove(0);
        let reduced = reduce(&db, &view);
        assert_eq!(reduced.total_live(), 0, "whole instance dangles");
    }

    #[test]
    fn reduction_matches_universal_projection() {
        // After adding the Example 2.10 tuples, deleting S1(a,b) leaves a
        // surviving join path a-b'-c.
        let db = {
            let mut db = path_db();
            db.insert("S1", vec!["a".into(), "b2".into()]).unwrap();
            db.insert("R2", vec!["b2".into()]).unwrap();
            db.insert("S2", vec!["b2".into(), "c".into()]).unwrap();
            db.validate().unwrap();
            db
        };
        let s1 = db.schema().relation_index("S1").unwrap();
        let mut view = db.full_view();
        view.live[s1].remove(0);

        let reduced = reduce(&db, &view);
        let u = Universal::compute(&db, &view);
        for rel in 0..db.schema().relation_count() {
            assert_eq!(
                reduced.live(rel),
                &u.projected_rows(&db, rel),
                "reduction must equal the projection of the universal relation for relation {rel}"
            );
        }
        // The survivors: R1(a), S1(a,b2), R2(b2), S2(b2,c), R3(c).
        assert_eq!(reduced.total_live(), 5);
        // But R2(b) and S2(b,c) are gone.
        let r2 = db.schema().relation_index("R2").unwrap();
        assert!(!reduced.live(r2).contains(0));
        assert!(reduced.live(r2).contains(1));
    }

    #[test]
    fn in_place_matches_pure() {
        let db = path_db();
        let mut view = db.full_view();
        view.live[1].remove(0);
        let pure = reduce(&db, &view);
        reduce_in_place(&db, &mut view);
        assert_eq!(view, pure);
    }

    #[test]
    fn parallel_reduce_matches_sequential() {
        // A star with three sibling children plus one grandchild chain, so
        // both sweeps actually get multi-step depth levels.
        let schema = SchemaBuilder::new()
            .relation("P", &[("id", T::Int)], &["id"])
            .relation("A", &[("id", T::Int), ("p", T::Int)], &["id"])
            .relation("B", &[("id", T::Int), ("p", T::Int)], &["id"])
            .relation("C", &[("id", T::Int), ("p", T::Int)], &["id"])
            .relation("G", &[("id", T::Int), ("a", T::Int)], &["id"])
            .standard_fk("A", &["p"], "P")
            .standard_fk("B", &["p"], "P")
            .standard_fk("C", &["p"], "P")
            .standard_fk("G", &["a"], "A")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for i in 0..200i64 {
            db.insert("P", vec![i.into()]).unwrap();
        }
        // A covers parents 0..150, B covers 50..200, C covers evens; G
        // covers every third A row. Intersections force real drops in both
        // sweeps.
        for i in 0..150i64 {
            db.insert("A", vec![i.into(), i.into()]).unwrap();
        }
        for i in 50..200i64 {
            db.insert("B", vec![i.into(), i.into()]).unwrap();
        }
        for i in (0..200i64).step_by(2) {
            db.insert("C", vec![i.into(), i.into()]).unwrap();
        }
        for i in (0..150i64).step_by(3) {
            db.insert("G", vec![i.into(), i.into()]).unwrap();
        }
        let view = db.full_view();
        let sequential = reduce(&db, &view);
        assert_ne!(&sequential, &view, "reduction must drop something");
        let u = Universal::compute(&db, &view);
        for rel in 0..db.schema().relation_count() {
            assert_eq!(sequential.live(rel), &u.projected_rows(&db, rel));
        }
        for threads in [2, 3, 7] {
            let exec = crate::par::ExecConfig::with_threads(threads);
            assert_eq!(
                reduce_with(&db, &view, &exec),
                sequential,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_component_empties_everything() {
        let schema = SchemaBuilder::new()
            .relation("A", &[("x", T::Int)], &["x"])
            .relation("B", &[("y", T::Int)], &["y"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("A", vec![1.into()]).unwrap();
        // B is empty: the cross product is empty, so A(1) dangles too.
        let reduced = reduce(&db, &db.full_view());
        assert_eq!(reduced.total_live(), 0);
    }
}
