//! Yannakakis-style full semijoin reduction.
//!
//! A database is *semijoin-reduced* (globally consistent) when every tuple
//! participates in at least one universal tuple: `R_i = Π_{A_i}(U(D))` for
//! all `i`. The paper requires (a) the input database and (b) every
//! residual database `D − Δ` to be semijoin-reduced (Definition 2.6, item
//! 2); Rule (ii) of program **P** *is* a semijoin reduction.
//!
//! For an acyclic schema the classic two-pass reducer (bottom-up then
//! top-down along the join tree) produces the reduction without
//! materializing the join.
//!
//! ```
//! use exq_relstore::{semijoin, Database, SchemaBuilder, ValueType};
//!
//! let schema = SchemaBuilder::new()
//!     .relation("Parent", &[("id", ValueType::Int)], &["id"])
//!     .relation("Child", &[("id", ValueType::Int), ("p", ValueType::Int)], &["id"])
//!     .standard_fk("Child", &["p"], "Parent")
//!     .build()?;
//! let mut db = Database::new(schema);
//! db.insert("Parent", vec![1.into()])?;
//! db.insert("Parent", vec![2.into()])?; // no children: dangles
//! db.insert("Child", vec![10.into(), 1.into()])?;
//!
//! let reduced = semijoin::reduce(&db, &db.full_view());
//! assert!(reduced.live(0).contains(0));
//! assert!(!reduced.live(0).contains(1), "Parent(2) joins nothing");
//! assert!(!semijoin::is_reduced(&db, &db.full_view()));
//! # Ok::<(), exq_relstore::Error>(())
//! ```

use crate::database::{Database, View};
use crate::index::key_set;
use crate::join::{join_forest, Component};
use crate::tupleset::TupleSet;

/// Fully reduce `view`: the returned view keeps exactly the rows that
/// appear in `U` computed over `view`.
pub fn reduce(db: &Database, view: &View) -> View {
    let mut out = view.clone();
    reduce_in_place(db, &mut out);
    out
}

/// In-place variant of [`reduce`], reusing the caller's live sets.
pub fn reduce_in_place(db: &Database, view: &mut View) {
    let components = join_forest(db.schema());
    for comp in &components {
        reduce_component(db, view, comp);
    }
    // Cross-component semantics: the universal relation is the cross
    // product of the component joins, so one empty component empties all
    // projections.
    if view.live.iter().any(TupleSet::is_empty) {
        for set in &mut view.live {
            set.clear();
        }
    }
}

/// Whether `view` is already semijoin-reduced.
pub fn is_reduced(db: &Database, view: &View) -> bool {
    &reduce(db, view) == view
}

fn reduce_component(db: &Database, view: &mut View, comp: &Component) {
    // Bottom-up: visit edges deepest-first; parent ⋉= child.
    for edge in comp.edges.iter().rev() {
        semi_reduce(
            db,
            view,
            edge.parent,
            &edge.parent_cols,
            edge.child,
            &edge.child_cols,
        );
    }
    // Top-down: child ⋉= parent.
    for edge in &comp.edges {
        semi_reduce(
            db,
            view,
            edge.child,
            &edge.child_cols,
            edge.parent,
            &edge.parent_cols,
        );
    }
}

/// `target ⋉= source` on the given join columns: drop live target rows whose
/// key has no live source row.
fn semi_reduce(
    db: &Database,
    view: &mut View,
    target: usize,
    target_cols: &[usize],
    source: usize,
    source_cols: &[usize],
) {
    let keys = key_set(db, source, source_cols, view.live(source));
    let relation = db.relation(target);
    let mut key = Vec::with_capacity(target_cols.len());
    let mut to_drop = Vec::new();
    for row in view.live[target].iter() {
        relation.project_into(row, target_cols, &mut key);
        if !keys.contains(key.as_slice()) {
            to_drop.push(row);
        }
    }
    for row in to_drop {
        view.live[target].remove(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::Universal;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    /// Example 2.9's path schema R1(x), S1(x,y), R2(y), S2(y,z), R3(z).
    fn path_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("R1", &[("x", T::Str)], &["x"])
            .relation("S1", &[("x", T::Str), ("y", T::Str)], &["x", "y"])
            .relation("R2", &[("y", T::Str)], &["y"])
            .relation("S2", &[("y", T::Str), ("z", T::Str)], &["y", "z"])
            .relation("R3", &[("z", T::Str)], &["z"])
            .standard_fk("S1", &["x"], "R1")
            .standard_fk("S1", &["y"], "R2")
            .standard_fk("S2", &["y"], "R2")
            .standard_fk("S2", &["z"], "R3")
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R1", vec!["a".into()]).unwrap();
        db.insert("S1", vec!["a".into(), "b".into()]).unwrap();
        db.insert("R2", vec!["b".into()]).unwrap();
        db.insert("S2", vec!["b".into(), "c".into()]).unwrap();
        db.insert("R3", vec!["c".into()]).unwrap();
        db.validate().unwrap();
        db
    }

    #[test]
    fn reduced_instance_is_fixed_point() {
        let db = path_db();
        let view = db.full_view();
        assert!(is_reduced(&db, &view));
        assert_eq!(reduce(&db, &view), view);
    }

    #[test]
    fn dangling_cascades_through_path() {
        // Example 2.9's observation: deleting S1(a,b) leaves dangling
        // tuples everywhere; semijoin reduction empties the instance.
        let db = path_db();
        let s1 = db.schema().relation_index("S1").unwrap();
        let mut view = db.full_view();
        view.live[s1].remove(0);
        let reduced = reduce(&db, &view);
        assert_eq!(reduced.total_live(), 0, "whole instance dangles");
    }

    #[test]
    fn reduction_matches_universal_projection() {
        // After adding the Example 2.10 tuples, deleting S1(a,b) leaves a
        // surviving join path a-b'-c.
        let db = {
            let mut db = path_db();
            db.insert("S1", vec!["a".into(), "b2".into()]).unwrap();
            db.insert("R2", vec!["b2".into()]).unwrap();
            db.insert("S2", vec!["b2".into(), "c".into()]).unwrap();
            db.validate().unwrap();
            db
        };
        let s1 = db.schema().relation_index("S1").unwrap();
        let mut view = db.full_view();
        view.live[s1].remove(0);

        let reduced = reduce(&db, &view);
        let u = Universal::compute(&db, &view);
        for rel in 0..db.schema().relation_count() {
            assert_eq!(
                reduced.live(rel),
                &u.projected_rows(&db, rel),
                "reduction must equal the projection of the universal relation for relation {rel}"
            );
        }
        // The survivors: R1(a), S1(a,b2), R2(b2), S2(b2,c), R3(c).
        assert_eq!(reduced.total_live(), 5);
        // But R2(b) and S2(b,c) are gone.
        let r2 = db.schema().relation_index("R2").unwrap();
        assert!(!reduced.live(r2).contains(0));
        assert!(reduced.live(r2).contains(1));
    }

    #[test]
    fn in_place_matches_pure() {
        let db = path_db();
        let mut view = db.full_view();
        view.live[1].remove(0);
        let pure = reduce(&db, &view);
        reduce_in_place(&db, &mut view);
        assert_eq!(view, pure);
    }

    #[test]
    fn empty_component_empties_everything() {
        let schema = SchemaBuilder::new()
            .relation("A", &[("x", T::Int)], &["x"])
            .relation("B", &[("y", T::Int)], &["y"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("A", vec![1.into()]).unwrap();
        // B is empty: the cross product is empty, so A(1) dangles too.
        let reduced = reduce(&db, &db.full_view());
        assert_eq!(reduced.total_live(), 0);
    }
}
