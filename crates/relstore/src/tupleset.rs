//! Dense bitsets over row indices.
//!
//! A [`TupleSet`] marks a subset of the rows of one relation by index. The
//! intervention fixpoint of program **P**, the semijoin reducer, and
//! selections all manipulate row subsets; a bitset keeps those operations
//! allocation-free per iteration and makes Δ-monotonicity (`Δ^0 ⊆ Δ^1 ⊆ …`)
//! cheap to assert.

/// A fixed-capacity bitset over the row indices `0..len` of one relation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TupleSet {
    words: Vec<u64>,
    len: usize,
}

impl TupleSet {
    /// An empty set over `len` rows.
    pub fn empty(len: usize) -> TupleSet {
        TupleSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A full set over `len` rows.
    pub fn full(len: usize) -> TupleSet {
        let mut s = TupleSet {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        s.clear_tail();
        s
    }

    /// Number of rows the set ranges over (not the number of set bits).
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Zero any bits beyond `len` in the last word so `count`/`is_empty`
    /// stay correct after whole-word operations.
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Whether row `i` is in the set.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Add row `i`. Returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let added = *w & mask == 0;
        *w |= mask;
        added
    }

    /// Remove row `i`. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let removed = *w & mask != 0;
        *w &= !mask;
        removed
    }

    /// Number of rows in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ⊆ other`. Panics if capacities differ.
    pub fn is_subset(&self, other: &TupleSet) -> bool {
        assert_eq!(self.len, other.len, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// In-place union. Returns `true` if any bit changed.
    pub fn union_with(&mut self, other: &TupleSet) -> bool {
        assert_eq!(self.len, other.len, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &TupleSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self − other`).
    pub fn difference_with(&mut self, other: &TupleSet) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The complement over the full row range.
    pub fn complement(&self) -> TupleSet {
        let mut out = TupleSet {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        out.clear_tail();
        out
    }

    /// Remove every row.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Grow the capacity to `new_len` rows, leaving every new bit clear.
    /// Existing membership is untouched; this is the append path's way of
    /// extending a live set over a relation that just gained rows.
    pub fn grow(&mut self, new_len: usize) {
        assert!(new_len >= self.len, "grow cannot shrink a TupleSet");
        self.len = new_len;
        self.words.resize(new_len.div_ceil(64), 0);
    }

    /// A set over `len` rows with exactly the first `k` bits set — the
    /// "pre-append rows" view of a relation that grew from `k` to `len`.
    pub fn prefix(len: usize, k: usize) -> TupleSet {
        assert!(k <= len, "prefix length exceeds capacity");
        let mut s = TupleSet::empty(len);
        for w in 0..k / 64 {
            s.words[w] = !0u64;
        }
        let tail = k % 64;
        if tail != 0 {
            s.words[k / 64] = (1u64 << tail) - 1;
        }
        s
    }

    /// Iterator over the set row indices, ascending.
    pub fn iter(&self) -> TupleSetIter<'_> {
        TupleSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl std::fmt::Debug for TupleSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for TupleSet {
    /// Collect indices into a set sized to the maximum index + 1. Prefer
    /// [`TupleSet::empty`] with explicit capacity when the relation size is
    /// known (it almost always is).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> TupleSet {
        let indices: Vec<usize> = iter.into_iter().collect();
        let len = indices.iter().max().map_or(0, |m| m + 1);
        let mut s = TupleSet::empty(len);
        for i in indices {
            s.insert(i);
        }
        s
    }
}

/// Ascending iterator over set bits.
pub struct TupleSetIter<'a> {
    set: &'a TupleSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for TupleSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = TupleSet::empty(130);
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        let f = TupleSet::full(130);
        assert_eq!(f.count(), 130);
        assert!(f.contains(0) && f.contains(129));
    }

    #[test]
    fn full_has_clean_tail() {
        let f = TupleSet::full(65);
        assert_eq!(f.count(), 65);
        assert_eq!(f.complement().count(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = TupleSet::empty(100);
        assert!(s.insert(5));
        assert!(!s.insert(5), "second insert reports no change");
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let mut a = TupleSet::empty(200);
        let mut b = TupleSet::empty(200);
        for i in [1, 64, 65, 199] {
            a.insert(i);
        }
        for i in [64, 100, 199] {
            b.insert(i);
        }
        assert!(!a.is_subset(&b));

        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 64, 65, 100, 199]);
        assert!(
            !u.clone().union_with(&b),
            "union with subset changes nothing"
        );
        assert!(a.is_subset(&u) && b.is_subset(&u));

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![64, 199]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 65]);

        let c = a.complement();
        assert_eq!(c.count(), 200 - a.count());
        for x in a.iter() {
            assert!(!c.contains(x));
        }
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let mut s = TupleSet::empty(300);
        let idxs = [0, 63, 64, 127, 128, 255, 299];
        for &i in &idxs {
            s.insert(i);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), idxs.to_vec());
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: TupleSet = [3usize, 7, 1].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 7]);
        let empty: TupleSet = std::iter::empty::<usize>().collect();
        assert_eq!(empty.capacity(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn grow_preserves_members_and_clears_new_bits() {
        let mut s = TupleSet::empty(70);
        s.insert(0);
        s.insert(69);
        s.grow(200);
        assert_eq!(s.capacity(), 200);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 69]);
        assert!(!s.contains(70) && !s.contains(199));
        s.insert(199);
        assert_eq!(s.count(), 3);
        // Growing by zero is a no-op.
        s.grow(200);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn grow_from_full_keeps_tail_clean() {
        let mut s = TupleSet::full(65);
        s.grow(130);
        assert_eq!(s.count(), 65, "bits 65..130 must stay clear");
        assert_eq!(s.iter().collect::<Vec<_>>(), (0..65).collect::<Vec<_>>());
    }

    #[test]
    fn prefix_sets_exactly_first_k() {
        for (len, k) in [(0, 0), (10, 0), (10, 10), (130, 64), (130, 65), (130, 129)] {
            let s = TupleSet::prefix(len, k);
            assert_eq!(s.capacity(), len);
            assert_eq!(s.count(), k, "len={len} k={k}");
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..k).collect::<Vec<_>>());
            let suffix = s.complement();
            assert_eq!(
                suffix.iter().collect::<Vec<_>>(),
                (k..len).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = TupleSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(TupleSet::full(0).count(), 0);
    }
}
