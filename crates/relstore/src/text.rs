//! Line-oriented text helpers shared by every DSL parser in the
//! workspace: the strict schema/predicate parsers here in
//! [`crate::parse`], `exq-core`'s question parser, and `exq-analyze`'s
//! tolerant checkers. One definition keeps the caret arithmetic and the
//! comment rules from drifting apart between the strict and loose
//! parsers (the drift is exactly what `exq lint`'s `L006` guards
//! against).

/// 1-based column of `sub` within `line`. `sub` must be a subslice of
/// `line` (the parsers only ever slice, never reallocate), so the
/// pointer offset is the byte offset; columns count chars so multi-byte
/// characters earlier in the line don't skew the caret.
pub fn col_of(line: &str, sub: &str) -> usize {
    let offset = (sub.as_ptr() as usize).saturating_sub(line.as_ptr() as usize);
    if offset > line.len() {
        return 1;
    }
    line[..offset].chars().count() + 1
}

/// 0-based char offset of `sub` within `line` — [`col_of`] for callers
/// that do their own `+ 1` when building spans.
pub fn off_of(line: &str, sub: &str) -> usize {
    col_of(line, sub) - 1
}

/// Cut a `#` comment (outside single- or double-quoted strings) off the
/// end of `line`.
pub fn strip_comment(line: &str) -> &str {
    let mut in_quote: Option<char> = None;
    for (i, c) in line.char_indices() {
        match in_quote {
            Some(q) if c == q => in_quote = None,
            Some(_) => {}
            None if c == '\'' || c == '"' => in_quote = Some(c),
            None if c == '#' => return &line[..i],
            None => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_of_counts_chars_not_bytes() {
        let line = "αβγ rest";
        let sub = &line[line.find("rest").unwrap()..];
        assert_eq!(col_of(line, sub), 5);
        assert_eq!(off_of(line, sub), 4);
    }

    #[test]
    fn col_of_is_total_on_foreign_slices() {
        // Not a subslice: must not panic, falls back to column 1.
        assert_eq!(col_of("abc", "zzzzzzzz"), 1);
        assert_eq!(off_of("abc", "zzzzzzzz"), 0);
    }

    #[test]
    fn strip_comment_respects_quotes() {
        assert_eq!(strip_comment("a = 1 # note"), "a = 1 ");
        assert_eq!(strip_comment("s = '#' # real"), "s = '#' ");
        assert_eq!(strip_comment("s = \"x # y\""), "s = \"x # y\"");
        assert_eq!(strip_comment("no comment"), "no comment");
    }
}
