//! # exq-relstore — the relational substrate
//!
//! An in-memory relational engine providing everything the explanation
//! framework of Roy & Suciu (SIGMOD 2014) assumes from its host DBMS:
//!
//! * typed relations with primary keys ([`schema`], [`table`], [`database`]);
//! * **standard and back-and-forth foreign keys** (Section 2.2 of the
//!   paper) and the schema causal graph (Definition 3.8);
//! * the **universal relation** `U(D) = R_1 ⋈ … ⋈ R_k` over the
//!   foreign-key join tree ([`join`]);
//! * **full semijoin reduction** for acyclic schemas ([`semijoin`]) —
//!   the engine-level primitive behind Rule (ii) of program **P**;
//! * predicates, aggregates, and the **data cube** operator
//!   (`GROUP BY … WITH CUBE`, [`cube`]) that Algorithm 1 builds on.
//!
//! The crate is deliberately self-contained (no external DBMS, no async,
//! no unsafe): the paper's algorithms are relational-algebra plans, and
//! keeping them in-process is exactly the "push the computation inside
//! the engine" premise of Section 4. The hot paths (join probe, cube,
//! semijoin sweeps) optionally fan out over OS threads through the
//! deterministic executor in [`par`] — output is bit-identical at any
//! thread count.
//!
//! ## Quick tour
//!
//! ```
//! use exq_relstore::{
//!     aggregate::{evaluate, AggFunc},
//!     Database, Predicate, SchemaBuilder, Universal, ValueType,
//! };
//!
//! let schema = SchemaBuilder::new()
//!     .relation("Author", &[("id", ValueType::Str), ("dom", ValueType::Str)], &["id"])
//!     .relation("Authored", &[("id", ValueType::Str), ("pubid", ValueType::Str)], &["id", "pubid"])
//!     .relation("Publication", &[("pubid", ValueType::Str), ("year", ValueType::Int)], &["pubid"])
//!     .standard_fk("Authored", &["id"], "Author")
//!     .back_and_forth_fk("Authored", &["pubid"], "Publication")
//!     .build()?;
//! let mut db = Database::new(schema);
//! db.insert("Author", vec!["A1".into(), "edu".into()])?;
//! db.insert("Authored", vec!["A1".into(), "P1".into()])?;
//! db.insert("Publication", vec!["P1".into(), 2001.into()])?;
//! db.validate()?;
//!
//! let u = Universal::compute(&db, &db.full_view());
//! let dom = db.schema().attr("Author", "dom")?;
//! let n = evaluate(&db, &u, &Predicate::eq(dom, "edu"), &AggFunc::CountStar)?;
//! assert_eq!(n, 1.0);
//! # Ok::<(), exq_relstore::Error>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod column;
pub mod csv;
pub mod cube;
pub mod database;
pub mod dict;
pub mod error;
pub mod index;
pub mod join;
pub mod par;
pub mod parse;
pub mod predicate;
pub mod schema;
pub mod semijoin;
pub mod stats;
pub mod table;
pub mod text;
pub mod tupleset;
pub mod value;

pub use column::{CodedPredicate, ColumnData, ColumnStore};
pub use database::{AppendBatch, Database, View};
pub use dict::{Dict, DictBuilder};
pub use error::{Error, Result};
pub use exq_obs::MetricsSink;
pub use join::Universal;
pub use par::ExecConfig;
pub use predicate::{Atom, CmpOp, Conjunction, Predicate};
pub use schema::{AttrRef, DatabaseSchema, FkKind, ForeignKey, SchemaBuilder};
pub use table::{Relation, Row};
pub use tupleset::TupleSet;
pub use value::{Value, ValueType};
