//! Columnar projections of stored relations.
//!
//! A [`ColumnStore`] is a read-only, per-attribute re-encoding of a
//! [`Database`](crate::Database)'s row storage, built by one sequential
//! scan (relations in schema order, rows in insertion order) so that every
//! derived artifact — dictionary codes in particular — is a pure function
//! of the stored rows, independent of thread count. The row storage stays
//! authoritative; columns are a cache the hot path (join probes, semijoin
//! membership, cube grouping) reads instead of cloning and hashing
//! [`Value`]s per row.
//!
//! Encoding rules, in order:
//!
//! 1. **`DictU32`** — if the column has at most [`DICT_MAX`] distinct
//!    values (under the `Value` total order, so NULLs and mixed Int/Float
//!    spellings participate like any other value), every row becomes a
//!    `u32` code into a first-appearance [`Dict`].
//! 2. **`I64`** — otherwise, if every value is strictly `Value::Int`
//!    (no NULLs, no floats), the raw `i64`s are stored densely.
//! 3. **`F64`** — otherwise, if every value is strictly `Value::Float`,
//!    the raw `f64`s are stored densely.
//! 4. **`Rows`** — otherwise the column stays row-oriented and consumers
//!    fall back to the `Value` path.
//!
//! The strictness in rules 2–3 matters: a mixed Int/Float column decoded
//! from an `I64`/`F64` array would lose which spelling each row used, so
//! such columns take rule 4 instead.

use crate::database::Database;
use crate::dict::{Dict, DictBuilder};
use crate::predicate::{Atom, Predicate};
use crate::schema::AttrRef;
use crate::table::Relation;
use crate::value::Value;

/// One attribute's column, in the densest faithful encoding available.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Dictionary-coded: `codes[row]` indexes into `dict`.
    DictU32 {
        /// Per-row dictionary codes, in row order.
        codes: Vec<u32>,
        /// The column's value dictionary.
        dict: Dict,
    },
    /// Dense `i64`s; only for columns that are strictly `Value::Int`.
    I64(Vec<i64>),
    /// Dense `f64`s; only for columns that are strictly `Value::Float`.
    F64(Vec<f64>),
    /// Row-oriented fallback: read through `Relation::row` instead.
    Rows,
}

impl ColumnData {
    /// Reconstruct the `Value` stored at `row`, or `None` for [`Rows`]
    /// columns (the caller should read the relation directly). For
    /// `DictU32` columns the decoded value is the column's
    /// first-appearance representative, which compares equal to the
    /// stored value under the `Value` total order.
    ///
    /// [`Rows`]: ColumnData::Rows
    pub fn value_at(&self, row: usize) -> Option<Value> {
        match self {
            ColumnData::DictU32 { codes, dict } => Some(dict.value(codes[row]).clone()),
            ColumnData::I64(xs) => Some(Value::Int(xs[row])),
            ColumnData::F64(xs) => Some(Value::Float(xs[row])),
            ColumnData::Rows => None,
        }
    }

    /// Whether this column is dictionary-coded.
    pub fn is_dict(&self) -> bool {
        matches!(self, ColumnData::DictU32 { .. })
    }
}

/// Columnar re-encodings of every attribute of every relation.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    /// `columns[rel][col]`, mirroring the schema layout.
    columns: Vec<Vec<ColumnData>>,
}

impl ColumnStore {
    /// Build columns for every attribute by one deterministic sequential
    /// scan. Cost is linear in the stored cells; orchestrators that care
    /// about where the time is spent should trigger this once up front
    /// (see `PreparedDb`), since `Database::columns` builds lazily.
    pub fn build(db: &Database) -> ColumnStore {
        let columns = db
            .schema()
            .relations()
            .iter()
            .enumerate()
            .map(|(rel, rs)| {
                let relation = db.relation(rel);
                (0..rs.arity())
                    .map(|col| build_column(relation, col))
                    .collect()
            })
            .collect();
        ColumnStore { columns }
    }

    /// The column for `attr`.
    #[inline]
    pub fn column(&self, attr: AttrRef) -> &ColumnData {
        &self.columns[attr.rel][attr.col]
    }

    /// The codes and dictionary for `attr`, if it is dictionary-coded.
    #[inline]
    pub fn dict_column(&self, attr: AttrRef) -> Option<(&[u32], &Dict)> {
        match self.column(attr) {
            ColumnData::DictU32 { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Compile a selection predicate against this store for repeated
    /// evaluation over universal tuples.
    ///
    /// Atoms over dictionary-coded columns are pre-evaluated once per
    /// *distinct* value into a per-code boolean mask, so the per-tuple
    /// cost drops from a `Value` comparison (string compares, Int/Float
    /// cross-type arithmetic) to two array loads. Atoms over other
    /// columns fall back to row-wise `Value` evaluation, unchanged.
    ///
    /// The compilation is *exactly* equivalent to [`Predicate::eval`],
    /// not merely close: `Value`'s `PartialEq`/`PartialOrd` are defined
    /// by the total order, every [`crate::predicate::CmpOp`] therefore
    /// depends only on a value's total-order equivalence class, and the
    /// dictionary assigns one code per class. Constant-folding of
    /// `True`/`False` through the combinators cannot change results
    /// because predicates are pure.
    pub fn compile_predicate<'a>(&'a self, p: &'a Predicate) -> CodedPredicate<'a> {
        match p {
            Predicate::True => CodedPredicate::Const(true),
            Predicate::False => CodedPredicate::Const(false),
            Predicate::Atom(a) => match self.dict_column(a.attr) {
                Some((codes, dict)) => {
                    let mask = (0..dict.len() as u32)
                        .map(|code| a.op.eval(dict.value(code), &a.value))
                        .collect();
                    CodedPredicate::Mask(MaskAtom {
                        rel: a.attr.rel,
                        codes,
                        mask,
                    })
                }
                None => CodedPredicate::Row(a),
            },
            Predicate::And(ps) => {
                let parts: Vec<CodedPredicate<'a>> =
                    ps.iter().map(|p| self.compile_predicate(p)).collect();
                if parts.iter().any(|c| matches!(c, CodedPredicate::Const(false))) {
                    return CodedPredicate::Const(false);
                }
                let mut parts: Vec<CodedPredicate<'a>> = parts
                    .into_iter()
                    .filter(|c| !matches!(c, CodedPredicate::Const(true)))
                    .collect();
                match parts.len() {
                    0 => CodedPredicate::Const(true),
                    1 => parts.pop().expect("len checked"),
                    // Conjunctions of mask atoms — candidate explanations
                    // and the experiments' selections — get a flat,
                    // dispatch-free representation.
                    _ if parts.iter().all(|c| matches!(c, CodedPredicate::Mask(_))) => {
                        CodedPredicate::AllMasks(
                            parts
                                .into_iter()
                                .map(|c| match c {
                                    CodedPredicate::Mask(m) => m,
                                    _ => unreachable!("all parts checked to be masks"),
                                })
                                .collect(),
                        )
                    }
                    _ => CodedPredicate::All(parts),
                }
            }
            Predicate::Or(ps) => {
                let parts: Vec<CodedPredicate<'a>> =
                    ps.iter().map(|p| self.compile_predicate(p)).collect();
                if parts.iter().any(|c| matches!(c, CodedPredicate::Const(true))) {
                    return CodedPredicate::Const(true);
                }
                let mut parts: Vec<CodedPredicate<'a>> = parts
                    .into_iter()
                    .filter(|c| !matches!(c, CodedPredicate::Const(false)))
                    .collect();
                match parts.len() {
                    0 => CodedPredicate::Const(false),
                    1 => parts.pop().expect("len checked"),
                    _ => CodedPredicate::Any(parts),
                }
            }
            Predicate::Not(p) => match self.compile_predicate(p) {
                CodedPredicate::Const(b) => CodedPredicate::Const(!b),
                c => CodedPredicate::Not(Box::new(c)),
            },
        }
    }
}

/// A selection predicate compiled against a [`ColumnStore`] — see
/// [`ColumnStore::compile_predicate`]. Borrows the store's code arrays
/// and the source predicate's atoms; owns only the per-code masks.
#[derive(Debug)]
pub enum CodedPredicate<'a> {
    /// Constant result (`True`, `False`, and folded combinators).
    Const(bool),
    /// An atom over a dictionary-coded column, pre-evaluated per code.
    Mask(MaskAtom<'a>),
    /// An atom over a column without a dictionary: row-wise fallback.
    Row(&'a Atom),
    /// Conjunction of mask atoms only — the candidate-explanation shape —
    /// evaluated without per-child enum dispatch.
    AllMasks(Vec<MaskAtom<'a>>),
    /// General conjunction (never empty or singleton after folding).
    All(Vec<CodedPredicate<'a>>),
    /// Disjunction (never empty or singleton after folding).
    Any(Vec<CodedPredicate<'a>>),
    /// Negation.
    Not(Box<CodedPredicate<'a>>),
}

/// One dictionary-coded atom: the tuple passes iff `mask[codes[row]]`.
#[derive(Debug)]
pub struct MaskAtom<'a> {
    /// The atom's relation (indexes the universal tuple).
    rel: usize,
    /// The column's per-row dictionary codes.
    codes: &'a [u32],
    /// Atom outcome per dictionary code.
    mask: Box<[bool]>,
}

impl MaskAtom<'_> {
    #[inline]
    fn eval(&self, utuple: &[u32]) -> bool {
        self.mask[self.codes[utuple[self.rel] as usize] as usize]
    }
}

impl CodedPredicate<'_> {
    /// Evaluate against a universal tuple (one row index per relation);
    /// returns exactly what [`Predicate::eval`] returns on the source
    /// predicate.
    #[inline]
    pub fn eval(&self, db: &Database, utuple: &[u32]) -> bool {
        match self {
            CodedPredicate::Const(b) => *b,
            CodedPredicate::Mask(m) => m.eval(utuple),
            CodedPredicate::Row(a) => a.eval(db, utuple),
            CodedPredicate::AllMasks(ms) => ms.iter().all(|m| m.eval(utuple)),
            CodedPredicate::All(ps) => ps.iter().all(|p| p.eval(db, utuple)),
            CodedPredicate::Any(ps) => ps.iter().any(|p| p.eval(db, utuple)),
            CodedPredicate::Not(p) => !p.eval(db, utuple),
        }
    }
}

/// Encode one relation column per the rules in the module docs.
fn build_column(relation: &Relation, col: usize) -> ColumnData {
    let mut builder = DictBuilder::new();
    let mut codes = Vec::with_capacity(relation.len());
    let mut dict_ok = true;
    for row in relation.rows() {
        match builder.encode(&row[col]) {
            Some(code) => codes.push(code),
            None => {
                dict_ok = false;
                break;
            }
        }
    }
    if dict_ok {
        return ColumnData::DictU32 {
            codes,
            dict: builder.finish(),
        };
    }
    // Too many distinct values for a dictionary: try the typed dense
    // fallbacks, which require a single strict Value variant end to end.
    if relation
        .rows()
        .all(|row| matches!(row[col], Value::Int(_)))
    {
        let xs = relation
            .rows()
            .map(|row| match row[col] {
                Value::Int(i) => i,
                _ => unreachable!("checked strictly Int above"),
            })
            .collect();
        return ColumnData::I64(xs);
    }
    if relation
        .rows()
        .all(|row| matches!(row[col], Value::Float(_)))
    {
        let xs = relation
            .rows()
            .map(|row| match row[col] {
                Value::Float(f) => f,
                _ => unreachable!("checked strictly Float above"),
            })
            .collect();
        return ColumnData::F64(xs);
    }
    ColumnData::Rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    fn one_relation_db(attr_ty: T, values: Vec<Value>) -> Database {
        let schema = SchemaBuilder::new()
            .relation("R", &[("a", attr_ty)], &["a"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for v in values {
            db.insert("R", vec![v]).expect("insert");
        }
        db
    }

    #[test]
    fn low_cardinality_column_dictionary_encodes() {
        let db = one_relation_db(
            T::Str,
            vec![
                Value::str("x"),
                Value::str("y"),
                Value::str("x"),
                Value::Null,
            ],
        );
        let store = ColumnStore::build(&db);
        let attr = AttrRef { rel: 0, col: 0 };
        match store.column(attr) {
            ColumnData::DictU32 { codes, dict } => {
                assert_eq!(codes, &[0, 1, 0, 2]);
                assert_eq!(dict.len(), 3);
                assert_eq!(dict.null_code(), Some(2));
            }
            other => panic!("expected DictU32, got {other:?}"),
        }
        assert!(store.dict_column(attr).is_some());
    }

    #[test]
    fn decode_is_identity_on_stored_rows() {
        let values = vec![
            Value::Int(5),
            Value::Null,
            Value::str("s"),
            Value::Float(-0.0),
            Value::dummy(),
            Value::Float(f64::NAN),
        ];
        let db = one_relation_db(T::Any, values.clone());
        let store = ColumnStore::build(&db);
        let col = store.column(AttrRef { rel: 0, col: 0 });
        for (row, expected) in values.iter().enumerate() {
            let got = col.value_at(row).expect("dict column decodes");
            assert_eq!(&got, expected, "row {row}");
        }
    }

    #[test]
    fn column_store_mirrors_schema_layout() {
        let schema = SchemaBuilder::new()
            .relation("A", &[("x", T::Int), ("y", T::Str)], &["x"])
            .relation("B", &[("z", T::Int)], &["z"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("A", vec![Value::Int(1), Value::str("v")]).unwrap();
        db.insert("B", vec![Value::Int(9)]).unwrap();
        let store = ColumnStore::build(&db);
        assert!(store.column(AttrRef { rel: 0, col: 1 }).is_dict());
        assert!(store.column(AttrRef { rel: 1, col: 0 }).is_dict());
    }
}
