//! Columnar projections of stored relations.
//!
//! A [`ColumnStore`] is a read-only, per-attribute re-encoding of a
//! [`Database`]'s row storage, built by one sequential
//! scan (relations in schema order, rows in insertion order) so that every
//! derived artifact — dictionary codes in particular — is a pure function
//! of the stored rows, independent of thread count. The row storage stays
//! authoritative; columns are a cache the hot path (join probes, semijoin
//! membership, cube grouping) reads instead of cloning and hashing
//! [`Value`]s per row.
//!
//! Encoding rules, in order:
//!
//! 1. **`DictU32`** — if the column has at most [`DICT_MAX`](crate::dict::DICT_MAX) distinct
//!    values (under the `Value` total order, so NULLs and mixed Int/Float
//!    spellings participate like any other value), every row becomes a
//!    `u32` code into a first-appearance [`Dict`].
//! 2. **`I64`** — otherwise, if every value is strictly `Value::Int`
//!    (no NULLs, no floats), the raw `i64`s are stored densely.
//! 3. **`F64`** — otherwise, if every value is strictly `Value::Float`,
//!    the raw `f64`s are stored densely.
//! 4. **`Rows`** — otherwise the column stays row-oriented and consumers
//!    fall back to the `Value` path.
//!
//! The strictness in rules 2–3 matters: a mixed Int/Float column decoded
//! from an `I64`/`F64` array would lose which spelling each row used, so
//! such columns take rule 4 instead.

use crate::database::Database;
use crate::dict::{Dict, DictBuilder};
use crate::predicate::{Atom, Predicate};
use crate::schema::AttrRef;
use crate::table::Relation;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// One attribute's column, in the densest faithful encoding available.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Dictionary-coded: `codes[row]` indexes into `dict`. The dictionary
    /// is reference-counted so that appends which introduce no new
    /// distinct values can share it instead of re-sorting the rank table.
    DictU32 {
        /// Per-row dictionary codes, in row order.
        codes: Vec<u32>,
        /// The column's value dictionary.
        dict: Arc<Dict>,
    },
    /// Dense `i64`s; only for columns that are strictly `Value::Int`.
    I64(Vec<i64>),
    /// Dense `f64`s; only for columns that are strictly `Value::Float`.
    F64(Vec<f64>),
    /// Row-oriented fallback: read through `Relation::row` instead.
    Rows,
}

impl ColumnData {
    /// Reconstruct the `Value` stored at `row`, or `None` for [`Rows`]
    /// columns (the caller should read the relation directly). For
    /// `DictU32` columns the decoded value is the column's
    /// first-appearance representative, which compares equal to the
    /// stored value under the `Value` total order.
    ///
    /// [`Rows`]: ColumnData::Rows
    pub fn value_at(&self, row: usize) -> Option<Value> {
        match self {
            ColumnData::DictU32 { codes, dict } => Some(dict.value(codes[row]).clone()),
            ColumnData::I64(xs) => Some(Value::Int(xs[row])),
            ColumnData::F64(xs) => Some(Value::Float(xs[row])),
            ColumnData::Rows => None,
        }
    }

    /// Whether this column is dictionary-coded.
    pub fn is_dict(&self) -> bool {
        matches!(self, ColumnData::DictU32 { .. })
    }
}

/// Columnar re-encodings of every attribute of every relation.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    /// `columns[rel][col]`, mirroring the schema layout. Each relation's
    /// column list is reference-counted so [`ColumnStore::extend_for_append`]
    /// can share the columns of untouched relations with the old store
    /// instead of copying their arrays.
    columns: Vec<Arc<Vec<ColumnData>>>,
}

impl ColumnStore {
    /// Build columns for every attribute by one deterministic sequential
    /// scan. Cost is linear in the stored cells; orchestrators that care
    /// about where the time is spent should trigger this once up front
    /// (see `PreparedDb`), since `Database::columns` builds lazily.
    pub fn build(db: &Database) -> ColumnStore {
        let columns = db
            .schema()
            .relations()
            .iter()
            .enumerate()
            .map(|(rel, rs)| {
                let relation = db.relation(rel);
                Arc::new(
                    (0..rs.arity())
                        .map(|col| build_column(relation, col))
                        .collect(),
                )
            })
            .collect();
        ColumnStore { columns }
    }

    /// Extend a store built over a shorter prefix of `db`'s rows to cover
    /// the rows appended since, producing **exactly** the store a
    /// from-scratch [`ColumnStore::build`] over the current rows would.
    /// `old_lens[rel]` is each relation's length when `old` was built;
    /// work is proportional to the appended rows (plus a rank re-sort per
    /// dictionary that gained values), not to the whole database.
    ///
    /// Parity holds per encoding variant because every encoding decision
    /// in `build_column` fails *monotonically* under append:
    ///
    /// - `DictU32`: codes are first-appearance order, so resuming the old
    ///   dictionary and encoding only new rows reproduces the full-scan
    ///   result; crossing [`DICT_MAX`] mid-extension lands exactly where
    ///   the full scan would abandon dictionary encoding, so that case
    ///   defers to a full rescan.
    /// - `I64`/`F64`: the old prefix already overflowed the dictionary
    ///   (that overflow persists in any extension) and is strictly one
    ///   variant, so the rebuilt encoding is decided by the new rows
    ///   alone: same-variant rows extend the dense array, anything else
    ///   forces `Rows` (the *other* dense variant can't match the prefix).
    /// - `Rows`: both the dictionary and the strict-variant checks
    ///   already failed on the prefix and stay failed on any extension.
    ///
    /// [`DICT_MAX`]: crate::dict::DICT_MAX
    pub fn extend_for_append(old: &ColumnStore, db: &Database, old_lens: &[usize]) -> ColumnStore {
        let columns = db
            .schema()
            .relations()
            .iter()
            .enumerate()
            .map(|(rel, rs)| {
                let relation = db.relation(rel);
                let old_len = old_lens[rel];
                debug_assert!(old_len <= relation.len(), "relations never shrink");
                if relation.len() == old_len {
                    // Untouched relation: share its columns wholesale.
                    return Arc::clone(&old.columns[rel]);
                }
                Arc::new(
                    (0..rs.arity())
                        .map(|col| extend_column(&old.columns[rel][col], relation, col, old_len))
                        .collect(),
                )
            })
            .collect();
        ColumnStore { columns }
    }

    /// The column for `attr`.
    #[inline]
    pub fn column(&self, attr: AttrRef) -> &ColumnData {
        &self.columns[attr.rel][attr.col]
    }

    /// The codes and dictionary for `attr`, if it is dictionary-coded.
    #[inline]
    pub fn dict_column(&self, attr: AttrRef) -> Option<(&[u32], &Dict)> {
        match self.column(attr) {
            ColumnData::DictU32 { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Compile a selection predicate against this store for repeated
    /// evaluation over universal tuples.
    ///
    /// Atoms over dictionary-coded columns are pre-evaluated once per
    /// *distinct* value into a per-code boolean mask, so the per-tuple
    /// cost drops from a `Value` comparison (string compares, Int/Float
    /// cross-type arithmetic) to two array loads. Atoms over other
    /// columns fall back to row-wise `Value` evaluation, unchanged.
    ///
    /// The compilation is *exactly* equivalent to [`Predicate::eval`],
    /// not merely close: `Value`'s `PartialEq`/`PartialOrd` are defined
    /// by the total order, every [`crate::predicate::CmpOp`] therefore
    /// depends only on a value's total-order equivalence class, and the
    /// dictionary assigns one code per class. Constant-folding of
    /// `True`/`False` through the combinators cannot change results
    /// because predicates are pure.
    pub fn compile_predicate<'a>(&'a self, p: &'a Predicate) -> CodedPredicate<'a> {
        match p {
            Predicate::True => CodedPredicate::Const(true),
            Predicate::False => CodedPredicate::Const(false),
            Predicate::Atom(a) => match self.dict_column(a.attr) {
                Some((codes, dict)) => {
                    let mask = (0..dict.len() as u32)
                        .map(|code| a.op.eval(dict.value(code), &a.value))
                        .collect();
                    CodedPredicate::Mask(MaskAtom {
                        rel: a.attr.rel,
                        codes,
                        mask,
                    })
                }
                None => CodedPredicate::Row(a),
            },
            Predicate::And(ps) => {
                let parts: Vec<CodedPredicate<'a>> =
                    ps.iter().map(|p| self.compile_predicate(p)).collect();
                if parts
                    .iter()
                    .any(|c| matches!(c, CodedPredicate::Const(false)))
                {
                    return CodedPredicate::Const(false);
                }
                let mut parts: Vec<CodedPredicate<'a>> = parts
                    .into_iter()
                    .filter(|c| !matches!(c, CodedPredicate::Const(true)))
                    .collect();
                match parts.len() {
                    0 => CodedPredicate::Const(true),
                    1 => parts.pop().expect("len checked"),
                    // Conjunctions of mask atoms — candidate explanations
                    // and the experiments' selections — get a flat,
                    // dispatch-free representation.
                    _ if parts.iter().all(|c| matches!(c, CodedPredicate::Mask(_))) => {
                        CodedPredicate::AllMasks(
                            parts
                                .into_iter()
                                .map(|c| match c {
                                    CodedPredicate::Mask(m) => m,
                                    _ => unreachable!("all parts checked to be masks"),
                                })
                                .collect(),
                        )
                    }
                    _ => CodedPredicate::All(parts),
                }
            }
            Predicate::Or(ps) => {
                let parts: Vec<CodedPredicate<'a>> =
                    ps.iter().map(|p| self.compile_predicate(p)).collect();
                if parts
                    .iter()
                    .any(|c| matches!(c, CodedPredicate::Const(true)))
                {
                    return CodedPredicate::Const(true);
                }
                let mut parts: Vec<CodedPredicate<'a>> = parts
                    .into_iter()
                    .filter(|c| !matches!(c, CodedPredicate::Const(false)))
                    .collect();
                match parts.len() {
                    0 => CodedPredicate::Const(false),
                    1 => parts.pop().expect("len checked"),
                    _ => CodedPredicate::Any(parts),
                }
            }
            Predicate::Not(p) => match self.compile_predicate(p) {
                CodedPredicate::Const(b) => CodedPredicate::Const(!b),
                c => CodedPredicate::Not(Box::new(c)),
            },
        }
    }
}

/// A selection predicate compiled against a [`ColumnStore`] — see
/// [`ColumnStore::compile_predicate`]. Borrows the store's code arrays
/// and the source predicate's atoms; owns only the per-code masks.
#[derive(Debug)]
pub enum CodedPredicate<'a> {
    /// Constant result (`True`, `False`, and folded combinators).
    Const(bool),
    /// An atom over a dictionary-coded column, pre-evaluated per code.
    Mask(MaskAtom<'a>),
    /// An atom over a column without a dictionary: row-wise fallback.
    Row(&'a Atom),
    /// Conjunction of mask atoms only — the candidate-explanation shape —
    /// evaluated without per-child enum dispatch.
    AllMasks(Vec<MaskAtom<'a>>),
    /// General conjunction (never empty or singleton after folding).
    All(Vec<CodedPredicate<'a>>),
    /// Disjunction (never empty or singleton after folding).
    Any(Vec<CodedPredicate<'a>>),
    /// Negation.
    Not(Box<CodedPredicate<'a>>),
}

/// One dictionary-coded atom: the tuple passes iff `mask[codes[row]]`.
#[derive(Debug)]
pub struct MaskAtom<'a> {
    /// The atom's relation (indexes the universal tuple).
    rel: usize,
    /// The column's per-row dictionary codes.
    codes: &'a [u32],
    /// Atom outcome per dictionary code.
    mask: Box<[bool]>,
}

impl MaskAtom<'_> {
    #[inline]
    fn eval(&self, utuple: &[u32]) -> bool {
        self.mask[self.codes[utuple[self.rel] as usize] as usize]
    }
}

impl CodedPredicate<'_> {
    /// Evaluate against a universal tuple (one row index per relation);
    /// returns exactly what [`Predicate::eval`] returns on the source
    /// predicate.
    #[inline]
    pub fn eval(&self, db: &Database, utuple: &[u32]) -> bool {
        match self {
            CodedPredicate::Const(b) => *b,
            CodedPredicate::Mask(m) => m.eval(utuple),
            CodedPredicate::Row(a) => a.eval(db, utuple),
            CodedPredicate::AllMasks(ms) => ms.iter().all(|m| m.eval(utuple)),
            CodedPredicate::All(ps) => ps.iter().all(|p| p.eval(db, utuple)),
            CodedPredicate::Any(ps) => ps.iter().any(|p| p.eval(db, utuple)),
            CodedPredicate::Not(p) => !p.eval(db, utuple),
        }
    }
}

/// Encode one relation column per the rules in the module docs.
fn build_column(relation: &Relation, col: usize) -> ColumnData {
    let mut builder = DictBuilder::new();
    let mut codes = Vec::with_capacity(relation.len());
    let mut dict_ok = true;
    for row in relation.rows() {
        match builder.encode(&row[col]) {
            Some(code) => codes.push(code),
            None => {
                dict_ok = false;
                break;
            }
        }
    }
    if dict_ok {
        return ColumnData::DictU32 {
            codes,
            dict: Arc::new(builder.finish()),
        };
    }
    // Too many distinct values for a dictionary: try the typed dense
    // fallbacks, which require a single strict Value variant end to end.
    if relation.rows().all(|row| matches!(row[col], Value::Int(_))) {
        let xs = relation
            .rows()
            .map(|row| match row[col] {
                Value::Int(i) => i,
                _ => unreachable!("checked strictly Int above"),
            })
            .collect();
        return ColumnData::I64(xs);
    }
    if relation
        .rows()
        .all(|row| matches!(row[col], Value::Float(_)))
    {
        let xs = relation
            .rows()
            .map(|row| match row[col] {
                Value::Float(f) => f,
                _ => unreachable!("checked strictly Float above"),
            })
            .collect();
        return ColumnData::F64(xs);
    }
    ColumnData::Rows
}

/// Extend one column over rows appended past `old_len`, per the parity
/// argument on [`ColumnStore::extend_for_append`].
fn extend_column(old: &ColumnData, relation: &Relation, col: usize, old_len: usize) -> ColumnData {
    if relation.len() == old_len {
        return old.clone();
    }
    let new_values = || (old_len..relation.len()).map(|i| &relation.row(i)[col]);
    match old {
        ColumnData::DictU32 { codes, dict } => {
            let mut all_codes = Vec::with_capacity(relation.len());
            all_codes.extend_from_slice(codes);
            // Fast path: every appended value already has a code, so the
            // dictionary (values, ranks, null code) is unchanged and can
            // be shared — no rank re-sort, no map rebuild. This is the
            // common case for live appends, whose rows mostly reference
            // values the column has seen.
            let mut fresh_at = None;
            for (i, v) in new_values().enumerate() {
                match dict.code(v) {
                    Some(code) => all_codes.push(code),
                    None => {
                        fresh_at = Some(i);
                        break;
                    }
                }
            }
            let Some(fresh_at) = fresh_at else {
                return ColumnData::DictU32 {
                    codes: all_codes,
                    dict: Arc::clone(dict),
                };
            };
            // Slow path: at least one fresh distinct value. Collect the
            // fresh values in first-appearance order, assigning them the
            // next codes directly — identical to what resuming a
            // [`DictBuilder`] would assign — then merge them into the old
            // rank table in O(d + k log d) instead of re-sorting all d
            // values.
            all_codes.truncate(old_len + fresh_at);
            let mut fresh: Vec<Value> = Vec::new();
            let mut fresh_index: HashMap<&Value, u32> = HashMap::new();
            for v in new_values().skip(fresh_at) {
                let code = match dict.code(v) {
                    Some(code) => code,
                    None => match fresh_index.get(v) {
                        Some(&code) => code,
                        None => {
                            let code = (dict.len() + fresh.len()) as u32;
                            fresh.push(v.clone());
                            fresh_index.insert(v, code);
                            code
                        }
                    },
                };
                all_codes.push(code);
            }
            match dict.extended(fresh) {
                Some(extended) => ColumnData::DictU32 {
                    codes: all_codes,
                    dict: Arc::new(extended),
                },
                // Crossed DICT_MAX: a full scan abandons the dictionary
                // at this same distinct value, then picks a typed
                // fallback — defer to it wholesale.
                None => build_column(relation, col),
            }
        }
        ColumnData::I64(xs) => {
            if new_values().all(|v| matches!(v, Value::Int(_))) {
                let mut all = Vec::with_capacity(relation.len());
                all.extend_from_slice(xs);
                all.extend(new_values().map(|v| match v {
                    Value::Int(i) => *i,
                    _ => unreachable!("checked strictly Int above"),
                }));
                ColumnData::I64(all)
            } else {
                ColumnData::Rows
            }
        }
        ColumnData::F64(xs) => {
            if new_values().all(|v| matches!(v, Value::Float(_))) {
                let mut all = Vec::with_capacity(relation.len());
                all.extend_from_slice(xs);
                all.extend(new_values().map(|v| match v {
                    Value::Float(f) => *f,
                    _ => unreachable!("checked strictly Float above"),
                }));
                ColumnData::F64(all)
            } else {
                ColumnData::Rows
            }
        }
        ColumnData::Rows => ColumnData::Rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::ValueType as T;

    /// Structural equality for tests: `Dict` holds a `HashMap`, so compare
    /// the deterministic parts (codes, decoded values, ranks, null code).
    fn assert_column_eq(a: &ColumnData, b: &ColumnData, ctx: &str) {
        match (a, b) {
            (
                ColumnData::DictU32 {
                    codes: ca,
                    dict: da,
                },
                ColumnData::DictU32 {
                    codes: cb,
                    dict: db,
                },
            ) => {
                assert_eq!(ca, cb, "{ctx}: codes");
                assert_eq!(da.len(), db.len(), "{ctx}: dict len");
                for code in 0..da.len() as u32 {
                    assert_eq!(da.value(code), db.value(code), "{ctx}: value of {code}");
                    assert_eq!(da.rank(code), db.rank(code), "{ctx}: rank of {code}");
                }
                assert_eq!(da.null_code(), db.null_code(), "{ctx}: null code");
            }
            (ColumnData::I64(xa), ColumnData::I64(xb)) => assert_eq!(xa, xb, "{ctx}: i64"),
            (ColumnData::F64(xa), ColumnData::F64(xb)) => {
                assert_eq!(xa.len(), xb.len(), "{ctx}: f64 len");
                for (i, (x, y)) in xa.iter().zip(xb).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: f64 row {i}");
                }
            }
            (ColumnData::Rows, ColumnData::Rows) => {}
            (a, b) => panic!("{ctx}: variant mismatch: {a:?} vs {b:?}"),
        }
    }

    fn assert_store_matches_rebuild(store: &ColumnStore, db: &Database) {
        let rebuilt = ColumnStore::build(db);
        for (rel, rs) in db.schema().relations().iter().enumerate() {
            for col in 0..rs.arity() {
                assert_column_eq(
                    &store.columns[rel][col],
                    &rebuilt.columns[rel][col],
                    &format!("{}[{col}]", rs.name),
                );
            }
        }
    }

    fn one_relation_db(attr_ty: T, values: Vec<Value>) -> Database {
        let schema = SchemaBuilder::new()
            .relation("R", &[("a", attr_ty)], &["a"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for v in values {
            db.insert("R", vec![v]).expect("insert");
        }
        db
    }

    #[test]
    fn low_cardinality_column_dictionary_encodes() {
        let db = one_relation_db(
            T::Str,
            vec![
                Value::str("x"),
                Value::str("y"),
                Value::str("x"),
                Value::Null,
            ],
        );
        let store = ColumnStore::build(&db);
        let attr = AttrRef { rel: 0, col: 0 };
        match store.column(attr) {
            ColumnData::DictU32 { codes, dict } => {
                assert_eq!(codes, &[0, 1, 0, 2]);
                assert_eq!(dict.len(), 3);
                assert_eq!(dict.null_code(), Some(2));
            }
            other => panic!("expected DictU32, got {other:?}"),
        }
        assert!(store.dict_column(attr).is_some());
    }

    #[test]
    fn decode_is_identity_on_stored_rows() {
        let values = vec![
            Value::Int(5),
            Value::Null,
            Value::str("s"),
            Value::Float(-0.0),
            Value::dummy(),
            Value::Float(f64::NAN),
        ];
        let db = one_relation_db(T::Any, values.clone());
        let store = ColumnStore::build(&db);
        let col = store.column(AttrRef { rel: 0, col: 0 });
        for (row, expected) in values.iter().enumerate() {
            let got = col.value_at(row).expect("dict column decodes");
            assert_eq!(&got, expected, "row {row}");
        }
    }

    #[test]
    fn extend_for_append_matches_rebuild_on_dict_columns() {
        let schema = SchemaBuilder::new()
            .relation("A", &[("x", T::Int), ("y", T::Any)], &["x"])
            .relation("B", &[("z", T::Str)], &["z"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("A", vec![Value::Int(1), Value::str("v")])
            .unwrap();
        db.insert("A", vec![Value::Int(2), Value::Null]).unwrap();
        db.insert("B", vec![Value::str("q")]).unwrap();
        let old = ColumnStore::build(&db);
        let old_lens = vec![2, 1];

        // New rows mix repeats, fresh values, a fresh NULL-free column
        // gaining nothing, Int/Float unification, and an untouched B.
        db.insert("A", vec![Value::Int(3), Value::str("v")])
            .unwrap();
        db.insert("A", vec![Value::Int(4), Value::Float(2.0)])
            .unwrap();
        db.insert("A", vec![Value::Int(2), Value::dummy()]).unwrap();

        let extended = ColumnStore::extend_for_append(&old, &db, &old_lens);
        assert_store_matches_rebuild(&extended, &db);
        // Old code prefix survives verbatim.
        let attr = AttrRef { rel: 0, col: 1 };
        match (old.column(attr), extended.column(attr)) {
            (ColumnData::DictU32 { codes: oc, .. }, ColumnData::DictU32 { codes: ec, .. }) => {
                assert_eq!(&ec[..oc.len()], &oc[..])
            }
            other => panic!("expected dict columns, got {other:?}"),
        }
    }

    #[test]
    fn extend_with_no_new_rows_clones_store() {
        let db = one_relation_db(T::Str, vec![Value::str("a"), Value::str("b")]);
        let old = ColumnStore::build(&db);
        let extended = ColumnStore::extend_for_append(&old, &db, &[2]);
        assert_store_matches_rebuild(&extended, &db);
    }

    // The dense and row fallbacks only arise past DICT_MAX distinct
    // values — too many rows for a unit test to build honestly — so
    // exercise `extend_column` directly with hand-made prefixes that
    // satisfy each variant's invariant.
    #[test]
    fn extend_dense_i64_stays_dense_on_int_rows() {
        let db = one_relation_db(T::Int, vec![Value::Int(10), Value::Int(20), Value::Int(30)]);
        let old = ColumnData::I64(vec![10, 20]);
        match extend_column(&old, db.relation(0), 0, 2) {
            ColumnData::I64(xs) => assert_eq!(xs, vec![10, 20, 30]),
            other => panic!("expected I64, got {other:?}"),
        }
    }

    #[test]
    fn extend_dense_falls_to_rows_on_variant_break() {
        let db = one_relation_db(T::Any, vec![Value::Int(10), Value::Float(0.5)]);
        let old = ColumnData::I64(vec![10]);
        assert!(matches!(
            extend_column(&old, db.relation(0), 0, 1),
            ColumnData::Rows
        ));
        let db = one_relation_db(T::Any, vec![Value::Float(1.5), Value::Null]);
        let old = ColumnData::F64(vec![1.5]);
        assert!(matches!(
            extend_column(&old, db.relation(0), 0, 1),
            ColumnData::Rows
        ));
        let db = one_relation_db(T::Any, vec![Value::Float(1.5), Value::Float(2.5)]);
        let old = ColumnData::F64(vec![1.5]);
        match extend_column(&old, db.relation(0), 0, 1) {
            ColumnData::F64(xs) => assert_eq!(xs, vec![1.5, 2.5]),
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[test]
    fn extend_rows_stays_rows() {
        let db = one_relation_db(T::Any, vec![Value::Int(1), Value::str("s")]);
        assert!(matches!(
            extend_column(&ColumnData::Rows, db.relation(0), 0, 1),
            ColumnData::Rows
        ));
    }

    #[test]
    fn column_store_mirrors_schema_layout() {
        let schema = SchemaBuilder::new()
            .relation("A", &[("x", T::Int), ("y", T::Str)], &["x"])
            .relation("B", &[("z", T::Int)], &["z"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("A", vec![Value::Int(1), Value::str("v")])
            .unwrap();
        db.insert("B", vec![Value::Int(9)]).unwrap();
        let store = ColumnStore::build(&db);
        assert!(store.column(AttrRef { rel: 0, col: 1 }).is_dict());
        assert!(store.column(AttrRef { rel: 1, col: 0 }).is_dict());
    }
}
