//! Dynamically typed attribute values.
//!
//! All values that can appear in a relation cell. `Value` implements a
//! *total* equality, ordering and hash — floats compare by their IEEE bit
//! pattern when incomparable and `Null` sorts below everything — so values
//! can key hash tables (group-by, cube cells, hash joins) and sort
//! deterministically (top-K output, tie-breaking).

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single attribute value.
///
/// Strings are reference-counted so cloning a value (which happens when rows
/// are projected into cube cells) never copies string data.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Also used by the data-cube operator for "don't care"
    /// coordinates before they are mapped to [`Value::dummy`].
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
}

impl Value {
    /// Short type name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
        }
    }

    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct an integer value.
    pub const fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// The reserved dummy value used by the cube full-outer-join
    /// optimization of Section 4.2: every `null` ("don't care") cube
    /// coordinate is replaced by this value so the join can be a plain
    /// equi-join. The paper chooses a value greater than all valid values;
    /// here a dedicated sentinel string fills the same role because `Value`
    /// has a total order and no user data may use it.
    pub fn dummy() -> Value {
        Value::Str(Arc::from("\u{10FFFF}__exq_dummy__"))
    }

    /// Whether this is the reserved dummy sentinel.
    pub fn is_dummy(&self) -> bool {
        matches!(self, Value::Str(s) if &**s == "\u{10FFFF}__exq_dummy__")
    }

    /// Whether this is SQL NULL.
    pub const fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Integers widen to `f64`,
    /// which is **lossy** above 2⁵³ — do not fold `Int`s through this in
    /// accumulation loops (`AggState` keeps an exact `i128` lane instead);
    /// it is fine for one-shot conversions at an f64 output boundary.
    // exq-lint: allow(L006): structurally parallel to analyze's Lit::as_num, but on an unrelated enum
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank used to order values of different types (Null < Bool < numeric
    /// < Str). Int and Float share a rank and compare numerically.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

/// Exact comparison of an `i64` against an `f64` under the total order.
///
/// Casting the integer to `f64` first (the obvious implementation) rounds
/// integers above 2^53 to the nearest representable float, which makes
/// equality non-transitive: `i64::MAX as f64 == 2^63`, so `Int(i64::MAX)`
/// would compare equal to `Float(9.2233720368547758e18)` *and* to every
/// other integer that rounds there. Instead the float is truncated into
/// the integer domain, which is always exact.
fn cmp_int_float(a: i64, b: f64) -> Ordering {
    if b.is_nan() {
        // `total_cmp` semantics: finite values sort above -NaN, below +NaN.
        return (a as f64).total_cmp(&b);
    }
    // Every i64 satisfies -2^63 <= a < 2^63; floats outside that window
    // compare without looking at `a`. (2^63 is exactly representable.)
    const TWO_63: f64 = 9_223_372_036_854_775_808.0;
    if b >= TWO_63 {
        return Ordering::Less;
    }
    if b < -TWO_63 {
        return Ordering::Greater;
    }
    let t = b.trunc(); // in [-2^63, 2^63), so the cast below is exact
    match a.cmp(&(t as i64)) {
        Ordering::Equal if b > t => Ordering::Less,
        Ordering::Equal if b < t => Ordering::Greater,
        // Numerically equal. Fall back to the float total order so
        // `Int(0)` vs `Float(-0.0)` agrees with `Float(0.0)` vs
        // `Float(-0.0)` (keeping the order transitive around ±0).
        Ordering::Equal => (a as f64).total_cmp(&b),
        other => other,
    }
}

/// The integer a float is *exactly* equal to under [`cmp_int_float`], if
/// any. This is the hash-canonicalization hook: `Float(f)` must hash like
/// `Int(i)` precisely when they compare equal, which requires `f` to be
/// integral, in `i64` range, and bit-identical to `i as f64` (ruling out
/// `-0.0`, whose total order sits strictly below `Int(0)`).
fn float_as_exact_int(f: f64) -> Option<i64> {
    const TWO_63: f64 = 9_223_372_036_854_775_808.0;
    if !(-TWO_63..TWO_63).contains(&f) {
        return None; // NaN, infinities, and out-of-range magnitudes
    }
    let i = f as i64;
    ((i as f64).to_bits() == f.to_bits()).then_some(i)
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => cmp_int_float(*a, *b),
            (Float(a), Int(b)) => cmp_int_float(*b, *a).reverse(),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int and Float must hash identically when they compare equal
            // (`Int(2) == Float(2.0)`). Equality is exact, so a float is
            // equal to an int only when it *is* that int; such floats hash
            // through the integer domain and every other float hashes its
            // own bit pattern. Ints never go through f64 — the old
            // `(i as f64).to_bits()` scheme collapsed all integers above
            // 2^53 that round to the same float onto one bucket.
            Value::Int(i) => {
                state.write_u8(2);
                i.hash(state);
            }
            Value::Float(f) => match float_as_exact_int(*f) {
                Some(i) => {
                    state.write_u8(2);
                    i.hash(state);
                }
                None => {
                    state.write_u8(4);
                    f.to_bits().hash(state);
                }
            },
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl<'a> From<Cow<'a, str>> for Value {
    fn from(v: Cow<'a, str>) -> Value {
        Value::str(v.as_ref())
    }
}

/// Declared type of an attribute. `Any` admits every value; typed columns
/// reject mismatched inserts at load time so queries never see mixed types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Any value permitted.
    Any,
    /// Booleans.
    Bool,
    /// 64-bit integers.
    Int,
    /// 64-bit floats (integers accepted and widened on comparison).
    Float,
    /// Strings.
    Str,
}

impl ValueType {
    /// Whether `v` conforms to this declared type. `Null` conforms to every
    /// type (SQL semantics).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ValueType::Any, _)
                | (ValueType::Bool, Value::Bool(_))
                | (ValueType::Int, Value::Int(_))
                | (ValueType::Float, Value::Float(_) | Value::Int(_))
                | (ValueType::Str, Value::Str(_))
        )
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Any => "any",
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_below_everything() {
        for v in [
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Float(f64::NEG_INFINITY),
            Value::str(""),
        ] {
            assert!(Value::Null < v, "null should be < {v:?}");
        }
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn equal_int_float_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn nan_is_self_equal_under_total_order() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert!(Value::str("abc") < Value::str("abd"));
        assert!(Value::str("ab") < Value::str("abc"));
    }

    #[test]
    fn dummy_is_recognized_and_not_null() {
        let d = Value::dummy();
        assert!(d.is_dummy());
        assert!(!d.is_null());
        assert!(!Value::str("dummy").is_dummy());
        assert_eq!(d, Value::dummy());
    }

    #[test]
    fn type_admission() {
        assert!(ValueType::Int.admits(&Value::Int(1)));
        assert!(!ValueType::Int.admits(&Value::str("x")));
        assert!(
            ValueType::Float.admits(&Value::Int(1)),
            "ints widen to float"
        );
        assert!(
            ValueType::Str.admits(&Value::Null),
            "null admitted everywhere"
        );
        assert!(ValueType::Any.admits(&Value::Bool(true)));
    }

    #[test]
    fn display_round_trips_reasonably() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("ibm.com").to_string(), "ibm.com");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn large_ints_do_not_collapse_into_floats() {
        // i64::MAX rounds to 2^63 as a float; exact comparison must still
        // tell them apart (the lossy cast made them "equal").
        let two_63 = Value::Float(9_223_372_036_854_775_808.0);
        assert!(Value::Int(i64::MAX) < two_63);
        assert!(two_63 > Value::Int(i64::MAX));
        assert_eq!(
            Value::Int(i64::MIN),
            Value::Float(-9_223_372_036_854_775_808.0)
        );

        // Transitivity around the 2^53 precision cliff: 2^53 and 2^53 + 1
        // round to the same float but are different values.
        let a = Value::Int(1 << 53);
        let b = Value::Int((1 << 53) + 1);
        let f = Value::Float(9_007_199_254_740_992.0); // 2^53 exactly
        assert_eq!(a, f);
        assert!(b > f, "2^53 + 1 exceeds the float it rounds to");
        assert!(a < b);
    }

    #[test]
    fn large_ints_hash_by_their_own_bits() {
        // Pre-fix, both hashed (i as f64).to_bits() and collided exactly.
        let a = hash_of(&Value::Int(1 << 53));
        let b = hash_of(&Value::Int((1 << 53) + 1));
        assert_ne!(a, b, "distinct ints above 2^53 must not share a bucket");
        assert_ne!(
            hash_of(&Value::Int(i64::MAX)),
            hash_of(&Value::Int(i64::MAX - 1))
        );
    }

    #[test]
    fn int_equal_floats_hash_like_the_int() {
        for i in [0i64, 2, -7, 1 << 52, i64::MIN] {
            assert_eq!(Value::Int(i), Value::Float(i as f64));
            assert_eq!(hash_of(&Value::Int(i)), hash_of(&Value::Float(i as f64)));
        }
    }

    #[test]
    fn negative_zero_stays_below_int_zero() {
        // -0.0 < 0.0 under total_cmp; Int(0) ties with Float(0.0), so it
        // must also sit above Float(-0.0) — and hash independently.
        assert!(Value::Float(-0.0) < Value::Int(0));
        assert!(Value::Int(0) > Value::Float(-0.0));
        assert_eq!(Value::Int(0), Value::Float(0.0));
        assert_ne!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Int(0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn fractional_and_non_finite_floats_order_against_ints() {
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(-1.5) < Value::Int(-1));
        assert!(Value::Int(i64::MAX) < Value::Float(f64::INFINITY));
        assert!(Value::Float(f64::NEG_INFINITY) < Value::Int(i64::MIN));
        assert!(Value::Int(0) < Value::Float(f64::NAN), "+NaN sorts last");
        assert!(Value::Float(-f64::NAN) < Value::Int(i64::MIN));
    }

    #[test]
    fn cross_type_order_is_total_and_consistent() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Float(0.5),
            Value::Int(3),
            Value::str("a"),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                let ord = a.cmp(b);
                assert_eq!(ord.reverse(), b.cmp(a));
                if i == j {
                    assert_eq!(ord, Ordering::Equal);
                }
            }
        }
    }
}
