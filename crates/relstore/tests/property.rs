//! Substrate-level property tests: bitset algebra against a reference
//! set implementation, the total order on values, cube cells against a
//! brute-force reference, aggregate-state merging, and CSV round-trips.

use exq_relstore::aggregate::AggFunc;
use exq_relstore::cube::{self, CubeStrategy};
use exq_relstore::{
    csv, Database, Predicate, SchemaBuilder, TupleSet, Universal, Value, ValueType as T,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// TupleSet vs BTreeSet reference
// ---------------------------------------------------------------------

fn to_ref(set: &TupleSet) -> BTreeSet<usize> {
    set.iter().collect()
}

proptest! {
    #[test]
    fn tupleset_algebra_matches_reference(
        cap in 1usize..300,
        a_items in proptest::collection::vec(any::<u16>(), 0..40),
        b_items in proptest::collection::vec(any::<u16>(), 0..40),
    ) {
        let mut a = TupleSet::empty(cap);
        let mut b = TupleSet::empty(cap);
        let ra: BTreeSet<usize> = a_items.iter().map(|&x| x as usize % cap).collect();
        let rb: BTreeSet<usize> = b_items.iter().map(|&x| x as usize % cap).collect();
        for &x in &ra { a.insert(x); }
        for &x in &rb { b.insert(x); }

        prop_assert_eq!(to_ref(&a), ra.clone());
        prop_assert_eq!(a.count(), ra.len());
        prop_assert_eq!(a.is_empty(), ra.is_empty());

        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(to_ref(&u), ra.union(&rb).copied().collect::<BTreeSet<_>>());

        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(to_ref(&i), ra.intersection(&rb).copied().collect::<BTreeSet<_>>());

        let mut d = a.clone();
        d.difference_with(&b);
        prop_assert_eq!(to_ref(&d), ra.difference(&rb).copied().collect::<BTreeSet<_>>());

        let c = a.complement();
        prop_assert_eq!(c.count(), cap - ra.len());
        prop_assert_eq!(a.is_subset(&u), true);
        prop_assert_eq!(b.is_subset(&u), true);
        prop_assert_eq!(u.is_subset(&a), rb.is_subset(&ra));

        // Iteration is ascending.
        let order: Vec<usize> = a.iter().collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(order, sorted);
    }
}

// ---------------------------------------------------------------------
// Value total order
// ---------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        any::<f32>().prop_map(|f| Value::Float(f as f64)),
        "[a-z]{0,6}".prop_map(Value::str),
    ]
}

proptest! {
    #[test]
    fn value_order_is_total_and_consistent(
        values in proptest::collection::vec(arb_value(), 2..12),
    ) {
        use std::cmp::Ordering;
        // Antisymmetry and hash-eq consistency.
        for a in &values {
            for b in &values {
                prop_assert_eq!(a.cmp(b).reverse(), b.cmp(a));
                if a.cmp(b) == Ordering::Equal {
                    use std::hash::{Hash, Hasher};
                    let mut ha = std::collections::hash_map::DefaultHasher::new();
                    let mut hb = std::collections::hash_map::DefaultHasher::new();
                    a.hash(&mut ha);
                    b.hash(&mut hb);
                    prop_assert_eq!(ha.finish(), hb.finish());
                }
            }
        }
        // Transitivity via sort: sorting twice is stable/idempotent.
        let mut s1 = values.clone();
        s1.sort();
        let mut s2 = s1.clone();
        s2.sort();
        prop_assert_eq!(s1, s2);
    }
}

/// Values biased toward the seams of the Int/Float total order: full-range
/// integers (beyond the 2^53 float-precision cliff), floats that are exact
/// images of integers, signed zeros, and non-finite floats.
fn arb_value_edge() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<i64>().prop_map(|i| Value::Float(i as f64)),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,4}".prop_map(Value::str),
    ]
}

/// The fixed corner cases every run must cover, whatever the RNG does.
fn edge_values() -> Vec<Value> {
    vec![
        Value::Null,
        Value::Bool(false),
        Value::Int(0),
        Value::Float(0.0),
        Value::Float(-0.0),
        Value::Int(i64::MAX),
        Value::Int(i64::MAX - 1),
        Value::Int(i64::MIN),
        Value::Int(1 << 53),
        Value::Int((1 << 53) + 1),
        Value::Float(i64::MAX as f64), // 2^63: equal to no integer
        Value::Float(i64::MIN as f64), // -2^63: equal to i64::MIN
        Value::Float((1u64 << 53) as f64),
        Value::Float(f64::NAN),
        Value::Float(f64::INFINITY),
        Value::Float(f64::NEG_INFINITY),
        Value::str(""),
    ]
}

proptest! {
    /// `a == b ⇒ hash(a) == hash(b)` across all variant pairs, with the
    /// ±0.0 / i64::MAX / 2^53-cliff corners pinned into every case. Also
    /// checks that the order stays antisymmetric and transitive there —
    /// the pre-fix lossy Int→f64 comparison broke transitivity above 2^53.
    #[test]
    fn hash_agrees_with_equality_on_all_variant_pairs(
        random in proptest::collection::vec(arb_value_edge(), 0..10),
    ) {
        let mut values = edge_values();
        values.extend(random);
        for a in &values {
            for b in &values {
                prop_assert_eq!(a.cmp(b).reverse(), b.cmp(a));
                if a == b {
                    prop_assert_eq!(
                        hash_of(a), hash_of(b),
                        "{:?} == {:?} but hashes differ", a, b
                    );
                }
                // Transitivity: everything equal to `a` must compare the
                // same way against every third value.
                if a == b {
                    for c in &values {
                        prop_assert_eq!(a.cmp(c), b.cmp(c), "{:?} vs {:?} vs {:?}", a, b, c);
                    }
                }
            }
        }
        let mut s1 = values.clone();
        s1.sort();
        let mut s2 = s1.clone();
        s2.sort();
        prop_assert_eq!(s1, s2);
    }
}

fn hash_of(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------
// Aggregate exactness on the 2^53 precision cliff
// ---------------------------------------------------------------------

/// Integers biased toward the f64 precision cliff: full-range `i64`s mixed
/// with values around ±2^53, where a lossy `as f64` fold collapses ±1s.
fn arb_cliff_int() -> impl Strategy<Value = i64> {
    prop_oneof![
        any::<i64>(),
        (1i64 << 53) - 2..(1i64 << 53) + 100,
        -(1i64 << 53) - 100..-(1i64 << 53) + 2,
        -3i64..3,
    ]
}

proptest! {
    /// SUM over an integer column equals the exact `i128` sum converted to
    /// `f64` once — the same guarantee `Value::hash` got for the Int/Float
    /// collapse in the ordering fix, now for accumulation. The old
    /// accumulator folded every row through `Value::as_f64`, so e.g.
    /// `[2^53, 1, -2^53]` summed to 0 instead of 1.
    #[test]
    fn int_sum_and_avg_are_exact(xs in proptest::collection::vec(arb_cliff_int(), 1..40)) {
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("x", T::Int)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (i, &x) in xs.iter().enumerate() {
            db.insert("R", vec![(i as i64).into(), x.into()]).unwrap();
        }
        let u = Universal::compute(&db, &db.full_view());
        let x = db.schema().attr("R", "x").unwrap();
        let exact: i128 = xs.iter().map(|&v| i128::from(v)).sum();
        let sum = exq_relstore::aggregate::evaluate(&db, &u, &Predicate::True, &AggFunc::Sum(x)).unwrap();
        prop_assert_eq!(sum.to_bits(), (exact as f64).to_bits());
        let avg = exq_relstore::aggregate::evaluate(&db, &u, &Predicate::True, &AggFunc::Avg(x)).unwrap();
        prop_assert_eq!(avg.to_bits(), (exact as f64 / xs.len() as f64).to_bits());

        // The cube's grand-total cell carries the same exact sum (its
        // accumulator merges per-block states; all lanes are integers, so
        // merging stays exact too).
        let g = db.schema().attr("R", "id").unwrap();
        let c = cube::compute(&db, &u, &Predicate::True, &[g], &AggFunc::Sum(x), CubeStrategy::Auto).unwrap();
        let total = c.cells.get(&vec![Value::Null].into_boxed_slice()).copied().unwrap();
        prop_assert_eq!(total.to_bits(), (exact as f64).to_bits());
    }
}

// ---------------------------------------------------------------------
// Dictionary round-trip (columnar store)
// ---------------------------------------------------------------------

/// Column values for the dictionary round-trip: every variant, the
/// reserved dummy, NaN (the quiet payload), signed zeros, and the
/// Int/Float spelling seam.
fn arb_dict_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        Just(Value::dummy()),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(0.0)),
        Just(Value::Float(-0.0)),
        Just(Value::Int(0)),
        Just(Value::Int(7)),
        Just(Value::Float(7.0)),
        any::<bool>().prop_map(Value::Bool),
        (-20i64..20).prop_map(Value::Int),
        (-20i64..20).prop_map(|i| Value::Float(i as f64)),
        any::<f64>().prop_map(Value::Float),
        "[a-z]{0,4}".prop_map(Value::str),
    ]
}

proptest! {
    /// Dictionary encode→decode is the identity up to `Value` equality
    /// (`Int(7)` and `Float(7.0)` share a code, so the decoded spelling is
    /// the first-appearance representative — exactly the key the old
    /// row-oriented `HashMap` accumulation would have retained), the
    /// first occurrence of every equivalence class round-trips
    /// bit-exactly, and code assignment is first-appearance order, stable
    /// across rebuilds.
    #[test]
    fn dict_column_round_trips(values in proptest::collection::vec(arb_dict_value(), 1..60)) {
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("x", T::Any)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (i, v) in values.iter().enumerate() {
            db.insert("R", vec![(i as i64).into(), v.clone()]).unwrap();
        }
        let x = db.schema().attr("R", "x").unwrap();

        let store = std::sync::Arc::clone(db.columns());
        let (codes, dict) = store.dict_column(x).expect("low-cardinality column dict-encodes");
        prop_assert_eq!(codes.len(), values.len());

        let mut first_code_of: std::collections::HashMap<&Value, u32> = std::collections::HashMap::new();
        let mut next_fresh = 0u32;
        for (i, v) in values.iter().enumerate() {
            let code = codes[i];
            // Decode is the identity up to Value equality (NaN == NaN with
            // the same payload under the total order).
            prop_assert_eq!(
                dict.value(code).cmp(v),
                std::cmp::Ordering::Equal,
                "row {} decodes {:?}, stored {:?}", i, dict.value(code), v
            );
            match first_code_of.get(v) {
                Some(&seen) => prop_assert_eq!(code, seen, "repeat of {:?} re-coded", v),
                None => {
                    // First appearance: fresh codes are dense and ascending
                    // in table order, and decode bit-exactly.
                    prop_assert_eq!(code, next_fresh, "fresh code out of order for {:?}", v);
                    next_fresh += 1;
                    first_code_of.insert(v, code);
                    if let (Value::Float(a), Value::Float(b)) = (dict.value(code), v) {
                        prop_assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
            }
            // Null maps to the dictionary's null code and nothing else does.
            prop_assert_eq!(dict.is_null_code(code), v.is_null());
        }

        // Rebuilding the store from scratch reproduces the codes bit for
        // bit — assignment depends only on stored row order.
        let rebuilt = exq_relstore::ColumnStore::build(&db);
        let (codes2, _) = rebuilt.dict_column(x).unwrap();
        prop_assert_eq!(codes, codes2);

        // The rank table recovers the exact Value total order.
        let mut by_rank: Vec<u32> = (0..dict.len() as u32).collect();
        by_rank.sort_unstable_by_key(|&c| dict.rank(c));
        for pair in by_rank.windows(2) {
            prop_assert!(dict.value(pair[0]) < dict.value(pair[1]));
        }
    }
}

// ---------------------------------------------------------------------
// Compiled predicates vs the Predicate interpreter
// ---------------------------------------------------------------------

fn arb_cmp_op() -> impl Strategy<Value = exq_relstore::CmpOp> {
    use exq_relstore::CmpOp;
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

proptest! {
    /// `ColumnStore::compile_predicate` is observationally identical to
    /// `Predicate::eval` on every tuple — masks over dictionary codes,
    /// boolean combinators, and the `True`/`False` constant folding all
    /// included. This is the exactness the coded cube and `evaluate`
    /// hot paths rely on.
    #[test]
    fn compiled_predicate_matches_interpreter(
        values in proptest::collection::vec(arb_dict_value(), 1..40),
        atoms in proptest::collection::vec((arb_cmp_op(), arb_dict_value()), 1..6),
        shape in 0u8..4,
    ) {
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("x", T::Any)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        for (i, v) in values.iter().enumerate() {
            db.insert("R", vec![(i as i64).into(), v.clone()]).unwrap();
        }
        let x = db.schema().attr("R", "x").unwrap();

        let parts: Vec<Predicate> = atoms
            .iter()
            .map(|(op, rhs)| Predicate::cmp(x, *op, rhs.clone()))
            .collect();
        let mid = parts.len() / 2;
        let p = match shape {
            0 => Predicate::and(parts),
            1 => Predicate::or(parts),
            2 => Predicate::not(Predicate::and(parts)),
            _ => Predicate::and([
                Predicate::or(parts[..mid].to_vec()),
                Predicate::not(Predicate::or(parts[mid..].to_vec())),
            ]),
        };
        // Constant operands exercise the compile-time folding.
        let folded = Predicate::and([
            Predicate::True,
            p.clone(),
            Predicate::or([Predicate::False, p.clone()]),
        ]);

        let u = Universal::compute(&db, &db.full_view());
        let store = std::sync::Arc::clone(db.columns());
        for q in [&p, &folded] {
            let coded = store.compile_predicate(q);
            for t in u.iter() {
                prop_assert_eq!(coded.eval(&db, t), q.eval(&db, t), "{:?} on {:?}", q, t);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cube vs brute-force reference
// ---------------------------------------------------------------------

fn small_db(rows: &[(u8, u8, i32)]) -> Database {
    let schema = SchemaBuilder::new()
        .relation(
            "R",
            &[("id", T::Int), ("g", T::Int), ("h", T::Int), ("x", T::Int)],
            &["id"],
        )
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    for (i, (g, h, x)) in rows.iter().enumerate() {
        db.insert(
            "R",
            vec![
                (i as i64).into(),
                ((g % 3) as i64).into(),
                ((h % 3) as i64).into(),
                (*x as i64).into(),
            ],
        )
        .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every cube cell equals the aggregate computed by filtering the data
    /// with the cell's coordinate as a predicate (the defining property of
    /// WITH CUBE).
    #[test]
    fn cube_cells_match_bruteforce(rows in proptest::collection::vec((any::<u8>(), any::<u8>(), -100i32..100), 1..30)) {
        let db = small_db(&rows);
        let u = Universal::compute(&db, &db.full_view());
        let schema = db.schema();
        let g = schema.attr("R", "g").unwrap();
        let h = schema.attr("R", "h").unwrap();
        let x = schema.attr("R", "x").unwrap();
        let dims = vec![g, h];

        for agg in [AggFunc::CountStar, AggFunc::Sum(x), AggFunc::Min(x), AggFunc::Max(x)] {
            let cube = cube::compute(&db, &u, &Predicate::True, &dims, &agg, CubeStrategy::Auto).unwrap();
            for (coord, &cell_value) in &cube.cells {
                // Rebuild the coordinate as a selection predicate.
                let mut parts = Vec::new();
                if !coord[0].is_null() {
                    parts.push(Predicate::eq(g, coord[0].clone()));
                }
                if !coord[1].is_null() {
                    parts.push(Predicate::eq(h, coord[1].clone()));
                }
                let sel = Predicate::and(parts);
                let direct = exq_relstore::aggregate::evaluate(&db, &u, &sel, &agg).unwrap();
                prop_assert_eq!(cell_value, direct, "cell {:?} for {:?}", coord, agg);
            }
            // Cell count sanity: at most (|g|+1)(|h|+1) distinct coords.
            prop_assert!(cube.len() <= 16);
        }
    }

    /// group_by returns exactly the fully-specified cube cells.
    #[test]
    fn group_by_matches_cube_finest_level(rows in proptest::collection::vec((any::<u8>(), any::<u8>(), -100i32..100), 1..30)) {
        let db = small_db(&rows);
        let u = Universal::compute(&db, &db.full_view());
        let schema = db.schema();
        let dims = vec![schema.attr("R", "g").unwrap(), schema.attr("R", "h").unwrap()];
        let grouped = cube::group_by(&db, &u, &Predicate::True, &dims, &AggFunc::CountStar).unwrap();
        let cube = cube::compute(&db, &u, &Predicate::True, &dims, &AggFunc::CountStar, CubeStrategy::LatticeRollup).unwrap();
        let finest: std::collections::HashMap<_, _> = cube
            .cells
            .iter()
            .filter(|(c, _)| c.iter().all(|v| !v.is_null()))
            .map(|(c, v)| (c.clone(), *v))
            .collect();
        prop_assert_eq!(grouped.cells, finest);
    }
}

// ---------------------------------------------------------------------
// Predicate text round-trip
// ---------------------------------------------------------------------

fn arb_predicate() -> impl Strategy<Value = exq_relstore::Predicate> {
    use exq_relstore::{AttrRef, CmpOp, Predicate};
    let op = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    let literal = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100.0f64..100.0).prop_map(Value::Float),
        "[ -~&&[^\\\\]]{0,8}".prop_map(Value::str),
    ];
    // Columns of small_db's relation R: id, g, h, x.
    let atom = (0usize..4, op, literal)
        .prop_map(|(col, op, value)| Predicate::cmp(AttrRef { rel: 0, col }, op, value));
    let leaf = prop_oneof![Just(Predicate::True), Just(Predicate::False), atom,];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Predicate::And),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Predicate::Or),
            inner.prop_map(exq_relstore::Predicate::not),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse_predicate ∘ predicate_to_text` preserves evaluation on every
    /// tuple, for arbitrary boolean predicates.
    #[test]
    fn predicate_text_round_trip(
        rows in proptest::collection::vec((any::<u8>(), any::<u8>(), -100i32..100), 1..15),
        pred in arb_predicate(),
    ) {
        let db = small_db(&rows);
        let u = Universal::compute(&db, &db.full_view());
        let text = exq_relstore::parse::predicate_to_text(db.schema(), &pred);
        let back = exq_relstore::parse::parse_predicate(db.schema(), &text)
            .map_err(|e| TestCaseError::fail(format!("`{text}` failed to re-parse: {e}")))?;
        for t in u.iter() {
            prop_assert_eq!(pred.eval(&db, t), back.eval(&db, t), "via `{}`", text);
        }
    }
}

// ---------------------------------------------------------------------
// CSV round-trip
// ---------------------------------------------------------------------

/// String fields exercising every quoting seam: commas, doubled quotes,
/// and CR / LF / CRLF sequences embedded mid-field, at the start, and at
/// the end of the field.
fn arb_csv_field() -> impl Strategy<Value = String> {
    prop_oneof![
        // Printable text with quoting trigger characters mixed in.
        "[ -~]{0,12}",
        // Explicit line-break shapes around plain text.
        ("[a-z\",]{0,4}", "[a-z\",]{0,4}").prop_map(|(a, b)| format!("{a}\r{b}")),
        ("[a-z\",]{0,4}", "[a-z\",]{0,4}").prop_map(|(a, b)| format!("{a}\n{b}")),
        ("[a-z\",]{0,4}", "[a-z\",]{0,4}").prop_map(|(a, b)| format!("{a}\r\n{b}")),
        Just("\"\"".to_string()),
        Just("\r\n".to_string()),
        Just("\n\"x\",\r".to_string()),
    ]
}

proptest! {
    #[test]
    fn csv_round_trips(
        rows in proptest::collection::vec(
            (arb_csv_field(), proptest::option::of(any::<i32>()), any::<bool>()),
            0..20,
        ),
    ) {
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("s", T::Str), ("n", T::Int), ("b", T::Bool)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema.clone());
        for (i, (s, n, b)) in rows.iter().enumerate() {
            db.insert(
                "R",
                vec![
                    (i as i64).into(),
                    Value::str(s),
                    n.map_or(Value::Null, |v| Value::Int(v as i64)),
                    (*b).into(),
                ],
            )
            .unwrap();
        }
        let mut buffer = Vec::new();
        csv::dump_relation(&db, "R", &mut buffer).unwrap();
        let mut db2 = Database::new(schema);
        let loaded = csv::load_relation(&mut db2, "R", buffer.as_slice()).unwrap();
        prop_assert_eq!(loaded, rows.len());
        for i in 0..rows.len() {
            prop_assert_eq!(db.relation(0).row(i), db2.relation(0).row(i));
        }
    }
}

// ---------------------------------------------------------------------
// Counter invariants (exq-obs)
// ---------------------------------------------------------------------

use exq_relstore::{semijoin, ExecConfig, MetricsSink};

const THREADS: [usize; 3] = [1, 2, 7];

/// Parent/child schema — one join component, with a back-and-forth key so
/// semijoin reduction drops dangling rows on *both* sides.
fn parent_child_db(parents: &[i64], children: &[(i64, i64)]) -> Database {
    let schema = SchemaBuilder::new()
        .relation("Parent", &[("id", T::Int), ("v", T::Int)], &["id"])
        .relation("Child", &[("id", T::Int), ("pid", T::Int)], &["id"])
        .back_and_forth_fk("Child", &["pid"], "Parent")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    for (i, &p) in parents.iter().enumerate() {
        db.insert("Parent", vec![p.into(), (i as i64).into()])
            .unwrap();
    }
    for (i, &(_, pid)) in children.iter().enumerate() {
        db.insert("Child", vec![(i as i64).into(), pid.into()])
            .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation law of the semijoin counters —
    /// `rows_in == rows_dropped + rows_surviving` — with the whole
    /// normalized snapshot bit-identical at 1/2/7 threads. The generated
    /// instances have dangling rows on both sides of the back-and-forth
    /// key, so the reduction genuinely drops tuples.
    #[test]
    fn semijoin_counters_conserve_rows_across_threads(
        parent_ids in proptest::collection::vec(0i64..25, 1..20),
        child_pids in proptest::collection::vec(0i64..50, 0..60),
    ) {
        let parents: Vec<i64> = {
            let mut p: Vec<i64> = parent_ids.clone();
            p.sort_unstable();
            p.dedup();
            p
        };
        let children: Vec<(i64, i64)> =
            child_pids.iter().map(|&pid| (0, pid)).collect();
        let db = parent_child_db(&parents, &children);

        let mut snapshots = Vec::new();
        for threads in THREADS {
            let sink = MetricsSink::recording();
            let exec = ExecConfig::with_threads(threads).with_metrics(sink.clone());
            let mut view = db.full_view();
            semijoin::reduce_in_place_with(&db, &mut view, &exec);
            let snap = sink.snapshot().normalized();
            prop_assert_eq!(
                snap.counter("semijoin.rows_in"),
                snap.counter("semijoin.rows_dropped") + snap.counter("semijoin.rows_surviving"),
                "conservation law at {} threads", threads
            );
            prop_assert_eq!(
                snap.counter("semijoin.rows_surviving"),
                view.total_live() as u64
            );
            snapshots.push(snap);
        }
        prop_assert_eq!(&snapshots[0], &snapshots[1]);
        prop_assert_eq!(&snapshots[0], &snapshots[2]);
    }

    /// On a single-component schema every probe match becomes exactly one
    /// universal tuple: `join.probe_matches == universal.len()`, at every
    /// thread count, with identical normalized snapshots.
    #[test]
    fn join_probe_matches_equal_universal_len_across_threads(
        parent_count in 1usize..12,
        child_parent in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let parents: Vec<i64> = (0..parent_count as i64).collect();
        let children: Vec<(i64, i64)> = child_parent
            .iter()
            .map(|&p| (0, (p as usize % parent_count) as i64))
            .collect();
        let db = parent_child_db(&parents, &children);

        let mut snapshots = Vec::new();
        for threads in THREADS {
            let sink = MetricsSink::recording();
            let exec = ExecConfig::with_threads(threads).with_metrics(sink.clone());
            let u = Universal::compute_with(&db, &db.full_view(), &exec);
            let snap = sink.snapshot().normalized();
            prop_assert_eq!(snap.counter("join.components"), 1);
            prop_assert_eq!(
                snap.counter("join.probe_matches"),
                u.len() as u64,
                "at {} threads", threads
            );
            prop_assert_eq!(snap.counter("join.tuples"), u.len() as u64);
            snapshots.push(snap);
        }
        prop_assert_eq!(&snapshots[0], &snapshots[1]);
        prop_assert_eq!(&snapshots[0], &snapshots[2]);
    }

    /// On full cross-product data the cube has the closed-form cell count
    /// `Π (c_i + 1)` and per-level counts `C(levels)`, identical at every
    /// thread count.
    #[test]
    fn cube_cell_counters_match_closed_form_across_threads(
        a in 1usize..4,
        b in 1usize..4,
        repeat in 1usize..3,
    ) {
        // Full cross product over domains of size a and b, each combo
        // inserted `repeat` times (duplicates must not add cells).
        let mut rows = Vec::new();
        for g in 0..a as u8 {
            for h in 0..b as u8 {
                for _ in 0..repeat {
                    rows.push((g, h, 1i32));
                }
            }
        }
        let db = small_db(&rows);
        let schema = db.schema();
        let dims = vec![schema.attr("R", "g").unwrap(), schema.attr("R", "h").unwrap()];

        let mut snapshots = Vec::new();
        for threads in THREADS {
            let sink = MetricsSink::recording();
            let exec = ExecConfig::with_threads(threads).with_metrics(sink.clone());
            let u = Universal::compute_with(&db, &db.full_view(), &ExecConfig::sequential());
            let cube = cube::compute_with(
                &db, &u, &Predicate::True, &dims, &AggFunc::CountStar,
                CubeStrategy::LatticeRollup, &exec,
            ).unwrap();
            let snap = sink.snapshot().normalized();
            let (a64, b64) = (a as u64, b as u64);
            prop_assert_eq!(snap.counter("cube.cells"), (a64 + 1) * (b64 + 1));
            prop_assert_eq!(snap.counter("cube.cells"), cube.len() as u64);
            prop_assert_eq!(snap.counter("cube.cells.level.0"), 1);
            prop_assert_eq!(snap.counter("cube.cells.level.1"), a64 + b64);
            prop_assert_eq!(snap.counter("cube.cells.level.2"), a64 * b64);
            prop_assert_eq!(snap.counter("cube.input_tuples"), rows.len() as u64);
            snapshots.push(snap);
        }
        prop_assert_eq!(&snapshots[0], &snapshots[1]);
        prop_assert_eq!(&snapshots[0], &snapshots[2]);
    }
}

/// The parallel probe path (root count past the executor's sequential
/// cut-off) records the same `join.probe_matches` as the sequential one —
/// proptest sizes stay small, so pin the large case explicitly.
#[test]
fn join_counters_deterministic_on_large_single_component() {
    let parents: Vec<i64> = (0..1500).collect();
    let children: Vec<(i64, i64)> = (0..4500).map(|i| (0, i % 1500)).collect();
    let db = parent_child_db(&parents, &children);
    let mut snapshots = Vec::new();
    for threads in THREADS {
        let sink = MetricsSink::recording();
        let exec = ExecConfig::with_threads(threads).with_metrics(sink.clone());
        let u = Universal::compute_with(&db, &db.full_view(), &exec);
        let snap = sink.snapshot().normalized();
        assert_eq!(snap.counter("join.probe_matches"), u.len() as u64);
        assert_eq!(snap.counter("join.root_rows"), 1500);
        snapshots.push(snap);
    }
    assert_eq!(snapshots[0], snapshots[1]);
    assert_eq!(snapshots[0], snapshots[2]);
}

// ---------------------------------------------------------------------
// Append stability (live ingestion)
// ---------------------------------------------------------------------

use exq_relstore::{ColumnStore, DictBuilder};

proptest! {
    /// A chain of `DictBuilder::resume` appends is indistinguishable from
    /// one from-scratch scan of all the rows: codes assigned at any epoch
    /// are never reassigned by a later append, and the final dictionary
    /// (values, ranks, null code) equals the rebuild exactly. This is the
    /// contract that lets `ColumnStore::extend_for_append` keep old coded
    /// columns byte-stable under live ingestion.
    #[test]
    fn dict_resume_chain_never_recodes_and_matches_scratch(
        initial in proptest::collection::vec(arb_dict_value(), 0..30),
        appends in proptest::collection::vec(
            proptest::collection::vec(arb_dict_value(), 0..12),
            1..5,
        ),
    ) {
        use std::cmp::Ordering;
        let mut builder = DictBuilder::new();
        for v in &initial {
            builder.encode(v).expect("under DICT_MAX");
        }
        let mut current = builder.finish();
        let mut all = initial.clone();
        for batch in &appends {
            let before: Vec<Value> =
                (0..current.len() as u32).map(|c| current.value(c).clone()).collect();
            let mut resumed = DictBuilder::resume(&current);
            for v in batch {
                resumed.encode(v).expect("under DICT_MAX");
            }
            current = resumed.finish();
            all.extend(batch.iter().cloned());
            // Codes never change: the pre-append code→value table is a
            // verbatim prefix of the post-append one.
            prop_assert!(current.len() >= before.len());
            for (code, v) in before.iter().enumerate() {
                prop_assert_eq!(
                    current.value(code as u32).cmp(v),
                    Ordering::Equal,
                    "append reassigned code {}", code
                );
            }
        }
        // Append-then-rebuild identity.
        let mut scratch = DictBuilder::new();
        for v in &all {
            scratch.encode(v).expect("under DICT_MAX");
        }
        let scratch = scratch.finish();
        prop_assert_eq!(current.len(), scratch.len());
        for code in 0..current.len() as u32 {
            prop_assert_eq!(
                current.value(code).cmp(scratch.value(code)),
                Ordering::Equal
            );
            prop_assert_eq!(current.rank(code), scratch.rank(code));
        }
        prop_assert_eq!(current.null_code(), scratch.null_code());
    }

    /// Random append sequences through `Database::append_batch` keep the
    /// columnar store append-stable: every epoch's code column is a
    /// verbatim prefix of the next epoch's, and the final extended store
    /// is bit-identical (codes, dictionary values, ranks, null code) to a
    /// cold `ColumnStore::build` over the post-append rows.
    #[test]
    fn column_store_appends_are_prefix_stable_and_match_rebuild(
        initial in proptest::collection::vec(arb_dict_value(), 1..30),
        appends in proptest::collection::vec(
            proptest::collection::vec(arb_dict_value(), 1..12),
            1..4,
        ),
    ) {
        use std::cmp::Ordering;
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("x", T::Any)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        let mut next_id = 0i64;
        for v in &initial {
            db.insert("R", vec![next_id.into(), v.clone()]).unwrap();
            next_id += 1;
        }
        let x = db.schema().attr("R", "x").unwrap();

        // Force the columnar build, then append batch by batch, capturing
        // the code column at every epoch.
        let mut epoch_codes: Vec<Vec<u32>> =
            vec![db.columns().dict_column(x).unwrap().0.to_vec()];
        for batch in &appends {
            let rows: Vec<Vec<Value>> = batch
                .iter()
                .map(|v| {
                    let row = vec![Value::Int(next_id), v.clone()];
                    next_id += 1;
                    row
                })
                .collect();
            db.append_batch(vec![("R".into(), rows)]).unwrap();
            epoch_codes.push(db.columns().dict_column(x).unwrap().0.to_vec());
        }

        // Prefix stability across every consecutive epoch pair.
        for (epoch, w) in epoch_codes.windows(2).enumerate() {
            prop_assert_eq!(
                &w[1][..w[0].len()],
                &w[0][..],
                "epoch {} codes rewritten by the following append", epoch
            );
        }

        // Rebuild-from-scratch identity on the final rows.
        let rebuilt = ColumnStore::build(&db);
        let (codes, dict) = db.columns().dict_column(x).unwrap();
        let (codes2, dict2) = rebuilt.dict_column(x).unwrap();
        prop_assert_eq!(codes, codes2);
        prop_assert_eq!(dict.len(), dict2.len());
        for code in 0..dict.len() as u32 {
            prop_assert_eq!(
                dict.value(code).cmp(dict2.value(code)),
                Ordering::Equal
            );
            prop_assert_eq!(dict.rank(code), dict2.rank(code));
        }
        prop_assert_eq!(dict.null_code(), dict2.null_code());
    }
}
