//! The HTTP parser and JSON reader sit directly on untrusted bytes, so
//! they must be *total*: any input returns `Ok`/`Err`/"need more",
//! never a panic. Fuzz them with arbitrary byte soup, truncations of
//! valid requests, oversized heads, and bad chunked framing.

use exq_serve::http::{parse_request, Limits, ParseError};
use exq_serve::json;
use proptest::prelude::*;

const VALID: &[u8] = b"POST /v1/explain HTTP/1.1\r\nhost: exq\r\ncontent-length: 27\r\n\r\n{\"dataset\": \"dblp\", \"x\": 1}";

fn mutate(base: &[u8], edits: &[(u16, u8)]) -> Vec<u8> {
    let mut bytes = base.to_vec();
    for &(pos, b) in edits {
        let i = pos as usize % (bytes.len() + 1);
        if i == bytes.len() {
            bytes.push(b);
        } else {
            bytes[i] = b;
        }
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = parse_request(&bytes, &Limits::default());
        // Tight limits exercise every rejection path too.
        let tiny = Limits { max_head: 48, max_body: 8, max_headers: 2 };
        let _ = parse_request(&bytes, &tiny);
    }

    #[test]
    fn every_truncation_of_a_valid_request_is_incomplete_not_wrong(
        cut in 0usize..60,
    ) {
        let cut = cut.min(VALID.len() - 1);
        // A strict prefix must either ask for more bytes or (once the
        // head is complete) already be parseable — never an error.
        prop_assert!(parse_request(&VALID[..cut], &Limits::default()).is_ok());
    }

    #[test]
    fn parser_never_panics_on_mutated_requests(
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..10),
    ) {
        let _ = parse_request(&mutate(VALID, &edits), &Limits::default());
    }

    #[test]
    fn oversized_heads_are_rejected_not_buffered(
        pad in 1usize..2000,
    ) {
        let limits = Limits { max_head: 256, ..Limits::default() };
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', 256 + pad));
        // No terminator in sight and already over budget: the parser
        // must fail now so the server stops reading.
        prop_assert_eq!(
            parse_request(&raw, &limits).unwrap_err(),
            ParseError::HeadTooLarge
        );
    }

    #[test]
    fn bad_chunking_is_rejected_deterministically(
        chunk_line in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // Whatever the chunk body looks like, a Transfer-Encoding
        // header is refused up front (501), so malformed chunk framing
        // can never desynchronize the connection.
        let mut raw = b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n".to_vec();
        raw.extend_from_slice(&chunk_line);
        raw.extend_from_slice(b"\r\n");
        prop_assert_eq!(
            parse_request(&raw, &Limits::default()).unwrap_err(),
            ParseError::UnsupportedTransferEncoding
        );
    }

    #[test]
    fn json_reader_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let _ = json::parse(&bytes);
    }

    #[test]
    fn json_reader_never_panics_on_mutated_documents(
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..8),
    ) {
        let base = br#"{"dataset": "dblp", "attrs": ["Author.inst"], "top": 3, "min_support": 0.5}"#;
        let _ = json::parse(&mutate(base, &edits));
    }
}
