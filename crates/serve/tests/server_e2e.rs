//! End-to-end tests over a real socket: routing, caching, error paths,
//! backpressure, and graceful shutdown accounting.

use exq_relstore::{Database, ExecConfig, SchemaBuilder, ValueType as T};
use exq_serve::{client, Catalog, ServerConfig, SERVER_COUNTERS};
use std::sync::Arc;
use std::time::Duration;

/// Two joined relations, enough signal for a real ranking.
fn test_db() -> Database {
    let schema = SchemaBuilder::new()
        .relation("A", &[("id", T::Int), ("g", T::Str)], &["id"])
        .relation(
            "B",
            &[("id", T::Int), ("a", T::Int), ("ok", T::Str)],
            &["id"],
        )
        .standard_fk("B", &["a"], "A")
        .build()
        .unwrap();
    let mut db = Database::new(schema);
    for (id, g) in [(1, "x"), (2, "y"), (3, "z")] {
        db.insert("A", vec![id.into(), g.into()]).unwrap();
    }
    for (id, a, ok) in [
        (10, 1, "y"),
        (11, 1, "y"),
        (12, 1, "n"),
        (13, 2, "y"),
        (14, 2, "n"),
        (15, 3, "n"),
    ] {
        db.insert("B", vec![id.into(), a.into(), ok.into()])
            .unwrap();
    }
    db
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.insert_database("test", Arc::new(test_db()), &ExecConfig::sequential())
        .unwrap();
    c
}

fn start(config: ServerConfig) -> exq_serve::Handle {
    exq_serve::start(catalog(), config, exq_obs::MetricsSink::recording()).unwrap()
}

const EXPLAIN_BODY: &str = r#"{
  "dataset": "test",
  "question": "agg y = count(*) where ok = 'y'\nagg n = count(*) where ok = 'n'\nexpr y / n\ndir high\nsmoothing 0.0001",
  "attrs": ["A.g"],
  "top": 3
}"#;

/// Zero the digits after every `"total_ns": ` so span wall-times don't
/// break byte comparisons (same normalization the CLI tests use).
fn normalize(text: &str) -> String {
    let mut out = String::new();
    for line in text.lines() {
        match line.find("\"total_ns\": ") {
            Some(idx) => {
                let head = &line[..idx + "\"total_ns\": ".len()];
                let tail: String = line[idx + "\"total_ns\": ".len()..]
                    .chars()
                    .skip_while(char::is_ascii_digit)
                    .collect();
                out.push_str(head);
                out.push('0');
                out.push_str(&tail);
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

#[test]
fn health_datasets_metrics_and_errors() {
    let handle = start(ServerConfig::default());
    let addr = handle.addr();

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\": \"ok\""));

    let datasets = client::get(addr, "/v1/datasets").unwrap();
    assert_eq!(datasets.status, 200);
    assert!(
        datasets.text().contains("\"name\": \"test\""),
        "{}",
        datasets.text()
    );
    assert!(
        datasets.text().contains("\"tuples\": 9"),
        "{}",
        datasets.text()
    );

    // Every catalogued server counter appears in /v1/metrics even on an
    // idle server (pre-registered at 0).
    let metrics = client::get(addr, "/v1/metrics").unwrap();
    for counter in SERVER_COUNTERS {
        assert!(
            metrics.text().contains(&format!("\"{counter}\"")),
            "missing {counter} in {}",
            metrics.text()
        );
    }

    assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
    assert_eq!(client::get(addr, "/v1/explain").unwrap().status, 405);
    assert_eq!(
        client::post_json(addr, "/v1/explain", "{not json")
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client::post_json(addr, "/v1/explain", "{}").unwrap().status,
        422
    );
    assert_eq!(
        client::post_json(
            addr,
            "/v1/explain",
            r#"{"dataset": "absent", "question": "x", "attrs": []}"#
        )
        .unwrap()
        .status,
        404
    );
    let bad_question = client::post_json(
        addr,
        "/v1/explain",
        r#"{"dataset": "test", "question": "agg a = frobnicate(*)", "attrs": ["A.g"]}"#,
    )
    .unwrap();
    assert_eq!(bad_question.status, 422);
    assert!(bad_question.text().contains("\"error\""));

    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("server.requests"), 9);
    assert_eq!(snapshot.counter("server.responses.ok"), 3);
    assert_eq!(snapshot.counter("server.responses.client_error"), 6);
    assert_eq!(snapshot.counter("server.responses.server_error"), 0);
}

#[test]
fn explain_cold_then_cached_is_byte_identical() {
    let handle = start(ServerConfig::default());
    let addr = handle.addr();

    let cold = client::post_json(addr, "/v1/explain", EXPLAIN_BODY).unwrap();
    assert_eq!(cold.status, 200);
    let text = cold.text();
    assert!(text.contains("\"engine\": \"Cube\""), "{text}");
    assert!(text.contains("\"explanation\": \"[A.g = x]\""), "{text}");

    // Same question spelled differently: extra whitespace in the JSON,
    // smoothing as a different numeral → same cache entry, so the
    // response bytes are identical down to the span wall-times.
    let respelled = r#"{
  "top": 3,
  "attrs": ["A.g"],
  "question": "agg y = count(*) where ok = 'y'\nagg n = count(*) where ok = 'n'\nexpr y / n\ndir high\nsmoothing 1e-4",
  "dataset": "test"
}"#;
    let warm = client::post_json(addr, "/v1/explain", respelled).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(cold.body, warm.body, "cache hit must return the cold bytes");

    // A different ranking config misses the cache.
    let other = client::post_json(
        addr,
        "/v1/explain",
        &EXPLAIN_BODY.replace("\"top\": 3", "\"top\": 1"),
    )
    .unwrap();
    assert_eq!(other.status, 200);
    assert_ne!(cold.body, other.body);

    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("server.cache.hits"), 1);
    assert_eq!(snapshot.counter("server.cache.misses"), 2);
    assert_eq!(snapshot.counter("server.explain.runs"), 2);
}

#[test]
fn report_endpoint_returns_rankings_and_drill() {
    let handle = start(ServerConfig::default());
    let report = client::post_json(handle.addr(), "/v1/report", EXPLAIN_BODY).unwrap();
    assert_eq!(report.status, 200);
    let text = report.text();
    for key in [
        "\"rankings\": {",
        "\"intervention\": [",
        "\"aggravation\": [",
        "\"tau\":",
        "\"drill\": {",
        "\"mu_hybrid\":",
    ] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("server.report.runs"), 1);
}

/// N parallel clients all get the same normalized document, at 1, 2,
/// and 7 worker threads.
#[test]
fn parallel_clients_get_identical_normalized_responses() {
    let mut reference: Option<String> = None;
    for threads in [1usize, 2, 7] {
        let handle = start(ServerConfig {
            threads,
            ..ServerConfig::default()
        });
        let addr = handle.addr();
        let bodies: Vec<String> = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..6)
                .map(|_| {
                    scope.spawn(move || {
                        let response =
                            client::post_json(addr, "/v1/explain", EXPLAIN_BODY).unwrap();
                        assert_eq!(response.status, 200);
                        normalize(&response.text())
                    })
                })
                .collect();
            clients.into_iter().map(|c| c.join().unwrap()).collect()
        });
        for body in &bodies {
            assert_eq!(body, &bodies[0], "divergent response at {threads} threads");
        }
        match &reference {
            None => reference = Some(bodies[0].clone()),
            Some(expected) => assert_eq!(
                &bodies[0], expected,
                "thread count {threads} changed the normalized document"
            ),
        }
        handle.shutdown();
    }
}

/// ISSUE 5 surface: every response carries a trace id, `GET /metrics`
/// is valid Prometheus text exposition with per-endpoint latency
/// histograms, and the flight recorder remembers recent requests by
/// trace id and cache outcome.
#[test]
fn tracing_metrics_and_flight_recorder() {
    let handle = start(ServerConfig::default());
    let addr = handle.addr();

    let cold = client::post_json(addr, "/v1/explain", EXPLAIN_BODY).unwrap();
    assert_eq!(cold.status, 200);
    let first: u64 = cold.header("x-exq-trace-id").unwrap().parse().unwrap();
    let warm = client::post_json(addr, "/v1/explain", EXPLAIN_BODY).unwrap();
    let second: u64 = warm.header("x-exq-trace-id").unwrap().parse().unwrap();
    // Sequential requests get consecutive trace ids.
    assert_eq!(second, first + 1);

    // The scrape target validates against the in-repo checker and
    // carries the endpoint latency histograms split by cache outcome.
    let prom = client::get(addr, "/metrics").unwrap();
    assert_eq!(prom.status, 200);
    assert!(
        prom.header("content-type").unwrap().contains("text/plain"),
        "{:?}",
        prom.header("content-type")
    );
    let text = prom.text();
    exq_obs::check_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    for family in [
        "exq_server_latency_explain_miss_bucket",
        "exq_server_latency_explain_hit_bucket",
        "exq_span_calls_total{span=\"server.request\"}",
    ] {
        assert!(text.contains(family), "missing {family} in {text}");
    }
    assert!(text.contains("le=\"+Inf\""), "{text}");

    // Same exposition through the JSON endpoint's format switch.
    let prom2 = client::get(addr, "/v1/metrics?format=prometheus").unwrap();
    assert_eq!(prom2.status, 200);
    exq_obs::check_prometheus(&prom2.text()).unwrap();

    // The flight recorder remembers both explain requests, matching
    // the trace ids the client saw, with their cache outcomes.
    let flight = client::get(addr, "/v1/debug/requests").unwrap();
    assert_eq!(flight.status, 200);
    let doc = exq_serve::json::parse(flight.text().as_bytes()).unwrap();
    let requests = doc.get("requests").and_then(|v| v.as_array()).unwrap();
    let find = |trace: u64| {
        requests
            .iter()
            .find(|r| r.get("trace_id").and_then(|v| v.as_usize()) == Some(trace as usize))
            .unwrap_or_else(|| panic!("trace {trace} not in flight recorder"))
    };
    assert_eq!(
        find(first).get("cache").and_then(|v| v.as_str()),
        Some("miss")
    );
    assert_eq!(
        find(second).get("cache").and_then(|v| v.as_str()),
        Some("hit")
    );
    assert_eq!(
        find(first).get("path").and_then(|v| v.as_str()),
        Some("/v1/explain")
    );

    let snapshot = handle.shutdown();
    for (hist, expected) in [
        ("server.latency.explain.miss", 1),
        ("server.latency.explain.hit", 1),
    ] {
        assert_eq!(
            snapshot.histograms.get(hist).map(|h| h.count),
            Some(expected),
            "histogram {hist}"
        );
    }
    // The GETs above land in the pooled bucket.
    assert!(snapshot.histograms["server.latency.other"].count >= 3);
    // Request-phase spans fired on the server-global sink.
    for span in [
        "server.request",
        "server.request.parse",
        "server.request.explain",
    ] {
        assert!(snapshot.spans.contains_key(span), "missing span {span}");
    }
}

/// ISSUE 8 surface: malformed append bodies get the right 4xx without
/// touching the dataset, and the epoch never moves on a failure.
#[test]
fn append_error_paths_leave_the_epoch_alone() {
    let handle = start(ServerConfig::default());
    let addr = handle.addr();
    let path = "/v1/datasets/test/rows";

    // Method and path shape.
    assert_eq!(client::get(addr, path).unwrap().status, 405);
    assert_eq!(
        client::post_json(
            addr,
            "/v1/datasets/absent/rows",
            r#"{"rows":{"A":[[9,"q"]]}}"#
        )
        .unwrap()
        .status,
        404
    );

    // Body shape: bad JSON → 400, everything semantic → 422.
    assert_eq!(
        client::post_json(addr, path, "{not json").unwrap().status,
        400
    );
    for (body, why) in [
        (r#"{}"#, "missing rows"),
        (r#"{"rows": []}"#, "rows not an object"),
        (r#"{"rows": {}}"#, "empty batch"),
        (r#"{"rows": {"Nope": [[1]]}}"#, "unknown relation"),
        (r#"{"rows": {"A": [[9]]}}"#, "arity mismatch"),
        (r#"{"rows": {"A": [[9, 7]]}}"#, "type mismatch"),
        (r#"{"rows": {"A": [[1, "dup"]]}}"#, "duplicate primary key"),
        (
            r#"{"rows": {"B": [[99, 42, "y"]]}}"#,
            "dangling foreign key",
        ),
    ] {
        let response = client::post_json(addr, path, body).unwrap();
        assert_eq!(response.status, 422, "{why}: {}", response.text());
    }

    // Nothing above changed the data or the epoch.
    let datasets = client::get(addr, "/v1/datasets").unwrap();
    assert!(
        datasets.text().contains("\"tuples\": 9"),
        "{}",
        datasets.text()
    );
    assert!(
        datasets.text().contains("\"epoch\": 0"),
        "{}",
        datasets.text()
    );

    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("ingest.rows_appended"), 0);
    assert_eq!(snapshot.counter("ingest.epoch_bumps"), 0);
}

/// A body over the HTTP limit answers 413 before any parsing happens.
#[test]
fn oversized_append_batch_is_rejected_with_413() {
    let handle = start(ServerConfig {
        limits: exq_serve::http::Limits {
            max_body: 256,
            ..exq_serve::http::Limits::default()
        },
        ..ServerConfig::default()
    });
    let rows: Vec<String> = (0..50).map(|i| format!("[{},\"g\"]", 100 + i)).collect();
    let big = format!(r#"{{"rows":{{"A":[{}]}}}}"#, rows.join(","));
    assert!(big.len() > 256);
    let response = client::post_json(handle.addr(), "/v1/datasets/test/rows", &big).unwrap();
    assert_eq!(response.status, 413);
    handle.shutdown();
}

/// A successful append bumps the epoch (header and catalog listing) and
/// invalidates cached answers: the same question misses the cache after
/// the append because the epoch is part of the key, and the fresh
/// answer reflects the new rows.
#[test]
fn append_bumps_epoch_and_epoch_keys_the_cache() {
    let handle = start(ServerConfig::default());
    let addr = handle.addr();

    let cold = client::post_json(addr, "/v1/explain", EXPLAIN_BODY).unwrap();
    assert_eq!(cold.status, 200);
    let warm = client::post_json(addr, "/v1/explain", EXPLAIN_BODY).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(
        cold.body, warm.body,
        "pre-append repeat must be a cache hit"
    );

    // Give dangling A(3) two 'y' children — flips the signal for A.g = z.
    let appended = client::post_json(
        addr,
        "/v1/datasets/test/rows",
        r#"{"rows": {"B": [[16, 3, "y"], [17, 3, "y"]]}}"#,
    )
    .unwrap();
    assert_eq!(appended.status, 200, "{}", appended.text());
    assert_eq!(appended.header("x-exq-epoch"), Some("1"));
    assert!(
        appended.text().contains("\"epoch\": 1"),
        "{}",
        appended.text()
    );
    assert!(
        appended.text().contains("\"rows_appended\": 2"),
        "{}",
        appended.text()
    );

    let datasets = client::get(addr, "/v1/datasets").unwrap();
    assert!(
        datasets.text().contains("\"epoch\": 1"),
        "{}",
        datasets.text()
    );
    assert!(
        datasets.text().contains("\"tuples\": 11"),
        "{}",
        datasets.text()
    );

    // Same question, new epoch: a cache miss computed over the new data.
    let fresh = client::post_json(addr, "/v1/explain", EXPLAIN_BODY).unwrap();
    assert_eq!(fresh.status, 200);
    assert_ne!(
        cold.body, fresh.body,
        "post-append answer must reflect the appended rows"
    );

    let snapshot = handle.shutdown();
    // One hit before the append, two misses (cold + post-append).
    assert_eq!(snapshot.counter("server.cache.hits"), 1);
    assert_eq!(snapshot.counter("server.cache.misses"), 2);
    assert_eq!(snapshot.counter("server.append.runs"), 1);
    // Conservation: every row the endpoint accepted is stored (tuples
    // went 9 → 11 above) and counted exactly once.
    assert_eq!(snapshot.counter("ingest.rows_appended"), 2);
    assert_eq!(snapshot.counter("ingest.epoch_bumps"), 1);
}

#[test]
fn zero_queue_depth_sheds_load_with_503_and_retry_after() {
    let handle = start(ServerConfig {
        queue_depth: 0,
        ..ServerConfig::default()
    });
    // The busy rejection is the server's only 503 source (shutdown drains
    // the queue instead of shedding it), so hammering a zero-depth queue
    // covers every 503 the server can emit. Each one must carry a
    // `Retry-After` in RFC 9110 delay-seconds form: a non-empty unsigned
    // ASCII-digit integer — no sign, no unit suffix, no HTTP-date.
    for path in ["/healthz", "/v1/datasets", "/metrics"] {
        let response = client::get(handle.addr(), path).unwrap();
        assert_eq!(response.status, 503, "{path}");
        let retry = response
            .header("retry-after")
            .unwrap_or_else(|| panic!("503 for {path} lacks Retry-After"));
        assert!(
            !retry.is_empty() && retry.bytes().all(|b| b.is_ascii_digit()),
            "Retry-After {retry:?} is not RFC 9110 delay-seconds"
        );
        let delay: u64 = retry.parse().expect("delay-seconds parses as u64");
        assert!(delay >= 1, "a zero delay would invite an immediate retry");
    }
    let snapshot = handle.shutdown();
    assert_eq!(snapshot.counter("server.rejected_busy"), 3);
    assert_eq!(snapshot.counter("server.requests"), 0);
}

#[test]
fn oversized_body_is_rejected_with_413() {
    let handle = start(ServerConfig {
        limits: exq_serve::http::Limits {
            max_body: 64,
            ..exq_serve::http::Limits::default()
        },
        ..ServerConfig::default()
    });
    let big = format!(
        r#"{{"dataset": "test", "question": "{}", "attrs": []}}"#,
        "x".repeat(200)
    );
    let response = client::post_json(handle.addr(), "/v1/explain", &big).unwrap();
    assert_eq!(response.status, 413);
    handle.shutdown();
}

#[test]
fn slow_request_times_out_with_408() {
    let handle = start(ServerConfig {
        request_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    // Open a connection, send half a request, then stall.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream
        .write_all(b"POST /v1/explain HTTP/1.1\r\ncontent-length: 100\r\n\r\nhalf")
        .unwrap();
    let mut response = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 408 "), "{response}");
    handle.shutdown();
}

/// ISSUE 10 surface: per-request cost accounting (header, body block,
/// per-tenant counters), the mergeable snapshot wire format, and
/// tail-sampled trace retention with exemplars.
#[test]
fn cost_accounting_snapshot_wire_and_trace_retention() {
    let dir = std::env::temp_dir().join(format!("exq-obsplane-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let traces_path = dir.join("traces.jsonl");
    let access_path = dir.join("access.log");
    let handle = start(ServerConfig {
        shard_id: Some(7),
        trace_slow_ms: Some(0), // retain every request deterministically
        trace_retain: Some(traces_path.clone()),
        access_log: exq_serve::AccessLog::open(&access_path, true).unwrap(),
        ..ServerConfig::default()
    });
    let mut conn = client::Connection::new(handle.addr());
    let tenant_headers = [("x-exq-tenant", "Acme-Corp")];

    // Cold explain: the cost header describes the work actually done,
    // and the body carries the same facts as a `cost` block.
    let cold = conn
        .request_with(
            "POST",
            "/v1/explain",
            Some(EXPLAIN_BODY.as_bytes()),
            &tenant_headers,
        )
        .unwrap();
    assert_eq!(cold.status, 200);
    let cold_trace: u64 = cold.header("x-exq-trace-id").unwrap().parse().unwrap();
    let cost_header = cold.header("x-exq-cost").unwrap().to_string();
    assert!(
        cost_header.contains("cache=miss") && cost_header.contains("epoch=0"),
        "{cost_header}"
    );
    let doc = exq_serve::json::parse(cold.text().as_bytes()).unwrap();
    let cost = doc.get("cost").expect("response body carries a cost block");
    assert_eq!(cost.get("cache").and_then(|v| v.as_str()), Some("miss"));
    assert_eq!(cost.get("epoch").and_then(|v| v.as_usize()), Some(0));
    let candidates = cost.get("candidates").and_then(|v| v.as_usize()).unwrap();
    let cube_cells = cost.get("cube_cells").and_then(|v| v.as_usize()).unwrap();
    assert!(candidates > 0, "explain evaluated no candidates?");
    assert!(cube_cells > 0, "explain materialized no cube cells?");
    assert!(cost_header.contains(&format!("candidates={candidates}")));

    // Warm repeat: byte-identical body (the cost block is baked into
    // the cached bytes), while the header reports the hit's own cost.
    let warm = conn
        .request_with(
            "POST",
            "/v1/explain",
            Some(EXPLAIN_BODY.as_bytes()),
            &tenant_headers,
        )
        .unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(cold.body, warm.body, "hit must replay the cold bytes");
    assert_eq!(
        warm.header("x-exq-cost"),
        Some("rows=0;candidates=0;cells=0;cache=hit;epoch=0")
    );

    // The mergeable wire encoding round-trips through the decoder and
    // carries the exemplar of the retained cold request.
    let wire = conn.get("/v1/metrics?format=snapshot").unwrap();
    assert_eq!(wire.status, 200);
    let wire_text = wire.text();
    assert!(wire_text.starts_with(exq_obs::WIRE_MAGIC), "{wire_text}");
    let (snapshot, exemplars) = exq_obs::decode_snapshot(&wire_text).unwrap();
    assert!(snapshot.counter("server.requests") >= 2);
    let explain_exemplar = exemplars
        .iter()
        .find(|e| e.hist == "server.latency.explain.miss")
        .expect("retained cold request must be the explain.miss exemplar");
    assert_eq!(explain_exemplar.trace_id, cold_trace);

    // The Prometheus exposition stays checker-clean with the exemplar
    // comments appended, shard-labelled.
    let prom = conn.get("/metrics").unwrap();
    let prom_text = prom.text();
    exq_obs::check_prometheus(&prom_text).unwrap_or_else(|e| panic!("{e}\n{prom_text}"));
    assert!(
        prom_text.contains(&format!(
            "# exemplar exq_server_latency_explain_miss_bucket{{le=\"{}\",shard=\"7\"}} trace_id={cold_trace}",
            explain_exemplar.bucket_upper
        )),
        "{prom_text}"
    );

    // Retained traces are fetchable by the exemplar's trace id.
    let traces = conn.get("/v1/debug/traces").unwrap();
    assert_eq!(traces.status, 200);
    let traces_doc = exq_serve::json::parse(traces.text().as_bytes()).unwrap();
    let entries = traces_doc.get("traces").and_then(|v| v.as_array()).unwrap();
    let retained = entries
        .iter()
        .find(|t| t.get("trace_id").and_then(|v| v.as_usize()) == Some(cold_trace as usize))
        .expect("cold request retained");
    assert_eq!(retained.get("reason").and_then(|v| v.as_str()), Some("slow"));

    let snapshot = handle.shutdown();
    // Tenant accounting: both requests billed to the sanitized tenant;
    // the hit added zero work on top of the miss's engine counters.
    assert_eq!(snapshot.counter("server.tenant.cost.acme_corp.requests"), 2);
    assert_eq!(
        snapshot.counter("server.tenant.cost.acme_corp.candidates"),
        candidates as u64
    );
    assert_eq!(
        snapshot.counter("server.tenant.cost.acme_corp.cells"),
        cube_cells as u64
    );
    assert!(snapshot.counter("server.trace.retained") >= 2);
    // Retention persisted JSONL, and the deterministic access log tagged
    // every line with tenant and shard.
    let persisted = std::fs::read_to_string(&traces_path).unwrap();
    assert!(
        persisted.lines().any(|l| l.contains(&format!("\"trace_id\": {cold_trace}"))),
        "{persisted}"
    );
    let access = std::fs::read_to_string(&access_path).unwrap();
    let explain_lines: Vec<&str> = access
        .lines()
        .filter(|l| l.contains("\"endpoint\": \"explain\""))
        .collect();
    assert_eq!(explain_lines.len(), 2, "{access}");
    assert!(explain_lines[0].contains("\"tenant\": \"Acme-Corp\""));
    assert!(explain_lines[0].contains("\"shard\": 7"));
    assert!(explain_lines[0].contains("\"ts_bucket\": 0"));
    assert!(explain_lines[1].contains("\"cache\": \"hit\""));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shutdown drains: requests accepted before the signal complete.
#[test]
fn shutdown_completes_queued_work() {
    let handle = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let addr = handle.addr();
    let workers: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || client::post_json(addr, "/v1/explain", EXPLAIN_BODY)))
        .collect();
    // Give the clients a moment to be accepted, then shut down while
    // some are likely still in flight.
    std::thread::sleep(Duration::from_millis(50));
    let snapshot = handle.shutdown();
    let mut ok = 0;
    for w in workers {
        if let Ok(Ok(response)) = w.join() {
            assert_eq!(response.status, 200);
            ok += 1;
        }
    }
    // Everything the server accepted it answered; the final snapshot
    // saw every completed response.
    assert_eq!(snapshot.counter("server.responses.ok"), ok);
}
