//! The Chrome trace exporter feeds external tools (Perfetto,
//! `chrome://tracing`), so its output must always be well-formed JSON
//! with stack-balanced begin/end events — even when span guards drop in
//! arbitrary orders or the bounded ring evicts the oldest half of a
//! trace. Drive random span schedules across several threads through a
//! traced [`exq_obs::MetricsSink`] and check the export with the
//! server's own JSON reader. Also round-trip arbitrary strings
//! (control characters included) through [`exq_obs::escape_json`] and
//! the reader, since every JSON document the workspace emits leans on
//! that escaper.

use exq_obs::{escape_json, MetricsSink};
use exq_serve::json::{self, Json};
use proptest::prelude::*;
use std::collections::HashMap;

const NAMES: [&str; 4] = ["join", "cube", "semijoin", "cube_algo"];

/// Interpret `plan` as a push/pop schedule of nested spans: each byte
/// either opens a span (name picked from a small pool) or closes the
/// innermost open one. Leftover spans close innermost-first, as real
/// scoped guards do.
fn run_plan(sink: &MetricsSink, plan: &[u8]) {
    let mut open = Vec::new();
    for &b in plan {
        if b % 3 != 0 && open.len() < 8 {
            open.push(sink.span(NAMES[(b as usize / 3) % NAMES.len()]));
        } else {
            open.pop();
        }
    }
    while open.pop().is_some() {}
}

/// Walk `traceEvents` keeping one stack per tid: every `E` must match
/// the innermost open `B` (same name and span id), and every stack must
/// be empty at the end.
fn assert_balanced(doc: &Json) {
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let mut stacks: HashMap<usize, Vec<(String, usize)>> = HashMap::new();
    for event in events {
        let name = event
            .get("name")
            .and_then(|v| v.as_str())
            .expect("event name")
            .to_owned();
        let phase = event.get("ph").and_then(|v| v.as_str()).expect("event ph");
        let tid = event
            .get("tid")
            .and_then(|v| v.as_usize())
            .expect("event tid");
        let span_id = event
            .get("args")
            .and_then(|a| a.get("span_id"))
            .and_then(|v| v.as_usize())
            .expect("event span_id");
        assert!(
            event.get("ts").and_then(|v| v.as_f64()).is_some(),
            "ts must be numeric"
        );
        match phase {
            "B" => stacks.entry(tid).or_default().push((name, span_id)),
            "E" => {
                let top = stacks
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("E without open B on tid {tid}"));
                assert_eq!(top, (name, span_id), "E must close the innermost B");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "unclosed B events on tid {tid}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn chrome_export_is_parseable_and_stack_balanced(
        plans in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40),
            1..4,
        ),
    ) {
        let sink = MetricsSink::recording();
        sink.enable_tracing(4096);
        sink.set_trace(7);
        std::thread::scope(|scope| {
            for plan in &plans {
                scope.spawn(|| run_plan(&sink, plan));
            }
        });
        let text = sink.trace_chrome_json().expect("tracing is armed");
        let doc = json::parse(text.as_bytes()).expect("export must parse");
        assert_balanced(&doc);
        prop_assert!(
            doc.get("metadata")
                .and_then(|m| m.get("dropped_events"))
                .and_then(|v| v.as_usize())
                .is_some()
        );
    }

    #[test]
    fn overflowing_ring_still_exports_balanced_events(
        plan in proptest::collection::vec(any::<u8>(), 32..160),
        capacity in 2usize..24,
    ) {
        // A tiny ring evicts begin events out from under their ends;
        // the exporter must drop the orphans rather than emit them.
        let sink = MetricsSink::recording();
        sink.enable_tracing(capacity);
        sink.set_trace(1);
        run_plan(&sink, &plan);
        let text = sink.trace_chrome_json().expect("tracing is armed");
        let doc = json::parse(text.as_bytes()).expect("export must parse");
        assert_balanced(&doc);
    }

    #[test]
    fn escape_json_round_trips_through_the_reader(
        chars in proptest::collection::vec(any::<char>(), 0..80),
    ) {
        let original: String = chars.into_iter().collect();
        let doc = format!("{{\"s\": \"{}\"}}", escape_json(&original));
        let parsed = json::parse(doc.as_bytes()).expect("escaped string must parse");
        prop_assert_eq!(
            parsed.get("s").and_then(|v| v.as_str()),
            Some(original.as_str())
        );
    }
}
