//! The dataset catalog: named databases with pre-built intermediates.
//!
//! A server process loads each dataset **once** at startup — schema,
//! CSVs, semijoin reduction, universal relation — and every request
//! against it borrows the shared [`PreparedDb`] through an `Arc`. This
//! is the amortization the paper's own prototype got from a resident
//! SQL Server instance (§6): the join work that dominates a cold
//! one-shot `explain` disappears from the request path entirely.
//!
//! Datasets are **epoch-versioned**: appending rows produces a *new*
//! [`PreparedDb`] (maintained incrementally from the old one) and bumps
//! a monotone epoch counter. Readers take an atomic
//! [`Dataset::snapshot`] of `(Arc<PreparedDb>, epoch)` once per request
//! and never see a half-applied batch; requests that started on the old
//! epoch keep its intermediates alive through their `Arc` while new
//! requests see the new epoch. The epoch is part of the response-cache
//! key, so a cached answer can never leak across an append.

use exq_core::prepared::PreparedDb;
use exq_obs::escape_json;
use exq_relstore::{csv, parse, AppendBatch, Database, ExecConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// One named dataset: immutable identity plus epoch-versioned state.
pub struct Dataset {
    /// Catalog name (URL-visible).
    pub name: String,
    /// Current intermediates and epoch. Appends hold the write lock for
    /// the whole delta maintenance (serializing appends per dataset);
    /// readers only clone the `Arc` out, so request handlers never block
    /// on each other.
    state: RwLock<(Arc<PreparedDb>, u64)>,
    /// Load provenance ("loaded N rows into Rel", …).
    pub notes: Vec<String>,
}

impl Dataset {
    /// Wrap freshly built intermediates as epoch 0.
    pub fn new(name: impl Into<String>, prepared: PreparedDb, notes: Vec<String>) -> Dataset {
        Dataset {
            name: name.into(),
            state: RwLock::new((Arc::new(prepared), 0)),
            notes,
        }
    }

    /// The current intermediates and epoch, read atomically. Handlers
    /// call this once per request so every step of the request (schema
    /// resolution, cache key, pipeline) sees one consistent epoch.
    pub fn snapshot(&self) -> (Arc<PreparedDb>, u64) {
        let guard = self.state.read().expect("dataset state poisoned");
        (Arc::clone(&guard.0), guard.1)
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.state.read().expect("dataset state poisoned").1
    }

    /// Append `batch` (relation name → rows), maintaining the universal
    /// relation and semijoin reduction incrementally, and bump the
    /// epoch. All-or-nothing: on any error the current epoch is
    /// untouched. Returns `(new_epoch, rows_appended)` and records
    /// `ingest.rows_appended` / `ingest.epoch_bumps` on `exec`'s sink.
    pub fn append(&self, batch: AppendBatch, exec: &ExecConfig) -> Result<(u64, usize), String> {
        let mut guard = self.state.write().expect("dataset state poisoned");
        let (next, appended) = guard
            .0
            .append_with(batch, exec)
            .map_err(|e| e.to_string())?;
        let sink = exec.metrics();
        sink.add("ingest.rows_appended", appended as u64);
        sink.incr("ingest.epoch_bumps");
        *guard = (Arc::new(next), guard.1 + 1);
        Ok((guard.1, appended))
    }
}

/// A catalog of datasets, keyed by name. The name → dataset map is
/// built once before the server starts accepting and immutable
/// afterwards, so handlers resolve names without locks; the mutable,
/// epoch-versioned part lives inside each [`Dataset`].
#[derive(Default)]
pub struct Catalog {
    datasets: BTreeMap<String, Arc<Dataset>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register an already-built database (e.g. from the datagen
    /// generators), preparing its intermediates on `exec`.
    pub fn insert_database(
        &mut self,
        name: &str,
        db: Arc<Database>,
        exec: &ExecConfig,
    ) -> Result<(), String> {
        if self.datasets.contains_key(name) {
            return Err(format!("duplicate dataset name `{name}`"));
        }
        let notes = vec![format!(
            "{}: {} relations, {} tuples",
            name,
            db.schema().relation_count(),
            db.total_tuples()
        )];
        let prepared = PreparedDb::build_with(db, exec);
        self.datasets.insert(
            name.to_string(),
            Arc::new(Dataset::new(name, prepared, notes)),
        );
        Ok(())
    }

    /// Load a dataset from a directory holding `schema.exq` (or exactly
    /// one `*.exq` file) plus one `<Relation>.csv` per relation, then
    /// prepare its intermediates on `exec`.
    pub fn load_dir(&mut self, name: &str, dir: &Path, exec: &ExecConfig) -> Result<(), String> {
        if self.datasets.contains_key(name) {
            return Err(format!("duplicate dataset name `{name}`"));
        }
        let schema_path = find_schema(dir)?;
        let schema_text = std::fs::read_to_string(&schema_path)
            .map_err(|e| format!("{}: {e}", schema_path.display()))?;
        let schema = parse::parse_schema(&schema_text)
            .map_err(|e| format!("{}: {e}", schema_path.display()))?;
        let mut notes = Vec::new();
        let mut db = Database::new(schema);
        for rel_idx in 0..db.schema().relation_count() {
            let rel = db.schema().relation(rel_idx).name.clone();
            let path = dir.join(format!("{rel}.csv"));
            let file =
                std::fs::File::open(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let n = csv::load_relation(&mut db, &rel, std::io::BufReader::new(file))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            notes.push(format!("loaded {n} rows into {rel}"));
        }
        db.validate().map_err(|e| e.to_string())?;
        let prepared = PreparedDb::build_with(Arc::new(db), exec);
        self.datasets.insert(
            name.to_string(),
            Arc::new(Dataset::new(name, prepared, notes)),
        );
        Ok(())
    }

    /// Look up a dataset by name.
    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.datasets.get(name).cloned()
    }

    /// Dataset names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.datasets.keys().map(String::as_str).collect()
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// The `GET /v1/datasets` document: per-dataset relation/tuple
    /// counts, how many tuples survive the semijoin reduction, and the
    /// current epoch.
    pub fn datasets_doc(&self) -> String {
        let mut out = String::from("{\n  \"datasets\": [\n");
        let n = self.datasets.len();
        for (i, ds) in self.datasets.values().enumerate() {
            let sep = if i + 1 == n { "" } else { "," };
            let (prepared, epoch) = ds.snapshot();
            let db = prepared.db();
            let _ = writeln!(
                out,
                "    {{ \"name\": \"{}\", \"relations\": {}, \"tuples\": {}, \"surviving_tuples\": {}, \"epoch\": {} }}{sep}",
                escape_json(&ds.name),
                db.schema().relation_count(),
                db.total_tuples(),
                prepared.surviving_tuples(),
                epoch,
            );
        }
        out.push_str("  ]\n}");
        out
    }
}

fn find_schema(dir: &Path) -> Result<std::path::PathBuf, String> {
    let preferred = dir.join("schema.exq");
    if preferred.is_file() {
        return Ok(preferred);
    }
    let mut candidates: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "exq"))
        .collect();
    candidates.sort();
    match candidates.as_slice() {
        [one] => Ok(one.clone()),
        [] => Err(format!("{}: no .exq schema file", dir.display())),
        many => Err(format!(
            "{}: {} .exq files — name one `schema.exq`",
            dir.display(),
            many.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::{SchemaBuilder, ValueType as T};

    fn tiny_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("g", T::Str)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R", vec![1.into(), "a".into()]).unwrap();
        db.insert("R", vec![2.into(), "b".into()]).unwrap();
        db
    }

    #[test]
    fn insert_and_list() {
        let mut catalog = Catalog::new();
        catalog
            .insert_database("tiny", Arc::new(tiny_db()), &ExecConfig::sequential())
            .unwrap();
        assert_eq!(catalog.names(), vec!["tiny"]);
        assert!(catalog.get("tiny").is_some());
        assert!(catalog.get("absent").is_none());
        let doc = catalog.datasets_doc();
        assert!(doc.contains("\"name\": \"tiny\""), "{doc}");
        assert!(doc.contains("\"tuples\": 2"), "{doc}");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut catalog = Catalog::new();
        let exec = ExecConfig::sequential();
        catalog
            .insert_database("tiny", Arc::new(tiny_db()), &exec)
            .unwrap();
        assert!(catalog
            .insert_database("tiny", Arc::new(tiny_db()), &exec)
            .is_err());
    }

    #[test]
    fn load_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("exq-catalog-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("schema.exq"), "relation R(id: int key, g: str)\n").unwrap();
        std::fs::write(dir.join("R.csv"), "id,g\n1,a\n2,b\n3,a\n").unwrap();
        let mut catalog = Catalog::new();
        catalog
            .load_dir("disk", &dir, &ExecConfig::sequential())
            .unwrap();
        let ds = catalog.get("disk").unwrap();
        assert_eq!(ds.snapshot().0.db().total_tuples(), 3);
        assert_eq!(ds.epoch(), 0);
        assert_eq!(ds.notes, vec!["loaded 3 rows into R"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_bumps_epoch_and_preserves_old_snapshot() {
        let mut catalog = Catalog::new();
        let exec = ExecConfig::sequential();
        catalog
            .insert_database("tiny", Arc::new(tiny_db()), &exec)
            .unwrap();
        let ds = catalog.get("tiny").unwrap();
        let (old_prepared, old_epoch) = ds.snapshot();
        assert_eq!(old_epoch, 0);

        let batch = vec![("R".to_string(), vec![vec![3.into(), "c".into()]])];
        let (epoch, appended) = ds.append(batch, &exec).unwrap();
        assert_eq!((epoch, appended), (1, 1));
        assert_eq!(ds.epoch(), 1);
        assert_eq!(ds.snapshot().0.db().total_tuples(), 3);
        // The pre-append snapshot is untouched: in-flight requests on the
        // old epoch keep reading consistent data.
        assert_eq!(old_prepared.db().total_tuples(), 2);

        // A failing append (duplicate primary key) leaves the epoch alone.
        let dup = vec![("R".to_string(), vec![vec![1.into(), "x".into()]])];
        assert!(ds.append(dup, &exec).is_err());
        assert_eq!(ds.epoch(), 1);
        assert_eq!(ds.snapshot().0.db().total_tuples(), 3);
    }

    #[test]
    fn load_dir_missing_schema_errors() {
        let dir = std::env::temp_dir().join(format!("exq-catalog-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = Catalog::new()
            .load_dir("x", &dir, &ExecConfig::sequential())
            .unwrap_err();
        assert!(err.contains("no .exq schema"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
