//! The dataset catalog: named databases with pre-built intermediates.
//!
//! A server process loads each dataset **once** at startup — schema,
//! CSVs, semijoin reduction, universal relation — and every request
//! against it borrows the shared [`PreparedDb`] through an `Arc`. This
//! is the amortization the paper's own prototype got from a resident
//! SQL Server instance (§6): the join work that dominates a cold
//! one-shot `explain` disappears from the request path entirely.

use exq_core::prepared::PreparedDb;
use exq_obs::escape_json;
use exq_relstore::{csv, parse, Database, ExecConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// One named, prepared dataset.
pub struct Dataset {
    /// Catalog name (URL-visible).
    pub name: String,
    /// The database plus its shared intermediates.
    pub prepared: PreparedDb,
    /// Load provenance ("loaded N rows into Rel", …).
    pub notes: Vec<String>,
}

/// A catalog of datasets, keyed by name. Built once before the server
/// starts accepting; immutable afterwards, so handlers read it without
/// locks.
#[derive(Default)]
pub struct Catalog {
    datasets: BTreeMap<String, Arc<Dataset>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register an already-built database (e.g. from the datagen
    /// generators), preparing its intermediates on `exec`.
    pub fn insert_database(
        &mut self,
        name: &str,
        db: Arc<Database>,
        exec: &ExecConfig,
    ) -> Result<(), String> {
        if self.datasets.contains_key(name) {
            return Err(format!("duplicate dataset name `{name}`"));
        }
        let notes = vec![format!(
            "{}: {} relations, {} tuples",
            name,
            db.schema().relation_count(),
            db.total_tuples()
        )];
        let prepared = PreparedDb::build_with(db, exec);
        self.datasets.insert(
            name.to_string(),
            Arc::new(Dataset {
                name: name.to_string(),
                prepared,
                notes,
            }),
        );
        Ok(())
    }

    /// Load a dataset from a directory holding `schema.exq` (or exactly
    /// one `*.exq` file) plus one `<Relation>.csv` per relation, then
    /// prepare its intermediates on `exec`.
    pub fn load_dir(&mut self, name: &str, dir: &Path, exec: &ExecConfig) -> Result<(), String> {
        if self.datasets.contains_key(name) {
            return Err(format!("duplicate dataset name `{name}`"));
        }
        let schema_path = find_schema(dir)?;
        let schema_text = std::fs::read_to_string(&schema_path)
            .map_err(|e| format!("{}: {e}", schema_path.display()))?;
        let schema = parse::parse_schema(&schema_text)
            .map_err(|e| format!("{}: {e}", schema_path.display()))?;
        let mut notes = Vec::new();
        let mut db = Database::new(schema);
        for rel_idx in 0..db.schema().relation_count() {
            let rel = db.schema().relation(rel_idx).name.clone();
            let path = dir.join(format!("{rel}.csv"));
            let file =
                std::fs::File::open(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let n = csv::load_relation(&mut db, &rel, std::io::BufReader::new(file))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            notes.push(format!("loaded {n} rows into {rel}"));
        }
        db.validate().map_err(|e| e.to_string())?;
        let prepared = PreparedDb::build_with(Arc::new(db), exec);
        self.datasets.insert(
            name.to_string(),
            Arc::new(Dataset {
                name: name.to_string(),
                prepared,
                notes,
            }),
        );
        Ok(())
    }

    /// Look up a dataset by name.
    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.datasets.get(name).cloned()
    }

    /// Dataset names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.datasets.keys().map(String::as_str).collect()
    }

    /// Number of datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// The `GET /v1/datasets` document: per-dataset relation/tuple
    /// counts and how many tuples survive the semijoin reduction.
    pub fn datasets_doc(&self) -> String {
        let mut out = String::from("{\n  \"datasets\": [\n");
        let n = self.datasets.len();
        for (i, ds) in self.datasets.values().enumerate() {
            let sep = if i + 1 == n { "" } else { "," };
            let db = ds.prepared.db();
            let _ = writeln!(
                out,
                "    {{ \"name\": \"{}\", \"relations\": {}, \"tuples\": {}, \"surviving_tuples\": {} }}{sep}",
                escape_json(&ds.name),
                db.schema().relation_count(),
                db.total_tuples(),
                ds.prepared.surviving_tuples(),
            );
        }
        out.push_str("  ]\n}");
        out
    }
}

fn find_schema(dir: &Path) -> Result<std::path::PathBuf, String> {
    let preferred = dir.join("schema.exq");
    if preferred.is_file() {
        return Ok(preferred);
    }
    let mut candidates: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "exq"))
        .collect();
    candidates.sort();
    match candidates.as_slice() {
        [one] => Ok(one.clone()),
        [] => Err(format!("{}: no .exq schema file", dir.display())),
        many => Err(format!(
            "{}: {} .exq files — name one `schema.exq`",
            dir.display(),
            many.len()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::{SchemaBuilder, ValueType as T};

    fn tiny_db() -> Database {
        let schema = SchemaBuilder::new()
            .relation("R", &[("id", T::Int), ("g", T::Str)], &["id"])
            .build()
            .unwrap();
        let mut db = Database::new(schema);
        db.insert("R", vec![1.into(), "a".into()]).unwrap();
        db.insert("R", vec![2.into(), "b".into()]).unwrap();
        db
    }

    #[test]
    fn insert_and_list() {
        let mut catalog = Catalog::new();
        catalog
            .insert_database("tiny", Arc::new(tiny_db()), &ExecConfig::sequential())
            .unwrap();
        assert_eq!(catalog.names(), vec!["tiny"]);
        assert!(catalog.get("tiny").is_some());
        assert!(catalog.get("absent").is_none());
        let doc = catalog.datasets_doc();
        assert!(doc.contains("\"name\": \"tiny\""), "{doc}");
        assert!(doc.contains("\"tuples\": 2"), "{doc}");
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut catalog = Catalog::new();
        let exec = ExecConfig::sequential();
        catalog
            .insert_database("tiny", Arc::new(tiny_db()), &exec)
            .unwrap();
        assert!(catalog
            .insert_database("tiny", Arc::new(tiny_db()), &exec)
            .is_err());
    }

    #[test]
    fn load_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("exq-catalog-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("schema.exq"), "relation R(id: int key, g: str)\n").unwrap();
        std::fs::write(dir.join("R.csv"), "id,g\n1,a\n2,b\n3,a\n").unwrap();
        let mut catalog = Catalog::new();
        catalog
            .load_dir("disk", &dir, &ExecConfig::sequential())
            .unwrap();
        let ds = catalog.get("disk").unwrap();
        assert_eq!(ds.prepared.db().total_tuples(), 3);
        assert_eq!(ds.notes, vec!["loaded 3 rows into R"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_missing_schema_errors() {
        let dir = std::env::temp_dir().join(format!("exq-catalog-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = Catalog::new()
            .load_dir("x", &dir, &ExecConfig::sequential())
            .unwrap_err();
        assert!(err.contains("no .exq schema"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
