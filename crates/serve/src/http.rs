//! A minimal, defensive HTTP/1.1 message layer.
//!
//! Hand-rolled on purpose: the workspace is offline and zero-dependency
//! (vendored-stub policy from PR 1), and the server only needs the small
//! request subset its endpoints speak — `GET`/`POST`, explicit
//! `Content-Length` bodies, no chunked transfer coding. The parser is
//! **incremental** (feed it a growing buffer until it yields a request)
//! and **total**: any byte sequence produces `Ok` or a typed error,
//! never a panic — the crate's proptest suite fuzzes it with arbitrary
//! bytes, truncations, oversized heads, and bad chunking.

use std::fmt;

/// Hard ceilings the parser enforces before trusting any length field.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes in the request line + headers (incl. final CRLF).
    pub max_head: usize,
    /// Maximum bytes in the request body (`Content-Length` is rejected
    /// above this *before* reading the body).
    pub max_body: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head: 8 * 1024,
            max_body: 1024 * 1024,
            max_headers: 64,
        }
    }
}

/// Why a request could not be parsed. Each variant maps to one HTTP
/// status so the connection handler can answer without guesswork.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line, header, or length field → 400.
    BadRequest(String),
    /// Head or header count over [`Limits`] → 431.
    HeadTooLarge,
    /// Declared body over [`Limits::max_body`] → 413.
    BodyTooLarge,
    /// `Transfer-Encoding` present (chunked bodies unsupported) → 501.
    UnsupportedTransferEncoding,
}

impl ParseError {
    /// The HTTP status this error should be answered with.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BadRequest(_) => 400,
            ParseError::HeadTooLarge => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::UnsupportedTransferEncoding => 501,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadRequest(why) => write!(f, "bad request: {why}"),
            ParseError::HeadTooLarge => write!(f, "request head too large"),
            ParseError::BodyTooLarge => write!(f, "request body too large"),
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "transfer codings are not supported; send Content-Length")
            }
        }
    }
}

/// A parsed request: method, path, lower-cased headers, raw body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (upper-case as sent).
    pub method: String,
    /// Request target as sent, query string included.
    pub path: String,
    /// Header name/value pairs; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Try to parse one request from the front of `buf`.
///
/// * `Ok(Some((request, consumed)))` — a complete request occupies
///   `buf[..consumed]`.
/// * `Ok(None)` — `buf` is a valid prefix; read more bytes and retry.
/// * `Err(_)` — the bytes can never become a valid request under
///   `limits`; answer with [`ParseError::status`] and close.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Option<(Request, usize)>, ParseError> {
    let head_end = match find_head_end(buf) {
        Some(end) if end <= limits.max_head => end,
        Some(_) => return Err(ParseError::HeadTooLarge),
        None if buf.len() > limits.max_head => return Err(ParseError::HeadTooLarge),
        None => return Ok(None),
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::BadRequest("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(ParseError::BadRequest(format!(
                "malformed request line `{}`",
                request_line.escape_default()
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::BadRequest(format!(
            "bad method `{}`",
            method.escape_default()
        )));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::BadRequest(format!(
            "unsupported version `{}`",
            version.escape_default()
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the blank line terminating the head
        }
        if headers.len() >= limits.max_headers {
            return Err(ParseError::HeadTooLarge);
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            ParseError::BadRequest(format!("bad header `{}`", line.escape_default()))
        })?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadRequest(format!(
                "bad header name `{}`",
                name.escape_default()
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    if request.header("transfer-encoding").is_some() {
        // Chunked (or any other) transfer coding: refuse rather than
        // misinterpret the body boundary.
        return Err(ParseError::UnsupportedTransferEncoding);
    }
    let body_len = match request.header("content-length") {
        None => 0,
        Some(v) => v.parse::<usize>().map_err(|_| {
            ParseError::BadRequest(format!("bad Content-Length `{}`", v.escape_default()))
        })?,
    };
    if body_len > limits.max_body {
        return Err(ParseError::BodyTooLarge);
    }
    let total = head_end
        .checked_add(body_len)
        .ok_or(ParseError::BodyTooLarge)?;
    if buf.len() < total {
        return Ok(None);
    }
    request.body = buf[head_end..total].to_vec();
    Ok(Some((request, total)))
}

/// Byte offset one past the `\r\n\r\n` terminating the head.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// A response ready for serialization. [`Response::to_bytes`] emits
/// `Connection: close` (the historical one-request-per-connection
/// policy); [`Response::to_bytes_with`] can emit `keep-alive` instead,
/// which the server uses when the *request* explicitly asked for
/// connection reuse (the router front and the batch CLI client do).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers, e.g. `Retry-After` on 503.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            extra_headers: Vec::new(),
        }
    }

    /// A plain-text response, typed for Prometheus text exposition
    /// format 0.0.4 (`GET /metrics` is the only text endpoint).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            extra_headers: Vec::new(),
        }
    }

    /// A JSON error document `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!(
                "{{\n  \"error\": \"{}\"\n}}\n",
                exq_obs::escape_json(message)
            ),
        )
    }

    /// Attach an extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize status line + headers + body with `Connection: close`.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with(false)
    }

    /// Serialize with an explicit connection policy: `keep_alive` emits
    /// `connection: keep-alive` so the peer knows the stream stays open
    /// for the next request; otherwise `connection: close`.
    pub fn to_bytes_with(&self, keep_alive: bool) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            _ => "Response",
        };
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut out = format!(
            "HTTP/1.1 {} {reason}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
            self.status,
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        for (name, value) in &self.extra_headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
        parse_request(bytes, &Limits::default())
    }

    #[test]
    fn parses_get() {
        let (req, used) = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert_eq!(used, 34);
    }

    #[test]
    fn parses_post_with_body_and_reports_consumed() {
        let raw = b"POST /v1/explain HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"extra";
        let (req, used) = parse(raw).unwrap().unwrap();
        assert_eq!(req.body, b"{\"a\"");
        assert_eq!(&raw[used..], b"extra");
    }

    #[test]
    fn incomplete_head_and_body_ask_for_more() {
        assert_eq!(parse(b"GET / HTT").unwrap(), None);
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\n12345").unwrap(),
            None
        );
    }

    #[test]
    fn rejects_chunked() {
        let err =
            parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n").unwrap_err();
        assert_eq!(err, ParseError::UnsupportedTransferEncoding);
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn rejects_oversized_head_even_unterminated() {
        let long = vec![b'A'; Limits::default().max_head + 1];
        assert_eq!(parse(&long).unwrap_err(), ParseError::HeadTooLarge);
    }

    #[test]
    fn rejects_oversized_declared_body_before_reading_it() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            Limits::default().max_body + 1
        );
        assert_eq!(parse(raw.as_bytes()).unwrap_err(), ParseError::BodyTooLarge);
    }

    #[test]
    fn rejects_garbage_lengths() {
        for bad in ["-1", "1e3", "99999999999999999999999999"] {
            let raw = format!("POST / HTTP/1.1\r\ncontent-length: {bad}\r\n\r\n");
            assert!(matches!(
                parse(raw.as_bytes()).unwrap_err(),
                ParseError::BadRequest(_)
            ));
        }
    }

    #[test]
    fn response_shape() {
        let bytes = Response::json(200, "{}").to_bytes();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let busy = Response::error(503, "busy").with_header("retry-after", "1");
        assert!(String::from_utf8(busy.to_bytes())
            .unwrap()
            .contains("retry-after: 1\r\n"));
    }

    #[test]
    fn connection_policy_is_explicit() {
        let response = Response::json(200, "{}");
        let close = String::from_utf8(response.to_bytes()).unwrap();
        assert!(close.contains("connection: close\r\n"));
        let close = String::from_utf8(response.to_bytes_with(false)).unwrap();
        assert!(close.contains("connection: close\r\n"));
        let keep = String::from_utf8(response.to_bytes_with(true)).unwrap();
        assert!(keep.contains("connection: keep-alive\r\n"));
        assert!(!keep.contains("connection: close\r\n"));
    }
}
