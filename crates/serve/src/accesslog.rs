//! Structured access log: one JSON line per served request.
//!
//! Both tiers write the same shape — workers tag lines with their shard
//! id, the front with the shard that answered the proxied request — so
//! a fleet's logs concatenate into one stream that standard tooling
//! (`jq`, log shippers) can group by tenant, endpoint, or trace id:
//!
//! ```json
//! {"ts_bucket": 29473921, "tenant": "acme", "shard": 0, "endpoint": "explain",
//!  "status": 200, "latency_bucket": 1048575, "trace_id": 7, "cache": "miss"}
//! ```
//!
//! Two fields are wall-clock-derived and therefore deterministic-mode
//! hazards: `ts_bucket` (minutes since the Unix epoch — deliberately
//! coarse, an access log is not a tracing system) and `latency_bucket`
//! (the request latency's log-bucket upper bound, the same bucketing as
//! the latency histograms). In deterministic mode (tests, the bench
//! harness) both are written as 0 so log bytes are reproducible; every
//! other field is deterministic already.
//!
//! The writer is line-buffered behind a mutex: one `write_all` per
//! request, so concurrent workers never interleave partial lines.

use exq_obs::{bucket_index, bucket_upper, escape_json};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One request's loggable facts, assembled by the serving loop.
#[derive(Debug, Clone, Copy)]
pub struct AccessEntry<'a> {
    /// Value of the request's `X-Exq-Tenant` header, if any.
    pub tenant: Option<&'a str>,
    /// Shard that answered: the worker's own id, or (on the front) the
    /// shard the request was proxied to. `None` renders as `null`.
    pub shard: Option<u64>,
    /// Routed endpoint name (worker) or request path (front).
    pub endpoint: &'a str,
    /// HTTP status of the response.
    pub status: u16,
    /// Wall-clock latency in nanoseconds; logged as its log-bucket
    /// upper bound, never raw.
    pub latency_ns: u64,
    /// The request's trace id.
    pub trace_id: u64,
    /// Cache outcome: `"hit"`, `"miss"`, or `"-"`.
    pub cache: &'a str,
}

struct LogInner {
    out: Mutex<Box<dyn Write + Send>>,
    deterministic: bool,
}

/// A cheap, cloneable handle to one access-log destination. The
/// disabled log (the default) makes [`AccessLog::record`] a no-op.
#[derive(Clone, Default)]
pub struct AccessLog(Option<Arc<LogInner>>);

impl AccessLog {
    /// A log that writes nothing.
    pub fn disabled() -> AccessLog {
        AccessLog(None)
    }

    /// Open the destination: `-` is standard output, anything else is a
    /// file created (or appended to) at that path. With `deterministic`
    /// set, wall-clock-derived fields are written as 0.
    pub fn open(path: &Path, deterministic: bool) -> std::io::Result<AccessLog> {
        let out: Box<dyn Write + Send> = if path.as_os_str() == "-" {
            Box::new(std::io::stdout())
        } else {
            Box::new(std::fs::OpenOptions::new().create(true).append(true).open(path)?)
        };
        Ok(AccessLog(Some(Arc::new(LogInner {
            out: Mutex::new(out),
            deterministic,
        }))))
    }

    /// Whether this log writes anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Append one line for `entry`. Best-effort: an I/O error costs the
    /// line, never the request.
    pub fn record(&self, entry: &AccessEntry<'_>) {
        let Some(inner) = &self.0 else {
            return;
        };
        let (ts_bucket, latency_bucket) = if inner.deterministic {
            (0, 0)
        } else {
            (minute_bucket(), bucket_upper(bucket_index(entry.latency_ns)))
        };
        let tenant = match entry.tenant {
            Some(tenant) => format!("\"{}\"", escape_json(tenant)),
            None => "null".to_string(),
        };
        let shard = match entry.shard {
            Some(shard) => shard.to_string(),
            None => "null".to_string(),
        };
        let line = format!(
            "{{\"ts_bucket\": {ts_bucket}, \"tenant\": {tenant}, \"shard\": {shard}, \
             \"endpoint\": \"{}\", \"status\": {}, \"latency_bucket\": {latency_bucket}, \
             \"trace_id\": {}, \"cache\": \"{}\"}}\n",
            escape_json(entry.endpoint),
            entry.status,
            entry.trace_id,
            escape_json(entry.cache),
        );
        let mut out = inner.out.lock().expect("access log poisoned");
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Minutes since the Unix epoch — the log's coarse timestamp bucket.
fn minute_bucket() -> u64 {
    // exq-lint: allow(L002): access-log timestamp bucket, never reaches explanation results
    let since_epoch = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH);
    since_epoch.map(|d| d.as_secs() / 60).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("exq-accesslog-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("access.log")
    }

    fn entry() -> AccessEntry<'static> {
        AccessEntry {
            tenant: Some("acme \"inc\""),
            shard: Some(1),
            endpoint: "explain",
            status: 200,
            latency_ns: 1_234_567,
            trace_id: 42,
            cache: "miss",
        }
    }

    #[test]
    fn deterministic_mode_produces_stable_bytes() {
        let path = temp_path("deterministic");
        let log = AccessLog::open(&path, true).unwrap();
        assert!(log.is_enabled());
        log.record(&entry());
        log.record(&AccessEntry {
            tenant: None,
            shard: None,
            endpoint: "/v1/datasets",
            status: 503,
            latency_ns: 5,
            trace_id: 43,
            cache: "-",
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            concat!(
                "{\"ts_bucket\": 0, \"tenant\": \"acme \\\"inc\\\"\", \"shard\": 1, ",
                "\"endpoint\": \"explain\", \"status\": 200, \"latency_bucket\": 0, ",
                "\"trace_id\": 42, \"cache\": \"miss\"}\n",
                "{\"ts_bucket\": 0, \"tenant\": null, \"shard\": null, ",
                "\"endpoint\": \"/v1/datasets\", \"status\": 503, \"latency_bucket\": 0, ",
                "\"trace_id\": 43, \"cache\": \"-\"}\n",
            )
        );
        // Every line is parseable JSON.
        for line in text.lines() {
            crate::json::parse(line.as_bytes()).unwrap();
        }
    }

    #[test]
    fn live_mode_buckets_latency_and_timestamps() {
        let path = temp_path("live");
        let log = AccessLog::open(&path, false).unwrap();
        log.record(&entry());
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = crate::json::parse(text.lines().next().unwrap().as_bytes()).unwrap();
        let bucket = doc
            .get("latency_bucket")
            .and_then(|v| v.as_usize())
            .unwrap() as u64;
        // The bucket bound is the histogram bucketing of the latency.
        assert_eq!(bucket, bucket_upper(bucket_index(1_234_567)));
        assert!(doc.get("ts_bucket").and_then(|v| v.as_usize()).unwrap() > 0);
    }

    #[test]
    fn disabled_log_is_a_no_op() {
        let log = AccessLog::disabled();
        assert!(!log.is_enabled());
        log.record(&entry());
    }
}
