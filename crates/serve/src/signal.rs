//! SIGINT/SIGTERM → a global flag, with no libc dependency.
//!
//! The handler does exactly one async-signal-safe thing: a relaxed
//! atomic store. The serving loop (see `exq serve` in the binary crate)
//! polls [`requested`] and triggers the cooperative shutdown path —
//! drain in-flight requests, join workers, flush the final metrics
//! snapshot — from ordinary thread context, never from the handler.
//!
//! On non-Unix targets [`install`] is a no-op and shutdown happens only
//! via [`request`] (used by tests) or process exit.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal (or [`request`]) has been seen.
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trip the shutdown flag programmatically (what the signal handler
/// does; exposed for tests and embedders).
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Reset the flag — test helper so sequential tests can each observe a
/// fresh shutdown cycle.
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

/// Install handlers for SIGINT and SIGTERM that trip the flag.
#[cfg(unix)]
pub fn install() {
    // The workspace is zero-dependency, so `libc` is out; declare the
    // two C symbols we need. `signal` is in every Unix libc, and the
    // handler body is a single atomic store (async-signal-safe).
    #[allow(unsafe_code)]
    {
        extern "C" fn on_signal(_signum: i32) {
            SHUTDOWN.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// No-op off Unix.
#[cfg(not(unix))]
pub fn install() {}

/// Send SIGTERM to another process — how the router front propagates
/// its own shutdown to worker processes so they drain cooperatively.
/// Same zero-libc treatment as [`install`]: declare the one C symbol
/// needed. Errors (dead pid, permission) are ignored; the supervisor's
/// `wait` loop is what actually observes worker exit.
#[cfg(unix)]
pub fn terminate(pid: u32) {
    #[allow(unsafe_code)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        const SIGTERM: i32 = 15;
        if let Ok(pid) = i32::try_from(pid) {
            unsafe {
                kill(pid, SIGTERM);
            }
        }
    }
}

/// No-op off Unix.
#[cfg(not(unix))]
pub fn terminate(_pid: u32) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reset_toggle_the_flag() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
