//! A sharded, byte-budgeted LRU cache of rendered response documents.
//!
//! Keys are the full canonical strings from [`crate::key`] — the hash
//! ([`crate::key::fnv1a`]) only selects a shard, so two distinct
//! requests can never alias an entry. Values are `Arc<String>` response
//! bodies: a hit hands back the exact bytes of the first rendering,
//! which is what makes cached responses bit-identical across clients.
//!
//! Each shard is an independent `Mutex` around a hash map plus a
//! recency index (a `BTreeMap` keyed by a monotonically increasing
//! touch sequence), so concurrent requests for different shards never
//! contend. Eviction walks the oldest sequence numbers until the shard
//! is back under its byte budget.
//!
//! Hits, misses, insertions, and evictions are recorded on the server's
//! [`exq_obs::MetricsSink`] as `server.cache.*` counters. For a given
//! *sequence* of requests the counts are deterministic; under
//! concurrent identical misses both requests count as misses (there is
//! no single-flight collapse — the second rendering is wasted work, not
//! an error).

use exq_obs::MetricsSink;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-entry bookkeeping.
struct Entry {
    doc: std::sync::Arc<String>,
    seq: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<String, Entry>,
    /// Touch sequence → key, oldest first. One entry per live key.
    recency: BTreeMap<u64, String>,
    /// Sum of key + value bytes currently held.
    bytes: usize,
}

/// A sharded LRU of rendered documents with a global byte budget.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_budget: usize,
    seq: AtomicU64,
    sink: MetricsSink,
}

/// Entry overhead charged against the budget beyond key/value bytes.
const ENTRY_OVERHEAD: usize = 64;

impl ResultCache {
    /// A cache with `budget_bytes` total capacity split over `shards`
    /// locks. A zero budget disables caching (every lookup misses).
    pub fn new(budget_bytes: usize, shards: usize, sink: MetricsSink) -> ResultCache {
        let shards = shards.max(1);
        ResultCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_budget: budget_bytes / shards,
            seq: AtomicU64::new(0),
            sink,
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let idx = (crate::key::fnv1a(key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Look up a document, refreshing its recency on a hit. Records
    /// `server.cache.hits` / `server.cache.misses`.
    pub fn get(&self, key: &str) -> Option<std::sync::Arc<String>> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.entries.get(key) {
            Some(entry) => {
                let doc = std::sync::Arc::clone(&entry.doc);
                let old = entry.seq;
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                shard.recency.remove(&old);
                shard.recency.insert(seq, key.to_string());
                if let Some(e) = shard.entries.get_mut(key) {
                    e.seq = seq;
                }
                drop(shard);
                self.sink.incr("server.cache.hits");
                Some(doc)
            }
            None => {
                drop(shard);
                self.sink.incr("server.cache.misses");
                None
            }
        }
    }

    /// Insert a rendered document, evicting least-recently-used entries
    /// until the shard fits its budget. Entries larger than the whole
    /// shard budget are not cached at all.
    pub fn insert(&self, key: &str, doc: std::sync::Arc<String>) {
        let Some(evicted) = self.put(key, doc) else {
            return;
        };
        self.sink.incr("server.cache.inserts");
        self.sink.add("server.cache.evictions", evicted);
    }

    /// Store an entry, returning the number of evictions it caused, or
    /// `None` if the entry was too large to cache. Shared by [`insert`]
    /// (cold path, counts as an insert) and [`load`] (warm start,
    /// counts as a warm load) so the budget/LRU mechanics stay in one
    /// place.
    ///
    /// [`insert`]: ResultCache::insert
    /// [`load`]: ResultCache::load
    fn put(&self, key: &str, doc: std::sync::Arc<String>) -> Option<u64> {
        let cost = key.len() + doc.len() + ENTRY_OVERHEAD;
        if cost > self.per_shard_budget {
            return None;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut evicted = 0u64;
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if let Some(old) = shard.entries.remove(key) {
            // Same key re-rendered (e.g. two racing misses): replace.
            shard.recency.remove(&old.seq);
            shard.bytes -= key.len() + old.doc.len() + ENTRY_OVERHEAD;
        }
        shard.bytes += cost;
        shard.entries.insert(key.to_string(), Entry { doc, seq });
        shard.recency.insert(seq, key.to_string());
        while shard.bytes > self.per_shard_budget {
            let Some((&oldest, _)) = shard.recency.iter().next() else {
                break;
            };
            let victim = shard.recency.remove(&oldest).expect("recency desync");
            if let Some(old) = shard.entries.remove(&victim) {
                shard.bytes -= victim.len() + old.doc.len() + ENTRY_OVERHEAD;
            }
            evicted += 1;
        }
        Some(evicted)
    }

    /// Bulk-load persisted entries at boot (warm start). Entries flow
    /// through the same budget/LRU machinery as [`ResultCache::insert`]
    /// but are booked under `server.cache.warm_loaded` rather than the
    /// insert/eviction counters, so a warm boot is distinguishable from
    /// organic traffic in the snapshot. Returns how many entries were
    /// actually stored.
    pub fn load(&self, entries: impl IntoIterator<Item = (String, String)>) -> u64 {
        let mut loaded = 0u64;
        for (key, doc) in entries {
            if self.put(&key, std::sync::Arc::new(doc)).is_some() {
                loaded += 1;
            }
        }
        self.sink.add("server.cache.warm_loaded", loaded);
        loaded
    }

    /// Every live entry as `(key, document)` pairs in sorted-key order —
    /// the deterministic order the warm-start snapshot is written in.
    pub fn entries_sorted(&self) -> Vec<(String, std::sync::Arc<String>)> {
        let mut all: Vec<(String, std::sync::Arc<String>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .entries
                    .iter()
                    .map(|(k, e)| (k.clone(), std::sync::Arc::clone(&e.doc)))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Number of live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cache(budget: usize, sink: &MetricsSink) -> ResultCache {
        // Single shard so eviction order is easy to reason about.
        ResultCache::new(budget, 1, sink.clone())
    }

    #[test]
    fn hit_miss_and_counters() {
        let sink = MetricsSink::recording();
        let c = cache(10_000, &sink);
        assert!(c.get("a").is_none());
        c.insert("a", Arc::new("doc-a".to_string()));
        assert_eq!(c.get("a").as_deref().map(String::as_str), Some("doc-a"));
        let snap = sink.snapshot();
        assert_eq!(snap.counter("server.cache.misses"), 1);
        assert_eq!(snap.counter("server.cache.hits"), 1);
        assert_eq!(snap.counter("server.cache.inserts"), 1);
        assert_eq!(snap.counter("server.cache.evictions"), 0);
    }

    #[test]
    fn lru_evicts_oldest_first_and_touch_refreshes() {
        let sink = MetricsSink::recording();
        // Budget fits two entries of cost ~(1 + 1 + 64) = 66 each.
        let c = cache(150, &sink);
        c.insert("a", Arc::new("1".to_string()));
        c.insert("b", Arc::new("2".to_string()));
        assert_eq!(c.len(), 2);
        // Touch `a` so `b` becomes the LRU victim.
        assert!(c.get("a").is_some());
        c.insert("c", Arc::new("3".to_string()));
        assert!(c.get("b").is_none(), "b should have been evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(sink.snapshot().counter("server.cache.evictions"), 1);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let sink = MetricsSink::recording();
        let c = cache(100, &sink);
        c.insert("big", Arc::new("x".repeat(200)));
        assert!(c.is_empty());
        assert_eq!(sink.snapshot().counter("server.cache.inserts"), 0);
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let sink = MetricsSink::recording();
        let c = cache(200, &sink);
        for _ in 0..50 {
            c.insert("k", Arc::new("payload".to_string()));
        }
        assert_eq!(c.len(), 1);
        assert_eq!(sink.snapshot().counter("server.cache.evictions"), 0);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let sink = MetricsSink::recording();
        let c = cache(0, &sink);
        c.insert("a", Arc::new("doc".to_string()));
        assert!(c.get("a").is_none());
    }

    #[test]
    fn warm_load_round_trips_through_entries_sorted() {
        let sink = MetricsSink::recording();
        let c = ResultCache::new(1 << 20, 4, sink.clone());
        c.insert("b", Arc::new("doc-b".to_string()));
        c.insert("a", Arc::new("doc-a".to_string()));
        let dumped: Vec<(String, String)> = c
            .entries_sorted()
            .into_iter()
            .map(|(k, d)| (k, d.as_str().to_string()))
            .collect();
        assert_eq!(
            dumped.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"],
            "entries_sorted must be key-ordered"
        );
        let warm = ResultCache::new(1 << 20, 4, sink.clone());
        assert_eq!(warm.load(dumped), 2);
        assert_eq!(warm.get("a").as_deref().map(String::as_str), Some("doc-a"));
        assert_eq!(warm.get("b").as_deref().map(String::as_str), Some("doc-b"));
        let snap = sink.snapshot();
        assert_eq!(snap.counter("server.cache.warm_loaded"), 2);
        // Warm loads are not inserts: only the two originals count.
        assert_eq!(snap.counter("server.cache.inserts"), 2);
    }

    #[test]
    fn warm_load_respects_the_byte_budget() {
        let sink = MetricsSink::recording();
        let c = cache(100, &sink);
        assert_eq!(c.load(vec![("big".to_string(), "x".repeat(200))]), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_cache_keeps_entries_reachable() {
        let sink = MetricsSink::recording();
        let c = ResultCache::new(1 << 20, 8, sink);
        for i in 0..100 {
            c.insert(&format!("key-{i}"), Arc::new(format!("doc-{i}")));
        }
        for i in 0..100 {
            assert_eq!(
                c.get(&format!("key-{i}")).as_deref().map(String::as_str),
                Some(format!("doc-{i}").as_str())
            );
        }
    }
}
