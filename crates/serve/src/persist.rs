//! Warm-start snapshots of the [`ResultCache`](crate::cache::ResultCache).
//!
//! A worker that restarts (rolling deploy, crash recovery under the
//! router supervisor) would otherwise boot with a cold cache and
//! stampede the expensive explain path. Instead the server dumps its
//! cache to disk at shutdown and reloads it at boot.
//!
//! Snapshot format (length-prefixed so keys and bodies can contain
//! anything, including newlines):
//!
//! ```text
//! exq-cache v1\n
//! <key-len> <doc-len>\n<key bytes><doc bytes>
//! <key-len> <doc-len>\n<key bytes><doc bytes>
//! ...
//! ```
//!
//! Records are written in sorted-key order, so the snapshot bytes are a
//! deterministic function of the cache contents. Keys are the canonical
//! strings from [`crate::key`] and therefore carry the dataset epoch
//! they were computed at; the *loader* does not interpret them — the
//! server filters entries against its booted catalog epochs before
//! calling [`ResultCache::load`](crate::cache::ResultCache::load), so a
//! snapshot from a previous life can never resurrect answers for data
//! the process no longer holds.
//!
//! Corruption policy: a snapshot is advisory. Any malformed byte makes
//! [`read_entries`] return an error; the caller logs and boots cold
//! rather than guessing at partial contents.

use std::io::{self, Read, Write};
use std::path::Path;

/// Magic first line of a snapshot file.
pub const MAGIC: &str = "exq-cache v1";

/// Largest single record (key + doc) [`read_entries`] accepts, a
/// corruption guard so a damaged length prefix cannot ask for a
/// multi-gigabyte allocation.
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// Write `entries` as a snapshot at `path`, atomically: the bytes go to
/// `<path>.tmp` first and are renamed into place, so a crash mid-dump
/// leaves either the old snapshot or none — never a torn file. Returns
/// the number of records written.
pub fn write_entries<K, D>(path: &Path, entries: &[(K, D)]) -> io::Result<u64>
where
    K: AsRef<str>,
    D: AsRef<str>,
{
    let mut bytes = Vec::with_capacity(64 + entries.len() * 256);
    bytes.extend_from_slice(MAGIC.as_bytes());
    bytes.push(b'\n');
    for (key, doc) in entries {
        let (key, doc) = (key.as_ref(), doc.as_ref());
        bytes.extend_from_slice(format!("{} {}\n", key.len(), doc.len()).as_bytes());
        bytes.extend_from_slice(key.as_bytes());
        bytes.extend_from_slice(doc.as_bytes());
    }
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(entries.len() as u64)
}

/// Read every record of the snapshot at `path`. Strict: a bad magic
/// line, malformed length prefix, truncated record, or non-UTF-8
/// payload is an `InvalidData` error — the caller treats the whole
/// snapshot as unusable and boots cold.
pub fn read_entries(path: &Path) -> io::Result<Vec<(String, String)>> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    let bad = |why: &str| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {why}"));
    let header_len = MAGIC.len() + 1;
    if bytes.len() < header_len || &bytes[..MAGIC.len()] != MAGIC.as_bytes() {
        return Err(bad("missing `exq-cache v1` magic"));
    }
    if bytes[MAGIC.len()] != b'\n' {
        return Err(bad("malformed magic line"));
    }
    let mut at = header_len;
    let mut entries = Vec::new();
    while at < bytes.len() {
        let line_end = bytes[at..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| bad("truncated length prefix"))?
            + at;
        let prefix = std::str::from_utf8(&bytes[at..line_end])
            .map_err(|_| bad("non-UTF-8 length prefix"))?;
        let (key_len, doc_len) = prefix
            .split_once(' ')
            .and_then(|(k, d)| Some((k.parse::<usize>().ok()?, d.parse::<usize>().ok()?)))
            .ok_or_else(|| bad("malformed length prefix"))?;
        if key_len.saturating_add(doc_len) > MAX_RECORD_BYTES {
            return Err(bad("record exceeds the size guard"));
        }
        let key_start = line_end + 1;
        let doc_start = key_start
            .checked_add(key_len)
            .ok_or_else(|| bad("length overflow"))?;
        let end = doc_start
            .checked_add(doc_len)
            .ok_or_else(|| bad("length overflow"))?;
        if end > bytes.len() {
            return Err(bad("truncated record"));
        }
        let key = std::str::from_utf8(&bytes[key_start..doc_start])
            .map_err(|_| bad("non-UTF-8 key"))?
            .to_string();
        let doc = std::str::from_utf8(&bytes[doc_start..end])
            .map_err(|_| bad("non-UTF-8 document"))?
            .to_string();
        entries.push((key, doc));
        at = end;
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("exq-persist-test-{}-{name}", process_id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("cache.snapshot")
    }

    fn process_id() -> u32 {
        std::process::id()
    }

    #[test]
    fn round_trips_entries_with_delimiters_and_newlines() {
        let path = temp_path("roundtrip");
        let entries = vec![
            (
                "k;with\\delims".to_string(),
                "{\n \"a\": 1\n}\n".to_string(),
            ),
            ("plain".to_string(), String::new()),
        ];
        assert_eq!(write_entries(&path, &entries).unwrap(), 2);
        assert_eq!(read_entries(&path).unwrap(), entries);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let path = temp_path("empty");
        let entries: Vec<(String, String)> = Vec::new();
        assert_eq!(write_entries(&path, &entries).unwrap(), 0);
        assert!(read_entries(&path).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = temp_path("badmagic");
        std::fs::write(&path, "not a snapshot\n").unwrap();
        assert!(read_entries(&path).is_err());
    }

    #[test]
    fn truncated_record_is_rejected() {
        let path = temp_path("truncated");
        std::fs::write(&path, format!("{MAGIC}\n5 100\nabcde short")).unwrap();
        assert!(read_entries(&path).is_err());
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let path = temp_path("absurd");
        std::fs::write(&path, format!("{MAGIC}\n99999999999 1\nx")).unwrap();
        assert!(read_entries(&path).is_err());
    }
}
