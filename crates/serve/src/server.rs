//! The HTTP server: accept loop, bounded worker pool, request routing.
//!
//! Threading model: one nonblocking accept thread pushes connections
//! into a bounded queue; `threads` workers pop and serve a connection
//! to completion — one request by default, or a whole keep-alive
//! session when the client asks for one (so a persistent connection
//! pins a worker thread: peers that hold many open connections, like
//! the router front, must cap them at the worker's thread count).
//! When the queue is full the accept thread answers
//! `503` + `Retry-After` immediately instead of letting latency grow
//! unbounded (load-shedding backpressure). Shutdown is cooperative: a
//! flag stops the accept loop, workers drain the queue and finish
//! in-flight requests, and [`Handle::shutdown`] joins everything and
//! returns the final metrics snapshot for the caller to flush.
//!
//! Request handlers run the explanation pipeline **sequentially** per
//! request — parallelism comes from serving many requests at once, and
//! results are bit-identical at every thread count anyway (the PR 2
//! contract), which is what makes the response cache sound.

use crate::accesslog::{AccessEntry, AccessLog};
use crate::cache::ResultCache;
use crate::catalog::{Catalog, Dataset};
use crate::flight::FlightRecorder;
use crate::retain::TraceRetention;
use crate::http::{Limits, Request, Response};
use crate::json::Json;
use crate::key::{cache_key, CanonicalRequest};
use crate::pump;
use exq_core::jsonout;
use exq_core::prelude::*;
use exq_core::qparse;
use exq_core::report::ReportConfig;
use exq_obs::{MetricsSink, Snapshot};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every `server.*` counter the server records, in one place so they
/// can be pre-registered at startup (a counter that never fires still
/// appears in snapshots at 0) and catalogued in `assets/obs/counters.txt`.
pub const SERVER_COUNTERS: &[&str] = &[
    "server.requests",
    "server.responses.ok",
    "server.responses.client_error",
    "server.responses.server_error",
    "server.rejected_busy",
    "server.cache.hits",
    "server.cache.misses",
    "server.cache.inserts",
    "server.cache.evictions",
    "server.explain.runs",
    "server.report.runs",
    "server.append.runs",
    "server.cache.warm_loaded",
    "server.trace.retained",
];

/// Ingestion counters recorded on the append path. `rows_appended` and
/// `epoch_bumps` fire in [`Dataset::append`]; the `delta.*` pair fires
/// inside `exq_relstore`'s incremental join maintenance through the
/// append's `ExecConfig` sink. Pre-registered alongside
/// [`SERVER_COUNTERS`] so an idle server exposes them at 0.
pub const INGEST_COUNTERS: &[&str] = &[
    "ingest.rows_appended",
    "ingest.epoch_bumps",
    "ingest.delta.tuples",
    "ingest.delta.full_rebuilds",
];

/// Largest number of rows one append request may carry. Bounds the work
/// a single `POST .../rows` can queue behind a dataset's write lock;
/// bigger loads should go through repeated batches (the CLI's
/// `--batch` flag does exactly that).
pub const MAX_APPEND_ROWS: usize = 100_000;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving requests.
    pub threads: usize,
    /// Response-cache budget in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Pending-connection queue depth; beyond it new connections get
    /// `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Per-request wall-clock budget for *reading* the request.
    pub request_timeout: Duration,
    /// HTTP parser limits (head/body size, header count).
    pub limits: Limits,
    /// Flight-recorder depth: how many recent request summaries
    /// `GET /v1/debug/requests` retains.
    pub flight_capacity: usize,
    /// Which router shard this process serves, if any. Surfaced by
    /// `GET /v1/health` so the front (and CI) can verify the topology.
    pub shard_id: Option<u64>,
    /// Warm-start snapshot path. When set, the server reloads the
    /// [`ResultCache`] from this file at boot (dropping entries whose
    /// dataset/epoch no longer matches the catalog) and dumps the cache
    /// back on shutdown, so a rolling restart does not stampede the
    /// cold explain path.
    pub cache_persist: Option<std::path::PathBuf>,
    /// Static slow-trace threshold in milliseconds. Requests at or over
    /// it are retained by the tail sampler ([`crate::retain`]); `None`
    /// selects the adaptive policy (above the endpoint's own p99 bucket
    /// bound, once armed).
    pub trace_slow_ms: Option<u64>,
    /// Where retained traces are appended as JSONL (the CLI points this
    /// into `--state-dir`); `None` keeps them in memory only.
    pub trace_retain: Option<std::path::PathBuf>,
    /// Structured access log destination. Defaults to disabled.
    pub access_log: AccessLog,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 4,
            cache_bytes: 32 * 1024 * 1024,
            queue_depth: 64,
            request_timeout: Duration::from_secs(10),
            limits: Limits::default(),
            flight_capacity: 128,
            shard_id: None,
            cache_persist: None,
            trace_slow_ms: None,
            trace_retain: None,
            access_log: AccessLog::disabled(),
        }
    }
}

struct Inner {
    catalog: Catalog,
    cache: ResultCache,
    sink: MetricsSink,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    flight: FlightRecorder,
    /// Tail-sampling policy: which traces outlive the flight ring.
    retention: TraceRetention,
    /// Monotone per-request trace-id allocator (first request gets 1).
    next_trace: AtomicU64,
}

/// A running server. Dropping the handle without calling
/// [`Handle::shutdown`] detaches the threads (they exit with the
/// process); tests and the CLI always shut down explicitly.
pub struct Handle {
    addr: SocketAddr,
    inner: Arc<Inner>,
    pump: pump::Pump,
}

impl Handle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// The flight recorder's current contents as the same JSON document
    /// `GET /v1/debug/requests` serves. The CLI dumps this next to the
    /// final metrics snapshot on SIGTERM.
    pub fn recent_requests_json(&self) -> String {
        self.inner.flight.to_json()
    }

    /// Stop accepting, drain queued and in-flight requests, join all
    /// threads, dump the warm-start snapshot (if configured), and
    /// return the final metrics snapshot.
    pub fn shutdown(self) -> Snapshot {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.pump.join();
        if let Some(path) = &self.inner.config.cache_persist {
            let dump = self.inner.cache.entries_sorted();
            let entries: Vec<(&str, &str)> =
                dump.iter().map(|(k, d)| (k.as_str(), d.as_str())).collect();
            // Best-effort: a failed dump costs the next boot its warm
            // cache, nothing more.
            let _ = crate::persist::write_entries(path, &entries);
        }
        self.inner.sink.snapshot()
    }
}

/// Reload the warm-start snapshot, if configured and present. Entries
/// are filtered against the *booted* catalog: a persisted key whose
/// `dataset`/`epoch` fragment matches no current dataset was computed
/// against state this process does not hold (the epoch counter restarts
/// at the loaded data), so serving it could be a wrong answer — those
/// entries are dropped. Unreadable or corrupt snapshots mean a cold
/// boot, never an error.
fn warm_start(inner: &Inner) {
    let Some(path) = &inner.config.cache_persist else {
        return;
    };
    if !path.exists() {
        return;
    }
    let Ok(entries) = crate::persist::read_entries(path) else {
        return;
    };
    let fragments: Vec<String> = inner
        .catalog
        .names()
        .iter()
        .filter_map(|name| inner.catalog.get(name))
        .map(|ds| crate::key::dataset_epoch_fragment(&ds.name, ds.epoch()))
        .collect();
    let live = entries
        .into_iter()
        .filter(|(key, _)| fragments.iter().any(|f| key.contains(f.as_str())));
    inner.cache.load(live);
}

/// Bind `addr` and start the accept and worker threads. All `server.*`
/// counters are pre-registered on `sink` so even an idle server exposes
/// the full catalogue through `GET /v1/metrics`.
pub fn start(catalog: Catalog, config: ServerConfig, sink: MetricsSink) -> std::io::Result<Handle> {
    start_on(("127.0.0.1", 0), catalog, config, sink)
}

/// [`start`] on an explicit address.
pub fn start_on(
    addr: impl ToSocketAddrs,
    catalog: Catalog,
    config: ServerConfig,
    sink: MetricsSink,
) -> std::io::Result<Handle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    for counter in SERVER_COUNTERS.iter().chain(INGEST_COUNTERS) {
        sink.add(counter, 0);
    }
    let shutdown = Arc::new(AtomicBool::new(false));
    let inner = Arc::new(Inner {
        cache: ResultCache::new(config.cache_bytes, config.threads.max(1) * 2, sink.clone()),
        catalog,
        sink,
        flight: FlightRecorder::new(config.flight_capacity),
        retention: TraceRetention::new(config.trace_slow_ms, config.trace_retain.clone()),
        next_trace: AtomicU64::new(0),
        shutdown: Arc::clone(&shutdown),
        config: config.clone(),
    });
    warm_start(&inner);
    let options = pump::PumpOptions {
        threads: config.threads,
        queue_depth: config.queue_depth,
        name: "exq-serve",
    };
    let reject_inner = Arc::clone(&inner);
    let serve_inner = Arc::clone(&inner);
    let pump = pump::start(
        listener,
        &options,
        shutdown,
        move |stream| {
            reject_inner.sink.incr("server.rejected_busy");
            pump::reject(stream, &pump::busy_response());
        },
        // Keep-alive lifecycle: a client that sends
        // `Connection: keep-alive` (the router front, the CLI batch
        // client) gets the stream kept open and its next request served
        // by the *same* worker thread — which is why the front caps
        // per-worker connections at the worker's thread count.
        move |stream| {
            let inner = Arc::clone(&serve_inner);
            pump::serve_connection(stream, move |stream, carry| {
                serve_one(&inner, stream, carry)
            })
        },
    )?;
    Ok(Handle {
        addr: local,
        inner,
        pump,
    })
}

/// Read one request (within the timeout budget), route it, write the
/// response (stamped with its `X-Exq-Trace-Id`), record latency into
/// the per-endpoint histogram and the flight recorder. Returns whether
/// the connection should be kept open for another request.
// exq-lint: allow(L006): shares only the read-one/write-one shape with the front's serve_one; the common machinery lives in pump, the rest is worker-only routing
fn serve_one(inner: &Inner, stream: &mut TcpStream, carry: &mut Vec<u8>) -> bool {
    // exq-lint: allow(L002): HTTP timeout/latency bookkeeping, never reaches explanation results
    let started = Instant::now();
    let deadline = started + inner.config.request_timeout;
    let read = pump::read_request(
        stream,
        &inner.config.limits,
        deadline,
        carry,
        &inner.shutdown,
    );
    let (request, response, meta, trace_id) = match read {
        Ok(Some(request)) => {
            // Trace ids are normally allocated here, but a front tier
            // that already assigned one passes it down in
            // `x-exq-trace-id` so one trace identifies the request
            // across both tiers — stamped onto trace events too, so a
            // merged Chrome trace correlates the front's span with the
            // worker's.
            let trace_id = request
                .header("x-exq-trace-id")
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&id| id > 0)
                .unwrap_or_else(|| inner.next_trace.fetch_add(1, Ordering::Relaxed) + 1);
            inner.sink.set_trace(trace_id);
            let (response, meta) = {
                let _span = inner.sink.span("server.request");
                route(inner, &request)
            };
            (Some(request), response, meta, trace_id)
        }
        Ok(None) => return false, // peer closed / idle timeout: no request started
        Err(response) => (
            None,
            response,
            RouteMeta::other(),
            inner.next_trace.fetch_add(1, Ordering::Relaxed) + 1,
        ),
    };
    let keep_alive = request.as_ref().is_some_and(|r| {
        r.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }) && response.status != 408
        && !inner.shutdown.load(Ordering::SeqCst);
    let response = response.with_header("x-exq-trace-id", &trace_id.to_string());
    match response.status {
        200 => inner.sink.incr("server.responses.ok"),
        400..=499 => inner.sink.incr("server.responses.client_error"),
        _ => inner.sink.incr("server.responses.server_error"),
    }
    let written = stream
        .write_all(&response.to_bytes_with(keep_alive))
        .and_then(|()| stream.flush());
    let latency = started.elapsed();
    inner
        .sink
        .observe_duration(meta.latency_histogram(), latency);
    let latency_ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
    let (method, path) = match &request {
        Some(r) => (r.method.as_str(), r.path.as_str()),
        None => ("-", "-"),
    };
    inner
        .flight
        .record(trace_id, method, path, response.status, latency_ns, meta.cache);
    if inner.retention.observe(
        trace_id,
        method,
        path,
        response.status,
        latency_ns,
        meta.latency_histogram(),
    ) {
        inner.sink.incr("server.trace.retained");
    }
    inner.config.access_log.record(&AccessEntry {
        tenant: request.as_ref().and_then(|r| r.header("x-exq-tenant")),
        shard: inner.config.shard_id,
        endpoint: meta.endpoint,
        status: response.status,
        latency_ns,
        trace_id,
        cache: meta.cache,
    });
    keep_alive && written.is_ok()
}

/// What a routed request was, for latency attribution: which endpoint
/// handled it and whether the response came from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RouteMeta {
    endpoint: &'static str,
    /// `"hit"`, `"miss"`, or `"-"` for uncached routes and errors.
    cache: &'static str,
}

impl RouteMeta {
    fn uncached(endpoint: &'static str) -> RouteMeta {
        RouteMeta {
            endpoint,
            cache: "-",
        }
    }

    fn other() -> RouteMeta {
        RouteMeta::uncached("other")
    }

    /// The latency histogram this request lands in: explain/report
    /// split by cache outcome (errors excluded), everything else pooled.
    fn latency_histogram(&self) -> &'static str {
        match (self.endpoint, self.cache) {
            ("explain", "hit") => "server.latency.explain.hit",
            ("explain", "miss") => "server.latency.explain.miss",
            ("report", "hit") => "server.latency.report.hit",
            ("report", "miss") => "server.latency.report.miss",
            _ => "server.latency.other",
        }
    }
}

fn route(inner: &Inner, request: &Request) -> (Response, RouteMeta) {
    inner.sink.incr("server.requests");
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (request.path.as_str(), ""),
    };
    // `POST /v1/datasets/{name}/rows` — the only parameterized path, so
    // it gets a prefix match ahead of the exact-path table.
    if let Some(name) = path
        .strip_prefix("/v1/datasets/")
        .and_then(|rest| rest.strip_suffix("/rows"))
        .filter(|name| !name.is_empty() && !name.contains('/'))
    {
        return match request.method.as_str() {
            "POST" => handle_append(inner, request, name),
            _ => (
                Response::error(405, "method not allowed"),
                RouteMeta::other(),
            ),
        };
    }
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => (
            Response::json(200, "{\n  \"status\": \"ok\"\n}\n"),
            RouteMeta::uncached("healthz"),
        ),
        ("GET", "/v1/health") => (
            Response::json(200, health_doc(inner)),
            RouteMeta::uncached("health"),
        ),
        ("GET", "/v1/datasets") => {
            let mut doc = inner.catalog.datasets_doc();
            doc.push('\n');
            (Response::json(200, doc), RouteMeta::uncached("datasets"))
        }
        ("GET", "/metrics") => (
            Response::text(200, prometheus_doc(inner)),
            RouteMeta::uncached("metrics"),
        ),
        ("GET", "/v1/metrics") => {
            let response = if query.split('&').any(|pair| pair == "format=prometheus") {
                Response::text(200, prometheus_doc(inner))
            } else if query.split('&').any(|pair| pair == "format=snapshot") {
                // The mergeable wire encoding: exact integers (the JSON
                // path goes through f64), exemplars included — what the
                // router front scrapes and merges into the fleet view.
                Response::text(
                    200,
                    exq_obs::encode_snapshot(
                        &inner.sink.snapshot(),
                        &inner.retention.exemplars(),
                    ),
                )
            } else {
                Response::json(200, inner.sink.snapshot().to_json() + "\n")
            };
            (response, RouteMeta::uncached("metrics"))
        }
        ("GET", "/v1/debug/requests") => (
            Response::json(200, inner.flight.to_json() + "\n"),
            RouteMeta::uncached("debug"),
        ),
        ("GET", "/v1/debug/traces") => (
            Response::json(200, inner.retention.to_json() + "\n"),
            RouteMeta::uncached("debug"),
        ),
        ("POST", "/v1/explain") => handle_question(inner, request, Endpoint::Explain),
        ("POST", "/v1/report") => handle_question(inner, request, Endpoint::Report),
        (
            _,
            "/healthz" | "/v1/health" | "/v1/datasets" | "/metrics" | "/v1/metrics"
            | "/v1/debug/requests" | "/v1/debug/traces" | "/v1/explain" | "/v1/report",
        ) => (
            Response::error(405, "method not allowed"),
            RouteMeta::other(),
        ),
        _ => (Response::error(404, "no such endpoint"), RouteMeta::other()),
    }
}

/// The Prometheus exposition plus one exemplar comment per histogram
/// that has a retained trace: the breadcrumb linking a latency bucket
/// to a concrete trace id fetchable from `/v1/debug/traces`. Comment
/// lines that are not `HELP`/`TYPE` are legal exposition-format free
/// text, so scrapers that don't understand exemplars ignore them.
fn prometheus_doc(inner: &Inner) -> String {
    let mut text = inner.sink.snapshot().to_prometheus();
    for exemplar in inner.retention.exemplars() {
        text.push_str(&exemplar.to_prometheus_comment(inner.config.shard_id));
        text.push('\n');
    }
    text
}

/// The `GET /v1/health` document: worker identity and readiness at a
/// glance — shard id (when running under the router, else `null`),
/// per-dataset epochs, and live cache occupancy.
fn health_doc(inner: &Inner) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"status\": \"ok\",\n  \"shard\": ");
    match inner.config.shard_id {
        Some(id) => {
            let _ = write!(out, "{id}");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\n  \"epochs\": {");
    let names = inner.catalog.names();
    let last = names.len();
    for (i, name) in names.iter().enumerate() {
        let Some(ds) = inner.catalog.get(name) else {
            continue;
        };
        let sep = if i + 1 == last { "" } else { "," };
        let _ = write!(
            out,
            " \"{}\": {}{sep}",
            exq_obs::escape_json(name),
            ds.epoch()
        );
    }
    let _ = write!(
        out,
        " }},\n  \"cache\": {{ \"entries\": {} }}\n}}\n",
        inner.cache.len()
    );
    out
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Explain,
    Report,
}

/// Per-request cost accounting: the engine-phase counters that say how
/// much work an answer took, extracted from the request-scoped sink
/// (the same recording sink whose snapshot is embedded in the response
/// document, so the numbers are deterministic and cache-safe).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cost {
    /// Base rows the join/semijoin phases touched: root scan + hash
    /// build inputs + semijoin reduction inputs.
    rows_scanned: u64,
    /// Candidate explanations the engine scored.
    candidates: u64,
    /// Data-cube cells materialized for the candidate lattice.
    cube_cells: u64,
}

impl Cost {
    fn from_snapshot(snapshot: &Snapshot) -> Cost {
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        Cost {
            rows_scanned: counter("join.root_rows")
                + counter("join.build_rows")
                + counter("semijoin.rows_in"),
            candidates: counter("engine.candidates_evaluated"),
            cube_cells: counter("cube.cells"),
        }
    }

    /// The JSON object spliced into the response document.
    fn to_json(&self, cache: &str, epoch: u64) -> String {
        format!(
            "{{ \"rows_scanned\": {}, \"candidates\": {}, \"cube_cells\": {}, \
             \"cache\": \"{cache}\", \"epoch\": {epoch} }}",
            self.rows_scanned, self.candidates, self.cube_cells,
        )
    }

    /// The `X-Exq-Cost` header value: same facts, flat `k=v` pairs.
    fn to_header(&self, cache: &str, epoch: u64) -> String {
        format!(
            "rows={};candidates={};cells={};cache={cache};epoch={epoch}",
            self.rows_scanned, self.candidates, self.cube_cells,
        )
    }
}

/// Splice `"cost": {...}` in as the last member of a rendered response
/// document (which always ends `…}\n` with the metrics block as its
/// final member). Done at render time, so the cost block is baked into
/// the cached bytes — a cache hit replays the *production* cost of the
/// answer it serves, while the `X-Exq-Cost` header reports the
/// (near-zero) cost of the hit itself.
fn with_cost_block(doc: &str, cost_json: &str) -> String {
    let trimmed = doc.trim_end();
    match trimmed.strip_suffix('}') {
        Some(body) => format!("{},\n  \"cost\": {cost_json}\n}}\n", body.trim_end()),
        None => doc.to_owned(), // not an object; leave untouched
    }
}

/// Fold a request's cost into the per-tenant accounting counters, keyed
/// by a sanitized `X-Exq-Tenant` value. Tenant names are normalized to
/// `[a-z0-9_]` (other characters become `_`) and capped, so arbitrary
/// header bytes cannot mint unbounded or exposition-breaking counter
/// names. Requests without the header are not accounted.
fn account_tenant(inner: &Inner, tenant: Option<&str>, cost: &Cost) {
    let Some(tenant) = tenant.and_then(sanitize_tenant) else {
        return;
    };
    inner
        .sink
        .add(&format!("server.tenant.cost.{tenant}.requests"), 1);
    inner
        .sink
        .add(&format!("server.tenant.cost.{tenant}.rows"), cost.rows_scanned);
    inner.sink.add(
        &format!("server.tenant.cost.{tenant}.candidates"),
        cost.candidates,
    );
    inner
        .sink
        .add(&format!("server.tenant.cost.{tenant}.cells"), cost.cube_cells);
}

/// Normalize a tenant header value into a counter-name-safe token.
fn sanitize_tenant(raw: &str) -> Option<String> {
    const MAX_TENANT_LEN: usize = 32;
    let token: String = raw
        .trim()
        .chars()
        .take(MAX_TENANT_LEN)
        .map(|c| match c.to_ascii_lowercase() {
            c @ ('a'..='z' | '0'..='9' | '_') => c,
            _ => '_',
        })
        .collect();
    (!token.is_empty()).then_some(token)
}

/// Fields shared by `/v1/explain` and `/v1/report` bodies.
struct QuestionParams {
    dataset: Arc<Dataset>,
    /// The dataset state this request runs against, snapshotted once at
    /// parse time: every step (schema resolution, cache key, pipeline)
    /// sees one consistent epoch even if an append lands mid-request.
    prepared: Arc<exq_core::prepared::PreparedDb>,
    epoch: u64,
    question: UserQuestion,
    attrs: Vec<exq_relstore::AttrRef>,
    top_k: usize,
    kind: DegreeKind,
    strategy: TopKStrategy,
    polarity: MinimalityPolarity,
    min_support: Option<f64>,
    naive: bool,
}

fn parse_params(inner: &Inner, body: &[u8]) -> Result<QuestionParams, Response> {
    let doc = crate::json::parse(body).map_err(|e| Response::error(400, &e.to_string()))?;
    let field_str = |name: &str| -> Result<String, Response> {
        doc.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| Response::error(422, &format!("missing or non-string `{name}`")))
    };
    let dataset_name = field_str("dataset")?;
    let dataset = inner
        .catalog
        .get(&dataset_name)
        .ok_or_else(|| Response::error(404, &format!("unknown dataset `{dataset_name}`")))?;
    let (prepared, epoch) = dataset.snapshot();
    let schema = prepared.db().schema();

    let question_text = field_str("question")?;
    let question = qparse::parse_question(schema, &question_text)
        .map_err(|e| Response::error(422, &format!("bad question: {e}")))?;

    let attr_items = doc
        .get("attrs")
        .and_then(Json::as_array)
        .ok_or_else(|| Response::error(422, "missing or non-array `attrs`"))?;
    let mut attrs = Vec::with_capacity(attr_items.len());
    for item in attr_items {
        let name = item
            .as_str()
            .ok_or_else(|| Response::error(422, "`attrs` entries must be strings"))?;
        let (rel, col) = name
            .split_once('.')
            .ok_or_else(|| Response::error(422, &format!("bad attr `{name}` (want Rel.attr)")))?;
        let attr = schema
            .attr(rel.trim(), col.trim())
            .map_err(|e| Response::error(422, &format!("bad attr `{name}`: {e}")))?;
        attrs.push(attr);
    }

    let opt_field = |name: &str| doc.get(name).filter(|v| !matches!(v, Json::Null));
    let top_k = match opt_field("top") {
        None => 5,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| Response::error(422, "`top` must be a non-negative integer"))?,
    };
    let kind = match opt_field("by").map(|v| v.as_str()) {
        None | Some(Some("interv")) => DegreeKind::Intervention,
        Some(Some("aggr")) => DegreeKind::Aggravation,
        _ => return Err(Response::error(422, "`by` must be \"interv\" or \"aggr\"")),
    };
    let strategy = match opt_field("strategy").map(|v| v.as_str()) {
        None | Some(Some("selfjoin")) => TopKStrategy::MinimalSelfJoin,
        Some(Some("nominimal")) => TopKStrategy::NoMinimal,
        Some(Some("append")) => TopKStrategy::MinimalAppend,
        _ => {
            return Err(Response::error(
                422,
                "`strategy` must be \"nominimal\", \"selfjoin\", or \"append\"",
            ))
        }
    };
    let polarity = match opt_field("polarity").map(|v| v.as_str()) {
        None | Some(Some("general")) => MinimalityPolarity::PreferGeneral,
        Some(Some("specific")) => MinimalityPolarity::PreferSpecific,
        _ => {
            return Err(Response::error(
                422,
                "`polarity` must be \"general\" or \"specific\"",
            ))
        }
    };
    let min_support = match opt_field("min_support") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .ok_or_else(|| Response::error(422, "`min_support` must be a number"))?,
        ),
    };
    let naive = match opt_field("naive") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| Response::error(422, "`naive` must be a boolean"))?,
    };
    Ok(QuestionParams {
        dataset,
        prepared,
        epoch,
        question,
        attrs,
        top_k,
        kind,
        strategy,
        polarity,
        min_support,
        naive,
    })
}

fn handle_question(inner: &Inner, request: &Request, endpoint: Endpoint) -> (Response, RouteMeta) {
    let endpoint_name = match endpoint {
        Endpoint::Explain => "explain",
        Endpoint::Report => "report",
    };
    let meta = |cache: &'static str| RouteMeta {
        endpoint: endpoint_name,
        cache,
    };
    let parsed = inner.sink.time("server.request.parse", || {
        parse_params(inner, &request.body)
    });
    let params = match parsed {
        Ok(params) => params,
        Err(response) => return (response, meta("-")),
    };
    let schema = params.prepared.db().schema();
    let key = cache_key(
        schema,
        &CanonicalRequest {
            endpoint: endpoint_name,
            dataset: &params.dataset.name,
            epoch: params.epoch,
            question: &params.question,
            attrs: &params.attrs,
            top_k: params.top_k,
            kind: params.kind,
            strategy: params.strategy,
            polarity: params.polarity,
            min_support: params.min_support,
            naive: params.naive,
        },
    );
    let tenant = request.header("x-exq-tenant");
    let cached = inner
        .sink
        .time("server.request.cache", || inner.cache.get(&key));
    if let Some(doc) = cached {
        // The body already carries the production cost (baked in at
        // miss time, so hits stay byte-identical); the header reports
        // this request's own near-zero cost.
        let hit_cost = Cost::default();
        account_tenant(inner, tenant, &hit_cost);
        let response = Response::json(200, doc.as_bytes().to_vec())
            .with_header("x-exq-cost", &hit_cost.to_header("hit", params.epoch));
        return (response, meta("hit"));
    }
    let rendered = match endpoint {
        Endpoint::Explain => run_explain(inner, &params),
        Endpoint::Report => run_report(inner, &params),
    };
    let response = match rendered {
        Ok((doc, cost)) => {
            let doc = Arc::new(with_cost_block(&doc, &cost.to_json("miss", params.epoch)));
            inner.cache.insert(&key, Arc::clone(&doc));
            account_tenant(inner, tenant, &cost);
            Response::json(200, doc.as_bytes().to_vec())
                .with_header("x-exq-cost", &cost.to_header("miss", params.epoch))
        }
        Err(message) => Response::error(422, &message),
    };
    (response, meta("miss"))
}

/// A request-scoped explainer over the dataset's shared intermediates
/// (the epoch snapshot taken at parse time). Each request gets its own
/// recording sink, so the metrics embedded in the response describe
/// that request's work alone (deterministic → cacheable); the pipeline
/// itself runs sequentially per request.
fn request_explainer<'a>(params: &'a QuestionParams, sink: &MetricsSink) -> Explainer<'a> {
    let mut explainer = params
        .prepared
        .explainer(params.question.clone())
        .exec(exq_relstore::ExecConfig::sequential().with_metrics(sink.clone()))
        .attrs(params.attrs.iter().copied())
        .topk_strategy(params.strategy)
        .polarity(params.polarity);
    if let Some(threshold) = params.min_support {
        explainer = explainer.min_support(threshold);
    }
    if params.naive {
        explainer = explainer.force_naive();
    }
    explainer
}

fn run_explain(inner: &Inner, params: &QuestionParams) -> Result<(String, Cost), String> {
    inner.sink.incr("server.explain.runs");
    let request_sink = MetricsSink::recording();
    let db = params.prepared.db();
    let explainer = request_explainer(params, &request_sink);
    let (q_d, table_len, choice, ranked) = {
        let _span = inner.sink.span("server.request.explain");
        let q_d = explainer.q_d().map_err(|e| e.to_string())?;
        let (table, choice) = explainer.table().map_err(|e| e.to_string())?;
        let ranked = explainer
            .top(params.kind, params.top_k)
            .map_err(|e| e.to_string())?;
        (q_d, table.len(), choice, ranked)
    };
    let snapshot = request_sink.snapshot();
    let mut doc = inner.sink.time("server.request.render", || {
        jsonout::explain_doc(db, q_d, choice, table_len, &ranked, &snapshot)
    });
    doc.push('\n');
    Ok((doc, Cost::from_snapshot(&snapshot)))
}

fn run_report(inner: &Inner, params: &QuestionParams) -> Result<(String, Cost), String> {
    inner.sink.incr("server.report.runs");
    let request_sink = MetricsSink::recording();
    let explainer = request_explainer(params, &request_sink);
    let config = ReportConfig {
        top_k: params.top_k,
        drill_best: true,
        exec: exq_relstore::ExecConfig::sequential().with_metrics(request_sink.clone()),
    };
    // `report_doc` computes and renders in one pass, so the report path
    // books it all under the explain phase.
    let _span = inner.sink.span("server.request.explain");
    let mut doc = jsonout::report_doc(&explainer, &config).map_err(|e| e.to_string())?;
    doc.push('\n');
    Ok((doc, Cost::from_snapshot(&request_sink.snapshot())))
}

/// `POST /v1/datasets/{name}/rows`: append a batch of rows and bump the
/// dataset's epoch. Body shape:
///
/// ```json
/// { "rows": { "Author": [[1, "Ada", "MIT"], ...], "Authored": [...] } }
/// ```
///
/// Errors: malformed JSON → 400, unknown dataset → 404, over
/// [`MAX_APPEND_ROWS`] → 413, everything semantic (unknown relation,
/// arity or type mismatch, key violations) → 422. Success answers 200
/// with the new epoch in both the body and the `X-Exq-Epoch` header.
fn handle_append(inner: &Inner, request: &Request, name: &str) -> (Response, RouteMeta) {
    let meta = RouteMeta::uncached("append");
    let dataset = match inner.catalog.get(name) {
        Some(dataset) => dataset,
        None => {
            return (
                Response::error(404, &format!("unknown dataset `{name}`")),
                meta,
            )
        }
    };
    let doc = match crate::json::parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => return (Response::error(400, &e.to_string()), meta),
    };
    // Parse against the *current* schema; the schema never changes
    // across epochs, so racing with a concurrent append is harmless.
    let (prepared, _epoch) = dataset.snapshot();
    let batch = match parse_append_batch(prepared.db().schema(), &doc) {
        Ok(batch) => batch,
        Err(response) => return (response, meta),
    };
    drop(prepared);
    let total: usize = batch.iter().map(|(_, rows)| rows.len()).sum();
    if total == 0 {
        return (Response::error(422, "batch appends no rows"), meta);
    }
    if total > MAX_APPEND_ROWS {
        return (
            Response::error(
                413,
                &format!("batch of {total} rows exceeds the {MAX_APPEND_ROWS}-row limit"),
            ),
            meta,
        );
    }
    inner.sink.incr("server.append.runs");
    let exec = exq_relstore::ExecConfig::sequential().with_metrics(inner.sink.clone());
    let appended = inner
        .sink
        .time("server.request.append", || dataset.append(batch, &exec));
    match appended {
        Ok((epoch, rows)) => {
            let body = format!(
                "{{\n  \"dataset\": \"{}\",\n  \"epoch\": {epoch},\n  \"rows_appended\": {rows}\n}}\n",
                exq_obs::escape_json(name),
            );
            (
                Response::json(200, body).with_header("x-exq-epoch", &epoch.to_string()),
                meta,
            )
        }
        Err(message) => (Response::error(422, &message), meta),
    }
}

/// Decode the `rows` object of an append body into `(relation, rows)`
/// pairs, coercing each JSON cell to the column's declared type.
fn parse_append_batch(
    schema: &exq_relstore::DatabaseSchema,
    doc: &Json,
) -> Result<exq_relstore::AppendBatch, Response> {
    let rows = doc
        .get("rows")
        .ok_or_else(|| Response::error(422, "missing `rows`"))?;
    let map = match rows {
        Json::Obj(map) => map,
        _ => {
            return Err(Response::error(
                422,
                "`rows` must be an object mapping relation names to arrays of rows",
            ))
        }
    };
    let mut batch = Vec::with_capacity(map.len());
    // `map` is a BTreeMap, so batch order is the sorted relation-name
    // order regardless of how the request spelled the object.
    for (rel_name, rel_rows) in map {
        let rel_idx = schema
            .relation_index(rel_name)
            .map_err(|e| Response::error(422, &e.to_string()))?;
        let rel = schema.relation(rel_idx);
        let items = rel_rows.as_array().ok_or_else(|| {
            Response::error(422, &format!("rows for `{rel_name}` must be an array"))
        })?;
        let mut decoded = Vec::with_capacity(items.len());
        for item in items {
            let cells = item.as_array().ok_or_else(|| {
                Response::error(422, &format!("each `{rel_name}` row must be an array"))
            })?;
            if cells.len() != rel.arity() {
                return Err(Response::error(
                    422,
                    &format!(
                        "`{rel_name}` rows have {} columns, got {}",
                        rel.arity(),
                        cells.len()
                    ),
                ));
            }
            let mut row = Vec::with_capacity(cells.len());
            for (col, cell) in cells.iter().enumerate() {
                let attr = &rel.attributes[col];
                row.push(json_cell_to_value(cell, attr.ty).map_err(|why| {
                    Response::error(422, &format!("{rel_name}.{}: {why}", attr.name))
                })?);
            }
            decoded.push(row);
        }
        batch.push((rel_name.clone(), decoded));
    }
    Ok(batch)
}

/// One JSON cell as a [`Value`](exq_relstore::Value) of declared type
/// `ty`. Native JSON values are used directly; strings on typed columns
/// are parsed with the same rules the CSV loader applies, so the HTTP
/// and CSV ingestion paths accept the same spellings.
fn json_cell_to_value(
    cell: &Json,
    ty: exq_relstore::ValueType,
) -> Result<exq_relstore::Value, String> {
    use exq_relstore::{Value, ValueType};
    // JSON has one number type; integers are exact only within 2^53.
    let as_exact_int =
        |n: f64| (n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0).then_some(n as i64);
    match (cell, ty) {
        (Json::Null, _) => Ok(Value::Null),
        (Json::Bool(b), ValueType::Bool | ValueType::Any) => Ok(Value::Bool(*b)),
        (Json::Num(n), ValueType::Int) => as_exact_int(*n)
            .map(Value::Int)
            .ok_or_else(|| format!("`{n}` is not an exact integer")),
        (Json::Num(n), ValueType::Float) => Ok(Value::Float(*n)),
        (Json::Num(n), ValueType::Any) => {
            Ok(as_exact_int(*n).map(Value::Int).unwrap_or(Value::Float(*n)))
        }
        (Json::Str(s), ValueType::Str | ValueType::Any) => Ok(Value::str(s)),
        (Json::Str(s), _) => {
            exq_relstore::csv::parse_value(s, ty).map_err(|_| format!("cannot parse `{s}` as {ty}"))
        }
        (_, _) => Err(format!("expected a {ty} value")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_block_splices_as_last_member() {
        let doc = "{\n  \"answer\": 1,\n  \"metrics\": {\n    \"x\": 2\n  }\n}\n";
        let cost = Cost {
            rows_scanned: 10,
            candidates: 3,
            cube_cells: 7,
        };
        let spliced = with_cost_block(doc, &cost.to_json("miss", 4));
        let parsed = crate::json::parse(spliced.as_bytes()).expect("spliced doc must parse");
        let block = parsed.get("cost").expect("cost present");
        assert_eq!(block.get("rows_scanned").and_then(Json::as_usize), Some(10));
        assert_eq!(block.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(block.get("epoch").and_then(Json::as_usize), Some(4));
        // Original members survive the splice.
        assert_eq!(parsed.get("answer").and_then(Json::as_usize), Some(1));
        assert!(spliced.ends_with("}\n"));
    }

    #[test]
    fn cost_reads_engine_counters_from_snapshot() {
        let sink = MetricsSink::recording();
        sink.add("join.root_rows", 5);
        sink.add("join.build_rows", 7);
        sink.add("semijoin.rows_in", 11);
        sink.add("engine.candidates_evaluated", 13);
        sink.add("cube.cells", 17);
        let cost = Cost::from_snapshot(&sink.snapshot());
        assert_eq!(
            cost,
            Cost {
                rows_scanned: 23,
                candidates: 13,
                cube_cells: 17,
            }
        );
        assert_eq!(
            cost.to_header("hit", 2),
            "rows=23;candidates=13;cells=17;cache=hit;epoch=2"
        );
    }

    #[test]
    fn tenant_names_are_sanitized_and_bounded() {
        assert_eq!(sanitize_tenant("Acme"), Some("acme".to_string()));
        assert_eq!(sanitize_tenant("  a-b.c  "), Some("a_b_c".to_string()));
        assert_eq!(sanitize_tenant(""), None);
        assert_eq!(sanitize_tenant("   "), None);
        let long = sanitize_tenant(&"x".repeat(100)).unwrap();
        assert_eq!(long.len(), 32);
        // Sanitized names render as legal Prometheus counter names.
        let sink = MetricsSink::recording();
        sink.add(
            &format!("server.tenant.cost.{}.requests", sanitize_tenant("we?ird").unwrap()),
            1,
        );
        assert!(sink.snapshot().to_prometheus().contains("we_ird"));
    }
}
