//! # exq-serve — the resident explanation server
//!
//! Turns the one-shot `exq` pipeline into a long-lived service, the
//! setting the paper's §6 prototype assumed (a resident SQL Server
//! instance amortizing storage and join work across repeated what-if
//! questions). Three pieces:
//!
//! * a [`catalog::Catalog`] of named datasets whose expensive
//!   intermediates (semijoin reduction, universal relation) are built
//!   **once** at startup via [`exq_core::prepared::PreparedDb`], shared
//!   across requests, and maintained *incrementally* as live appends
//!   arrive (each append bumps the dataset's epoch);
//! * a [`cache::ResultCache`] — sharded, byte-budgeted LRU over
//!   rendered response documents, keyed by the collision-free canonical
//!   encodings of [`key`] (a cache-hit `POST /v1/explain` is a hash
//!   lookup plus a memcpy);
//! * a std-only HTTP/1.1 server ([`server`]) — hand-rolled parser
//!   ([`http`]), thread-per-connection worker pool, bounded accept
//!   queue with `503` + `Retry-After` backpressure, per-request read
//!   timeouts, opt-in keep-alive (a client sending `Connection:
//!   keep-alive` — the router front, the CLI batch client — keeps its
//!   stream open across requests), and cooperative SIGINT/SIGTERM
//!   shutdown ([`signal`]) that drains in-flight work and hands back a
//!   final metrics snapshot. With [`ServerConfig::cache_persist`] set,
//!   the cache is dumped at shutdown and reloaded (epoch-filtered) at
//!   boot ([`persist`]) so restarts start warm.
//!
//! Endpoints (JSON unless noted, same document shapes as
//! `exq --format json`; every response carries an `X-Exq-Trace-Id`
//! header identifying the request in the flight recorder):
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/explain` | ranked top-K explanations for a question |
//! | `POST /v1/report`  | full report: both rankings, tau, drill-down |
//! | `POST /v1/datasets/{name}/rows` | append rows, bump the dataset epoch |
//! | `GET /v1/datasets` | catalog listing with tuple counts and epochs |
//! | `GET /v1/metrics`  | live counters/spans/histograms snapshot (`?format=prometheus` for text exposition, `?format=snapshot` for the mergeable wire encoding) |
//! | `GET /metrics`     | Prometheus text exposition 0.0.4 (scrape target), exemplar comments included |
//! | `GET /v1/debug/requests` | flight recorder: last N request summaries |
//! | `GET /v1/debug/traces` | tail-sampled retention: slow/error traces kept past the ring ([`retain`]) |
//! | `GET /healthz`     | liveness probe |
//! | `GET /v1/health`   | worker identity: shard id, dataset epochs, cache occupancy |
//!
//! Everything stays zero-new-dependency (vendored-stub policy from
//! PR 1): no async runtime, no HTTP crate, no JSON crate, no libc.

#![warn(missing_docs)]

pub mod accesslog;
pub mod cache;
pub mod catalog;
pub mod client;
pub mod flight;
pub mod http;
pub mod json;
pub mod key;
pub mod persist;
pub mod pump;
pub mod retain;
pub mod server;
pub mod signal;

pub use accesslog::{AccessEntry, AccessLog};
pub use cache::ResultCache;
pub use catalog::{Catalog, Dataset};
pub use flight::{FlightRecorder, RequestSummary};
pub use retain::{RetainedTrace, TraceRetention};
pub use server::{start, start_on, Handle, ServerConfig, INGEST_COUNTERS, SERVER_COUNTERS};
