//! A small recursive-descent JSON reader for request bodies.
//!
//! The server only *reads* JSON (responses are rendered by
//! `exq_core::jsonout` and `exq_obs`); this module parses the handful of
//! request fields the endpoints accept. Strict on structure (trailing
//! garbage, unterminated strings, and over-deep nesting are errors),
//! total on input (any byte sequence yields `Ok` or `Err`, never a
//! panic).

use std::collections::BTreeMap;
use std::fmt;

/// Nesting ceiling — far above any legitimate request body, low enough
/// that recursion cannot exhaust the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has one numeric type).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is irrelevant to the endpoints, so a sorted
    /// map keeps lookups simple and duplicates detectable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(input).map_err(|e| JsonError {
        at: e.valid_up_to(),
        message: "not UTF-8".to_string(),
    })?;
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", (c as char).escape_default()))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: require a low surrogate pair.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(self.err(format!(
                                "bad escape `\\{}`",
                                (other as char).escape_default()
                            )))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input was validated as UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe_free_next_char(rest);
                    out.push_str(s);
                    self.pos += s.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.err(format!("bad number `{text}`")))
    }
}

/// The first UTF-8 scalar of `bytes` as a `&str` slice. `bytes` comes
/// from a validated `&str`, so a char boundary always exists within 4
/// bytes; fall back to one byte defensively rather than slicing off a
/// boundary.
fn unsafe_free_next_char(bytes: &[u8]) -> &str {
    for len in 1..=4.min(bytes.len()) {
        if let Ok(s) = std::str::from_utf8(&bytes[..len]) {
            return s;
        }
    }
    "\u{FFFD}"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shape() {
        let doc = parse(
            br#"{"dataset": "dblp", "top": 3, "attrs": ["Author.inst"], "naive": false, "min_support": 0.5, "x": null}"#,
        )
        .unwrap();
        assert_eq!(doc.get("dataset").and_then(Json::as_str), Some("dblp"));
        assert_eq!(doc.get("top").and_then(Json::as_usize), Some(3));
        assert_eq!(doc.get("naive").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("min_support").and_then(Json::as_f64), Some(0.5));
        assert_eq!(doc.get("x"), Some(&Json::Null));
        assert_eq!(
            doc.get("attrs").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
    }

    #[test]
    fn unescapes_strings() {
        let doc = parse(br#""a\nb\t\"q\" \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\nb\t\"q\" \u{e9} \u{1f600}"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            &b"{"[..],
            b"{\"a\": }",
            b"[1,]",
            b"\"unterminated",
            b"1 2",
            b"{\"a\":1,\"a\":2}",
            b"nul",
            b"--1",
            b"1e999",
            b"\"\\ud800x\"",
            b"\xff\xfe",
        ] {
            assert!(parse(bad).is_err(), "{:?}", bad);
        }
    }

    #[test]
    fn depth_limit_holds() {
        let mut deep = Vec::new();
        deep.extend(std::iter::repeat_n(b'[', 4000));
        deep.extend(std::iter::repeat_n(b']', 4000));
        assert!(parse(&deep).is_err());
    }
}
