//! A tiny blocking HTTP/1.1 client for tests, the CLI, and the
//! loadtest harness.
//!
//! Two shapes:
//!
//! * the free functions ([`request`], [`get`], [`post_json`]) open one
//!   connection per request, mirroring the server's default
//!   `Connection: close` policy — right for one-shot probes;
//! * [`Connection`] holds a keep-alive stream open across requests
//!   (batch appends, the router front's upstream pool). It counts its
//!   TCP connects ([`Connection::connects`]) so tests can assert reuse,
//!   transparently reconnects when a reused stream turns out to be
//!   stale (the server idle-closes at its request timeout), and offers
//!   [`Connection::post_json_retry`] — bounded retry honoring the
//!   server's `503` + `Retry-After` backpressure.
//!
//! Not a general client — just enough to exercise the endpoints
//! without external tooling.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded response: status code and body bytes.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers (lower-cased names).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Send one request and read the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: exq\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    // A server shedding load may answer (e.g. 503) and close before it
    // reads the request; don't let that write failure mask the response.
    let sent = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush());
    let mut raw = Vec::new();
    let received = stream.read_to_end(&mut raw);
    if raw.is_empty() {
        // Nothing came back: surface whichever side failed first.
        sent?;
        received?;
    }
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response"))
}

/// `GET` helper.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path, None)
}

/// `POST` helper with a JSON body.
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body.as_bytes()))
}

/// A persistent keep-alive connection to one server.
///
/// Requests carry `Connection: keep-alive`, so the server leaves the
/// stream open and the next request skips the TCP handshake (and, on
/// the server side, the accept queue). Responses are framed by
/// `content-length`; a response announcing `connection: close` drops
/// the stream so the next request reconnects.
///
/// Staleness: a server closes idle keep-alive connections at its
/// request timeout, which can race a request being written. When a
/// request on a *reused* stream fails with **zero response bytes**
/// received, the server cannot have started answering it — so the
/// client reconnects and resends once, transparently. Failures on a
/// fresh connection, or after response bytes arrived, propagate.
#[derive(Debug)]
pub struct Connection {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    connects: u64,
    read_timeout: Duration,
}

impl Connection {
    /// A connection handle to `addr`; nothing is dialed until the first
    /// request.
    pub fn new(addr: SocketAddr) -> Connection {
        Connection {
            addr,
            stream: None,
            connects: 0,
            read_timeout: Duration::from_secs(30),
        }
    }

    /// Override the per-response read timeout (default 30s).
    pub fn with_read_timeout(mut self, timeout: Duration) -> Connection {
        self.read_timeout = timeout;
        self
    }

    /// How many TCP connections this handle has opened — 1 for any
    /// number of requests against a healthy keep-alive server.
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Send one request over the held stream (dialing or re-dialing as
    /// needed) and read the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<ClientResponse> {
        self.request_with(method, path, body, &[])
    }

    /// [`Connection::request`] with extra request headers (name, value).
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or(&[]);
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: exq\r\nconnection: keep-alive\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let reused = self.stream.is_some();
        match self.try_once(head.as_bytes(), body) {
            Ok(response) => Ok(response),
            Err((error, received)) => {
                self.stream = None;
                if reused && received == 0 {
                    // Stale keep-alive stream: reconnect and resend.
                    self.try_once(head.as_bytes(), body).map_err(|(e, _)| e)
                } else {
                    Err(error)
                }
            }
        }
    }

    /// `GET` over the held stream.
    pub fn get(&mut self, path: &str) -> std::io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST` a JSON body over the held stream.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<ClientResponse> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    /// `POST` with bounded retry on `503`: sleeps for the server's
    /// `Retry-After` (seconds, capped at 5s; exponential backoff from
    /// 50ms when absent) and resends, up to `max_retries` retries. The
    /// final response is returned either way — callers inspect
    /// `status` to tell recovery from exhaustion. Non-503 responses
    /// and transport errors end the loop immediately.
    pub fn post_json_retry(
        &mut self,
        path: &str,
        body: &str,
        max_retries: u32,
    ) -> std::io::Result<ClientResponse> {
        let mut backoff = Duration::from_millis(50);
        let mut attempt = 0u32;
        loop {
            let response = self.post_json(path, body)?;
            if response.status != 503 || attempt >= max_retries {
                return Ok(response);
            }
            let wait = response
                .header("retry-after")
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_secs)
                .unwrap_or(backoff)
                .min(Duration::from_secs(5));
            std::thread::sleep(wait);
            backoff = (backoff * 2).min(Duration::from_secs(1));
            attempt += 1;
        }
    }

    /// One send/receive over the current stream (dialing if absent).
    /// Errors carry how many response bytes had arrived, so the caller
    /// can tell a stale idle-closed stream (zero) from a mid-response
    /// failure.
    fn try_once(
        &mut self,
        head: &[u8],
        body: &[u8],
    ) -> Result<ClientResponse, (std::io::Error, usize)> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))
                .map_err(|e| (e, 0))?;
            stream
                .set_read_timeout(Some(self.read_timeout))
                .map_err(|e| (e, 0))?;
            stream
                .set_write_timeout(Some(Duration::from_secs(5)))
                .map_err(|e| (e, 0))?;
            self.connects += 1;
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("stream just ensured");
        // As in `request`: a shedding server may answer and close before
        // reading everything we wrote, so don't let the write error mask
        // a response that did arrive.
        let sent = stream
            .write_all(head)
            .and_then(|()| stream.write_all(body))
            .and_then(|()| stream.flush());
        let mut raw = Vec::new();
        let received = read_framed(stream, &mut raw);
        if let Err(error) = received {
            return Err((error, raw.len()));
        }
        if raw.is_empty() {
            if let Err(error) = sent {
                return Err((error, 0));
            }
            return Err((
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "connection closed"),
                0,
            ));
        }
        sent.map_err(|e| (e, raw.len()))?;
        let response = parse_response(&raw).ok_or_else(|| {
            (
                std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response"),
                raw.len(),
            )
        })?;
        let keep = response
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"));
        if !keep {
            self.stream = None;
        }
        Ok(response)
    }
}

/// Read one `content-length`-framed response into `raw`. Responses
/// without a `content-length` header are read to EOF (close-mode
/// framing).
fn read_framed(stream: &mut TcpStream, raw: &mut Vec<u8>) -> std::io::Result<()> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head_end = head_end + 4;
            match content_length(&raw[..head_end]) {
                Some(len) if raw.len() >= head_end + len => {
                    raw.truncate(head_end + len);
                    return Ok(());
                }
                Some(_) => {}
                None => {} // close-framed: run to EOF below
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
}

fn content_length(head: &[u8]) -> Option<usize> {
    let head = std::str::from_utf8(head).ok()?;
    head.split("\r\n").find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("content-length")
            .then(|| value.trim().parse().ok())?
    })
}

fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Some(ClientResponse {
        status,
        headers,
        body: raw[head_end..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{parse_request, Limits, Response};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A minimal keep-alive-capable stub server. Accepts connections
    /// sequentially, answers each request with `handler(request_index)`,
    /// and closes after a `503` (mirroring the real server's
    /// load-shedding path). With `lie_and_close`, it *claims*
    /// `keep-alive` but closes the stream after every response —
    /// simulating the server idle-closing a connection between
    /// requests, the race [`Connection`] must absorb.
    fn stub(
        lie_and_close: bool,
        handler: impl Fn(usize) -> Response + Send + 'static,
    ) -> (SocketAddr, Arc<AtomicUsize>, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let conns = Arc::new(AtomicUsize::new(0));
        let served = Arc::new(AtomicUsize::new(0));
        let (conns_in, served_in) = (Arc::clone(&conns), Arc::clone(&served));
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                conns_in.fetch_add(1, Ordering::SeqCst);
                let mut buf = Vec::new();
                let mut chunk = [0u8; 4096];
                loop {
                    let request = loop {
                        match parse_request(&buf, &Limits::default()) {
                            Ok(Some((request, consumed))) => {
                                buf.drain(..consumed);
                                break Some(request);
                            }
                            Ok(None) => {}
                            Err(_) => break None,
                        }
                        match stream.read(&mut chunk) {
                            Ok(0) | Err(_) => break None,
                            Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        }
                    };
                    let Some(request) = request else { break };
                    let asked = request
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"));
                    let response = handler(served_in.fetch_add(1, Ordering::SeqCst));
                    let keep = asked && response.status != 503 && !lie_and_close;
                    let claim = asked && response.status != 503;
                    if stream.write_all(&response.to_bytes_with(claim)).is_err() {
                        break;
                    }
                    if !keep {
                        break;
                    }
                }
            }
        });
        (addr, conns, served)
    }

    #[test]
    fn keep_alive_reuses_one_connection_across_requests() {
        let (addr, conns, served) = stub(false, |_| Response::json(200, "{\"ok\": true}\n"));
        let mut conn = Connection::new(addr);
        for _ in 0..3 {
            let response = conn.post_json("/v1/explain", "{}").unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.text(), "{\"ok\": true}\n");
        }
        assert_eq!(conn.connects(), 1, "client must reuse its stream");
        assert_eq!(conns.load(Ordering::SeqCst), 1, "server saw one connection");
        assert_eq!(served.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retry_honors_retry_after_and_recovers() {
        let (addr, _conns, served) = stub(false, |i| {
            if i == 0 {
                Response::error(503, "busy").with_header("retry-after", "0")
            } else {
                Response::json(200, "{\"epoch\": 1}\n")
            }
        });
        let mut conn = Connection::new(addr);
        let response = conn
            .post_json_retry("/v1/datasets/d/rows", "{}", 3)
            .unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(served.load(Ordering::SeqCst), 2, "one 503, one success");
    }

    #[test]
    fn retry_is_bounded_and_surfaces_the_final_503() {
        let (addr, _conns, served) = stub(false, |_| {
            Response::error(503, "busy").with_header("retry-after", "0")
        });
        let mut conn = Connection::new(addr);
        let response = conn
            .post_json_retry("/v1/datasets/d/rows", "{}", 2)
            .unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(
            served.load(Ordering::SeqCst),
            3,
            "initial attempt plus exactly max_retries retries"
        );
    }

    #[test]
    fn stale_keep_alive_stream_is_transparently_redialed() {
        let (addr, conns, served) = stub(true, |_| Response::json(200, "{}"));
        let mut conn = Connection::new(addr);
        assert_eq!(conn.get("/healthz").unwrap().status, 200);
        // The stub closed the stream after responding; the next request
        // hits EOF with zero response bytes and must resend on a fresh
        // connection rather than erroring.
        assert_eq!(conn.get("/healthz").unwrap().status, 200);
        assert_eq!(conn.connects(), 2);
        assert_eq!(conns.load(Ordering::SeqCst), 2);
        assert_eq!(served.load(Ordering::SeqCst), 2);
    }
}
