//! A tiny blocking HTTP/1.1 client for tests and the loadtest harness.
//!
//! One request per connection, mirroring the server's `Connection:
//! close` policy. Not a general client — just enough to exercise the
//! endpoints in-process without external tooling.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded response: status code and body bytes.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers (lower-cased names).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First header value by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Send one request and read the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: exq\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    // A server shedding load may answer (e.g. 503) and close before it
    // reads the request; don't let that write failure mask the response.
    let sent = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush());
    let mut raw = Vec::new();
    let received = stream.read_to_end(&mut raw);
    if raw.is_empty() {
        // Nothing came back: surface whichever side failed first.
        sent?;
        received?;
    }
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response"))
}

/// `GET` helper.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path, None)
}

/// `POST` helper with a JSON body.
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body.as_bytes()))
}

fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Some(ClientResponse {
        status,
        headers,
        body: raw[head_end..].to_vec(),
    })
}
