//! The flight recorder: a fixed-size ring of recent request summaries.
//!
//! Aggregate metrics answer "how is the server doing"; the flight
//! recorder answers "what did it *just* do" — the last N requests with
//! method, path, status, latency, cache outcome, and trace id (the same
//! id returned to the client in `X-Exq-Trace-Id`, so a slow response in
//! hand can be matched to its server-side record). Served at
//! `GET /v1/debug/requests` and dumped next to the final metrics
//! snapshot on SIGTERM.

use exq_obs::escape_json;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// One completed request, as remembered by the recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSummary {
    /// 1-based position in the server's request sequence.
    pub seq: u64,
    /// The per-request trace id (also sent as `X-Exq-Trace-Id`).
    pub trace_id: u64,
    /// Request method as sent.
    pub method: String,
    /// Request path (query string included).
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Wall-clock handling time, read-to-write, in nanoseconds.
    pub latency_ns: u64,
    /// Cache outcome: `"hit"`, `"miss"`, or `"-"` for uncached routes.
    pub cache: &'static str,
}

#[derive(Debug, Default)]
struct FlightState {
    ring: VecDeque<RequestSummary>,
    recorded: u64,
}

/// Bounded ring of [`RequestSummary`] records, oldest evicted first.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<FlightState>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` requests (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            state: Mutex::new(FlightState::default()),
        }
    }

    /// Append one summary, assigning its sequence number; the oldest
    /// entry is evicted once the ring is full.
    pub fn record(
        &self,
        trace_id: u64,
        method: &str,
        path: &str,
        status: u16,
        latency_ns: u64,
        cache: &'static str,
    ) {
        let mut state = self.state.lock().expect("flight recorder poisoned");
        state.recorded += 1;
        let seq = state.recorded;
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
        }
        state.ring.push_back(RequestSummary {
            seq,
            trace_id,
            method: method.to_owned(),
            path: path.to_owned(),
            status,
            latency_ns,
            cache,
        });
    }

    /// Number of requests ever recorded (not just those still in the ring).
    pub fn recorded(&self) -> u64 {
        self.state
            .lock()
            .expect("flight recorder poisoned")
            .recorded
    }

    /// A copy of the ring, oldest first.
    pub fn entries(&self) -> Vec<RequestSummary> {
        let state = self.state.lock().expect("flight recorder poisoned");
        state.ring.iter().cloned().collect()
    }

    /// Render as the `GET /v1/debug/requests` JSON document.
    pub fn to_json(&self) -> String {
        let state = self.state.lock().expect("flight recorder poisoned");
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"capacity\": {},", self.capacity);
        let _ = writeln!(out, "  \"recorded\": {},", state.recorded);
        out.push_str("  \"requests\": [");
        for (i, r) in state.ring.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                out,
                "{sep}    {{ \"seq\": {}, \"trace_id\": {}, \"method\": \"{}\", \
                 \"path\": \"{}\", \"status\": {}, \"latency_ns\": {}, \"cache\": \"{}\" }}",
                r.seq,
                r.trace_id,
                escape_json(&r.method),
                escape_json(&r.path),
                r.status,
                r.latency_ns,
                r.cache,
            );
        }
        out.push_str(if state.ring.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_last_n_with_global_sequence() {
        let recorder = FlightRecorder::new(3);
        for i in 0..5u64 {
            recorder.record(i + 10, "GET", &format!("/r{i}"), 200, i * 100, "-");
        }
        let entries = recorder.entries();
        assert_eq!(recorder.recorded(), 5);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].seq, 3);
        assert_eq!(entries[2].seq, 5);
        assert_eq!(entries[2].path, "/r4");
        assert_eq!(entries[2].trace_id, 14);
    }

    #[test]
    fn json_document_is_parseable_and_complete() {
        let recorder = FlightRecorder::new(8);
        recorder.record(1, "POST", "/v1/explain", 200, 1234, "miss");
        recorder.record(2, "POST", "/v1/explain", 200, 56, "hit");
        let doc = recorder.to_json();
        let parsed = crate::json::parse(doc.as_bytes()).expect("flight JSON must parse");
        let requests = parsed.get("requests").and_then(|v| v.as_array()).unwrap();
        assert_eq!(requests.len(), 2);
        assert_eq!(
            requests[1].get("cache").and_then(|v| v.as_str()),
            Some("hit")
        );
        assert_eq!(parsed.get("recorded").and_then(|v| v.as_usize()), Some(2));
    }

    #[test]
    fn empty_recorder_renders_valid_json() {
        let doc = FlightRecorder::new(4).to_json();
        assert!(crate::json::parse(doc.as_bytes()).is_ok(), "{doc}");
        assert!(doc.contains("\"requests\": []"), "{doc}");
    }

    #[test]
    fn paths_are_escaped() {
        let recorder = FlightRecorder::new(2);
        recorder.record(1, "GET", "/x\"y", 404, 1, "-");
        assert!(crate::json::parse(recorder.to_json().as_bytes()).is_ok());
    }
}
