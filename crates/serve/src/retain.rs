//! Tail-sampled trace retention: keep the requests worth keeping.
//!
//! The flight recorder ([`crate::flight`]) remembers the last N
//! requests indiscriminately and briefly — useful for "what just
//! happened", useless an hour later when someone asks why yesterday's
//! p99 spiked. Retention is the complementary policy: a request's trace
//! is **retained** when it is interesting —
//!
//! * an **error** (status ≥ 500), or
//! * **slow**: latency at or above a static threshold
//!   (`--trace-slow-ms`), or, when no static threshold is configured,
//!   above the *adaptive* bound — the current p99 bucket upper of that
//!   endpoint's own latency distribution (tracked per histogram name
//!   with the same log-bucketing as the histograms themselves, so the
//!   bound is exact at bucket granularity). The adaptive bound arms
//!   only after a minimum sample count; a cold server retains nothing
//!   by surprise.
//!
//! Retained traces land in a bounded in-memory ring served at
//! `GET /v1/debug/traces`, are appended as JSONL to
//! `<state-dir>/…traces.jsonl` when a state dir is configured
//! (best-effort, like the cache dump), and the most recent retained
//! trace per histogram is exported as a Prometheus *exemplar comment*
//! on the owning bucket of the `/metrics` exposition — the breadcrumb
//! that links a fleet-level p99 to one replayable trace id.

use exq_obs::{bucket_index, bucket_upper, Exemplar};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

/// Minimum observations of a histogram before the adaptive p99 bound
/// arms. Below this, only errors and static-threshold hits retain.
const ADAPTIVE_MIN_SAMPLES: u64 = 64;

/// Retained traces kept in memory (oldest evicted first).
const RETAINED_CAPACITY: usize = 128;

/// One retained trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetainedTrace {
    /// The request's trace id (as sent in `X-Exq-Trace-Id`).
    pub trace_id: u64,
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status.
    pub status: u16,
    /// Wall-clock latency in nanoseconds.
    pub latency_ns: u64,
    /// Why it was kept: `"error"` or `"slow"`.
    pub reason: &'static str,
    /// Latency histogram this trace is an exemplar candidate for.
    pub hist: &'static str,
    /// Log-bucket upper bound the latency fell in.
    pub bucket_upper: u64,
}

impl RetainedTrace {
    fn to_json_line(&self) -> String {
        format!(
            "{{\"trace_id\": {}, \"method\": \"{}\", \"path\": \"{}\", \"status\": {}, \
             \"latency_ns\": {}, \"reason\": \"{}\", \"hist\": \"{}\", \"bucket_upper\": {}}}",
            self.trace_id,
            exq_obs::escape_json(&self.method),
            exq_obs::escape_json(&self.path),
            self.status,
            self.latency_ns,
            self.reason,
            self.hist,
            self.bucket_upper,
        )
    }
}

#[derive(Debug, Default)]
struct RetainState {
    /// Per-histogram log-bucket counts, maintained locally so the
    /// adaptive p99 bound never has to walk the global sink.
    dist: BTreeMap<&'static str, (u64, Vec<u64>)>,
    ring: VecDeque<RetainedTrace>,
    retained: u64,
    /// Most recent retained trace per histogram — the exemplar.
    exemplars: BTreeMap<&'static str, (u64, u64)>,
}

/// The retention policy plus its retained-trace store.
#[derive(Debug)]
pub struct TraceRetention {
    /// Static slow threshold in nanoseconds; `None` means adaptive.
    slow_ns: Option<u64>,
    /// JSONL sink for retained traces; `None` keeps them in memory only.
    file: Option<PathBuf>,
    state: Mutex<RetainState>,
}

impl TraceRetention {
    /// A policy with the given static threshold (milliseconds; `None`
    /// selects the adaptive p99 bound) persisting to `file` if set.
    pub fn new(slow_ms: Option<u64>, file: Option<PathBuf>) -> TraceRetention {
        TraceRetention {
            slow_ns: slow_ms.map(|ms| ms.saturating_mul(1_000_000)),
            file,
            state: Mutex::new(RetainState::default()),
        }
    }

    /// Observe one completed request. Returns `true` when the trace was
    /// retained (the caller bumps the `server.trace.retained` counter —
    /// metrics stay the sink's job, policy stays ours).
    pub fn observe(
        &self,
        trace_id: u64,
        method: &str,
        path: &str,
        status: u16,
        latency_ns: u64,
        hist: &'static str,
    ) -> bool {
        let mut state = self.state.lock().expect("trace retention poisoned");
        // Update the local distribution first so the adaptive bound
        // includes the request being judged.
        let (count, buckets) = state.dist.entry(hist).or_insert_with(|| (0, Vec::new()));
        let idx = bucket_index(latency_ns);
        if buckets.len() <= idx {
            buckets.resize(idx + 1, 0);
        }
        buckets[idx] += 1;
        *count += 1;

        let reason = if status >= 500 {
            Some("error")
        } else if self.is_slow(&state, latency_ns, hist) {
            Some("slow")
        } else {
            None
        };
        let Some(reason) = reason else {
            return false;
        };

        let upper = bucket_upper(idx);
        let trace = RetainedTrace {
            trace_id,
            method: method.to_owned(),
            path: path.to_owned(),
            status,
            latency_ns,
            reason,
            hist,
            bucket_upper: upper,
        };
        state.retained += 1;
        state.exemplars.insert(hist, (upper, trace_id));
        if state.ring.len() == RETAINED_CAPACITY {
            state.ring.pop_front();
        }
        state.ring.push_back(trace.clone());
        drop(state);

        if let Some(file) = &self.file {
            // Best-effort, like the cache dump: losing a line never
            // fails the request.
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(file)
                .and_then(|mut f| writeln!(f, "{}", trace.to_json_line()).map(|()| ()));
        }
        true
    }

    /// Whether `latency_ns` clears the slow bar for `hist`.
    fn is_slow(&self, state: &RetainState, latency_ns: u64, hist: &'static str) -> bool {
        if let Some(slow_ns) = self.slow_ns {
            return latency_ns >= slow_ns;
        }
        // Adaptive: above the current p99 bucket upper of this
        // histogram's own distribution, once it has enough samples.
        let Some((count, buckets)) = state.dist.get(hist) else {
            return false;
        };
        if *count < ADAPTIVE_MIN_SAMPLES {
            return false;
        }
        let rank = (*count * 99).div_ceil(100);
        let mut seen = 0u64;
        for (i, c) in buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return latency_ns > bucket_upper(i);
            }
        }
        false
    }

    /// Number of traces ever retained.
    pub fn retained(&self) -> u64 {
        self.state.lock().expect("trace retention poisoned").retained
    }

    /// Current exemplars: the most recent retained trace per histogram.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        let state = self.state.lock().expect("trace retention poisoned");
        state
            .exemplars
            .iter()
            .map(|(hist, (upper, trace_id))| Exemplar {
                hist: (*hist).to_owned(),
                bucket_upper: *upper,
                trace_id: *trace_id,
            })
            .collect()
    }

    /// A copy of the retained ring, oldest first.
    pub fn entries(&self) -> Vec<RetainedTrace> {
        let state = self.state.lock().expect("trace retention poisoned");
        state.ring.iter().cloned().collect()
    }

    /// Render as the `GET /v1/debug/traces` JSON document.
    pub fn to_json(&self) -> String {
        let state = self.state.lock().expect("trace retention poisoned");
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"capacity\": {RETAINED_CAPACITY},");
        let _ = writeln!(out, "  \"retained\": {},", state.retained);
        let policy = match self.slow_ns {
            Some(ns) => format!("\"static\", \"slow_ns\": {ns}"),
            None => "\"adaptive-p99\"".to_string(),
        };
        let _ = writeln!(out, "  \"policy\": {policy},");
        out.push_str("  \"traces\": [");
        for (i, t) in state.ring.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(out, "{sep}    {}", t.to_json_line());
        }
        out.push_str(if state.ring.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HIST: &str = "server.latency.explain.miss";

    #[test]
    fn static_threshold_retains_slow_and_errors_only() {
        let retention = TraceRetention::new(Some(10), None); // 10ms
        assert!(!retention.observe(1, "POST", "/v1/explain", 200, 9_999_999, HIST));
        assert!(retention.observe(2, "POST", "/v1/explain", 200, 10_000_000, HIST));
        assert!(retention.observe(3, "POST", "/v1/explain", 503, 5, HIST));
        assert_eq!(retention.retained(), 2);
        let entries = retention.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].reason, "slow");
        assert_eq!(entries[1].reason, "error");
        // Exemplar is the most recent retained trace for the histogram.
        let ex = retention.exemplars();
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].trace_id, 3);
        assert_eq!(ex[0].bucket_upper, bucket_upper(bucket_index(5)));
    }

    #[test]
    fn zero_threshold_retains_everything() {
        let retention = TraceRetention::new(Some(0), None);
        assert!(retention.observe(1, "GET", "/healthz", 200, 1, HIST));
        assert_eq!(retention.retained(), 1);
    }

    #[test]
    fn adaptive_bound_arms_after_min_samples() {
        let retention = TraceRetention::new(None, None);
        // A wild outlier before the bound arms is NOT retained.
        assert!(!retention.observe(0, "POST", "/v1/explain", 200, u64::MAX / 2, HIST));
        // Build a tight distribution around ~1000ns, deep enough that
        // the p99 rank falls inside it (not at the distribution max).
        for i in 0..200 {
            assert!(!retention.observe(i + 1, "POST", "/v1/explain", 200, 1000 + i % 16, HIST));
        }
        // Now an outlier far above the p99 bucket upper retains...
        assert!(retention.observe(999, "POST", "/v1/explain", 200, 50_000_000, HIST));
        // ...while a typical latency still does not.
        assert!(!retention.observe(1000, "POST", "/v1/explain", 200, 1001, HIST));
        assert_eq!(retention.entries()[0].reason, "slow");
    }

    #[test]
    fn persists_jsonl_when_file_configured() {
        let dir = std::env::temp_dir().join(format!("exq-retain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("traces.jsonl");
        let retention = TraceRetention::new(Some(0), Some(file.clone()));
        retention.observe(7, "POST", "/v1/explain", 200, 123, HIST);
        retention.observe(8, "GET", "/v1/datasets", 500, 456, HIST);
        let text = std::fs::read_to_string(&file).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            crate::json::parse(line.as_bytes()).expect("retained line must be JSON");
        }
        assert!(lines[0].contains("\"trace_id\": 7"));
        assert!(lines[1].contains("\"reason\": \"error\""));
    }

    #[test]
    fn debug_document_is_parseable_in_both_policies() {
        for slow_ms in [Some(5), None] {
            let retention = TraceRetention::new(slow_ms, None);
            retention.observe(1, "POST", "/v1/explain", 500, 1, HIST);
            let doc = retention.to_json();
            let parsed = crate::json::parse(doc.as_bytes()).expect("traces JSON must parse");
            let traces = parsed.get("traces").and_then(|v| v.as_array()).unwrap();
            assert_eq!(traces.len(), 1);
            assert_eq!(
                traces[0].get("reason").and_then(|v| v.as_str()),
                Some("error")
            );
        }
        let empty = TraceRetention::new(None, None).to_json();
        assert!(crate::json::parse(empty.as_bytes()).is_ok(), "{empty}");
    }

    #[test]
    fn ring_is_bounded() {
        let retention = TraceRetention::new(Some(0), None);
        for i in 0..(RETAINED_CAPACITY as u64 + 10) {
            retention.observe(i, "GET", "/healthz", 200, 1, HIST);
        }
        assert_eq!(retention.entries().len(), RETAINED_CAPACITY);
        assert_eq!(retention.retained(), RETAINED_CAPACITY as u64 + 10);
        assert_eq!(retention.entries()[0].trace_id, 10);
    }
}
