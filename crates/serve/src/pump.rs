//! Shared accept-queue + worker-pool plumbing.
//!
//! Both tiers of the serving stack — the dataset server ([`crate::server`])
//! and the router front (`exq-router`) — move connections the same way:
//! one nonblocking accept thread pushes sockets into a bounded queue,
//! `threads` workers pop and serve them to completion, and a full queue
//! answers an immediate rejection (load shedding) instead of letting
//! latency grow unbounded. This module is that machinery, factored out
//! so the two tiers cannot drift apart; what *serving a connection*
//! means is the caller's closure.

use crate::http::{self, Limits, Request, Response};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Pool sizing and identification.
pub struct PumpOptions {
    /// Worker threads popping the connection queue.
    pub threads: usize,
    /// Queue depth beyond which new connections are rejected.
    pub queue_depth: usize,
    /// Thread-name prefix (`"{prefix}-worker-{i}"`, `"{prefix}-accept"`).
    pub name: &'static str,
}

struct Shared {
    queue: Mutex<VecDeque<TcpStream>>,
    cv: Condvar,
    shutdown: Arc<AtomicBool>,
    depth: usize,
}

/// A running pump. Trip the shutdown flag, then [`Pump::join`]: the
/// accept thread exits, workers drain the queue and finish in-flight
/// connections.
pub struct Pump {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Pump {
    /// Wake any parked workers and join every thread. The caller must
    /// have stored `true` into the shutdown flag first.
    pub fn join(self) {
        self.shared.cv.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Start the accept thread and worker pool over `listener` (which must
/// already be nonblocking). `on_reject` answers connections shed at a
/// full queue; `serve` owns everything else.
pub fn start(
    listener: TcpListener,
    options: &PumpOptions,
    shutdown: Arc<AtomicBool>,
    on_reject: impl Fn(TcpStream) + Send + Sync + 'static,
    serve: impl Fn(TcpStream) + Send + Sync + 'static,
) -> std::io::Result<Pump> {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        shutdown,
        depth: options.queue_depth,
    });
    let serve = Arc::new(serve);
    let mut threads = Vec::with_capacity(options.threads.max(1) + 1);
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("{}-accept", options.name))
                .spawn(move || accept_loop(&listener, &shared, &on_reject))?,
        );
    }
    for i in 0..options.threads.max(1) {
        let shared = Arc::clone(&shared);
        let serve = Arc::clone(&serve);
        threads.push(
            std::thread::Builder::new()
                .name(format!("{}-worker-{i}", options.name))
                .spawn(move || worker_loop(&shared, &*serve))?,
        );
    }
    Ok(Pump { shared, threads })
}

fn accept_loop(listener: &TcpListener, shared: &Shared, on_reject: &impl Fn(TcpStream)) {
    // Adaptive poll: the listener is nonblocking (so shutdown can
    // interrupt the loop), which makes the nap below a floor on request
    // latency. Poll hot for ~50ms after the last connection so a busy
    // server answers in microseconds, then back off to 5ms when idle.
    let mut idle_polls = 0u32;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                idle_polls = 0;
                let mut queue = shared.queue.lock().expect("conn queue poisoned");
                if queue.len() >= shared.depth {
                    drop(queue);
                    on_reject(stream);
                } else {
                    queue.push_back(stream);
                    drop(queue);
                    shared.cv.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                idle_polls = idle_polls.saturating_add(1);
                std::thread::sleep(if idle_polls < 256 {
                    Duration::from_micros(200)
                } else {
                    Duration::from_millis(5)
                });
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop(shared: &Shared, serve: &impl Fn(TcpStream)) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("conn queue poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("conn queue poisoned");
                queue = guard;
            }
        };
        match stream {
            Some(stream) => serve(stream),
            None => return,
        }
    }
}

/// Answer a shed connection with `response` and close it gently: write,
/// half-close, then drain whatever request bytes are in flight so the
/// close is a FIN rather than an RST that races the response off the
/// wire.
pub fn reject(mut stream: TcpStream, response: &Response) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let _ = stream.write_all(&response.to_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 512];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// The standard load-shedding response both tiers send at a full queue:
/// `503` with a 1-second `Retry-After`, which [`crate::client`]'s retry
/// helper and the CLI's append path honor.
pub fn busy_response() -> Response {
    Response::error(503, "server busy; retry shortly").with_header("retry-after", "1")
}

/// Serve requests off one accepted connection until it closes: set the
/// shared timeout discipline (100ms reads so shutdown polls, 5s
/// writes), loop `serve_one` with a pipelining carry buffer until it
/// asks to stop, then shut the socket down both ways. Both serving
/// tiers run their per-request logic inside this one loop so their
/// connection lifecycle cannot drift.
pub fn serve_connection(
    mut stream: TcpStream,
    mut serve_one: impl FnMut(&mut TcpStream, &mut Vec<u8>) -> bool,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut carry = Vec::with_capacity(1024);
    while serve_one(&mut stream, &mut carry) {}
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Accumulate bytes in `carry` until one full request parses, then
/// drain exactly the parsed bytes (anything after them is the start of
/// the next pipelined request and stays for the next call). `Ok(None)`
/// means no request will arrive: the peer closed, the connection sat
/// idle past the deadline, or shutdown began — all with zero buffered
/// bytes, so closing silently is correct. A *partial* request at the
/// deadline is a protocol error (408). Shared by both serving tiers so
/// their connection semantics cannot drift.
pub fn read_request(
    stream: &mut TcpStream,
    limits: &Limits,
    deadline: Instant,
    carry: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> Result<Option<Request>, Response> {
    let mut chunk = [0u8; 4096];
    loop {
        match http::parse_request(carry, limits) {
            Ok(Some((request, consumed))) => {
                carry.drain(..consumed);
                return Ok(Some(request));
            }
            Ok(None) => {}
            Err(e) => return Err(Response::error(e.status(), &e.to_string())),
        }
        if carry.is_empty() && shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        // exq-lint: allow(L002): read-deadline check, never reaches explanation results
        if Instant::now() >= deadline {
            return if carry.is_empty() {
                Ok(None) // idle connection, not a slow request
            } else {
                Err(Response::error(408, "timed out reading request"))
            };
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if carry.is_empty() {
                    Ok(None)
                } else {
                    Err(Response::error(400, "connection closed mid-request"))
                };
            }
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return Err(Response::error(400, "read error")),
        }
    }
}
