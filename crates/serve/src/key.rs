//! Canonical cache keys for explanation requests.
//!
//! Two requests that mean the same thing must produce the **same** key,
//! and any semantic difference must produce a **different** one. The
//! key is the full canonical encoding string — collision-free by
//! construction; hashing is used only to pick a cache shard
//! ([`fnv1a`]), never to identify an entry.
//!
//! Canonicalization rules:
//!
//! * **Stable field order** — fields are emitted in one fixed sequence
//!   regardless of how the request spelled them (JSON object order,
//!   question-file whitespace, and flag order never matter because the
//!   key is built from the *parsed* structures).
//! * **Normalized floats** — every `f64` is encoded via its IEEE bits
//!   with `-0.0` folded to `0.0` and all NaNs folded to one bit
//!   pattern, so `1e-4` and `0.0001` collide and `0.1 + 0.2` does not
//!   collide with `0.3`.
//! * **Commutative structure is sorted** — conjuncts/disjuncts of a
//!   predicate and operands of `+`/`*` are encoded then sorted, so
//!   `a and b` collides with `b and a`.
//! * **Names, not indices** — attributes are encoded as `Rel.attr`
//!   through the dataset's schema, so the key survives schema-object
//!   identity and relation numbering.
//!
//! Execution details that cannot change the response — thread counts,
//! metrics flags — are deliberately **not** part of the key: results
//! are bit-identical at every thread count (the PR 2 contract), so a
//! cached document is valid for any of them.

use exq_core::prelude::*;
use exq_core::question::NumExpr;
use exq_relstore::aggregate::AggFunc;
use exq_relstore::{AttrRef, DatabaseSchema, Predicate, Value};
use std::fmt::Write as _;

/// Everything that identifies an explanation request semantically.
#[derive(Debug, Clone)]
pub struct CanonicalRequest<'a> {
    /// Endpoint tag (`"explain"` or `"report"`): the two produce
    /// different documents from the same question.
    pub endpoint: &'a str,
    /// Catalog dataset name.
    pub dataset: &'a str,
    /// Dataset epoch the request was evaluated against. Appends bump
    /// the epoch, so answers computed before an append can never be
    /// served after it — same question, new data, different key.
    pub epoch: u64,
    /// The parsed user question.
    pub question: &'a UserQuestion,
    /// Explanation attributes (cube dimensions).
    pub attrs: &'a [AttrRef],
    /// How many explanations to return.
    pub top_k: usize,
    /// Ranking degree.
    pub kind: DegreeKind,
    /// Top-K minimality strategy.
    pub strategy: TopKStrategy,
    /// Minimality tie-break polarity.
    pub polarity: MinimalityPolarity,
    /// Support threshold, if any.
    pub min_support: Option<f64>,
    /// Whether the naive engine was forced.
    pub naive: bool,
}

/// Build the canonical key string for a request against `schema`.
pub fn cache_key(schema: &DatabaseSchema, req: &CanonicalRequest<'_>) -> String {
    let mut key = String::with_capacity(256);
    let _ = write!(
        key,
        "v1;endpoint={};dataset={};epoch={};dir={:?};smoothing={};",
        req.endpoint,
        escape(req.dataset),
        req.epoch,
        req.question.direction,
        canon_f64(req.question.query.smoothing),
    );
    key.push_str("aggs=[");
    for agg in &req.question.query.aggregates {
        let _ = write!(
            key,
            "({},{});",
            encode_agg_func(schema, &agg.func),
            encode_predicate(schema, &agg.selection),
        );
    }
    key.push_str("];");
    let _ = write!(key, "expr={};", encode_expr(&req.question.query.expr));
    // Dimension *set*: cube output is order-independent.
    let mut dims: Vec<String> = req.attrs.iter().map(|a| schema.attr_name(*a)).collect();
    dims.sort();
    let _ = write!(key, "attrs={};", dims.join(","));
    let _ = write!(
        key,
        "top={};by={:?};strategy={:?};polarity={:?};naive={};min_support={};",
        req.top_k,
        req.kind,
        req.strategy,
        req.polarity,
        req.naive,
        req.min_support.map_or("none".to_string(), canon_f64),
    );
    key
}

/// An `f64` by normalized IEEE bits: `-0.0` → `0.0`, all NaNs → one
/// canonical NaN. Semantically equal numerals collide; different values
/// never do.
pub fn canon_f64(v: f64) -> String {
    let canon = if v.is_nan() {
        f64::NAN.to_bits() // one canonical quiet NaN
    } else if v == 0.0 {
        0 // folds -0.0
    } else {
        v.to_bits()
    };
    format!("f64:{canon:016x}")
}

/// The `;dataset=…;epoch=…;` fragment every key for `dataset` at
/// `epoch` contains (and, because delimiters are escaped, no other
/// key can). The warm-start loader matches persisted entries against
/// the booted catalog with it: an entry whose dataset/epoch fragment
/// matches no current dataset was computed against data this process
/// does not hold and must be dropped, never served.
pub(crate) fn dataset_epoch_fragment(dataset: &str, epoch: u64) -> String {
    format!(";dataset={};epoch={};", escape(dataset), epoch)
}

fn escape(s: &str) -> String {
    // Keep the key unambiguous: escape the delimiters the encoding uses.
    s.replace('\\', "\\\\")
        .replace(';', "\\;")
        .replace(',', "\\,")
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => format!("bool:{b}"),
        Value::Int(i) => format!("int:{i}"),
        Value::Float(f) => canon_f64(*f),
        Value::Str(s) => format!("str:{}", escape(s)),
    }
}

fn encode_agg_func(schema: &DatabaseSchema, f: &AggFunc) -> String {
    match f {
        AggFunc::CountStar => "count(*)".to_string(),
        AggFunc::CountDistinct(a) => format!("count_distinct({})", schema.attr_name(*a)),
        AggFunc::Sum(a) => format!("sum({})", schema.attr_name(*a)),
        AggFunc::Avg(a) => format!("avg({})", schema.attr_name(*a)),
        AggFunc::Min(a) => format!("min({})", schema.attr_name(*a)),
        AggFunc::Max(a) => format!("max({})", schema.attr_name(*a)),
    }
}

fn encode_predicate(schema: &DatabaseSchema, p: &Predicate) -> String {
    match p {
        Predicate::True => "true".to_string(),
        Predicate::False => "false".to_string(),
        Predicate::Atom(a) => format!(
            "atom({},{:?},{})",
            schema.attr_name(a.attr),
            a.op,
            encode_value(&a.value)
        ),
        Predicate::And(children) => {
            // Conjunction is commutative: sort the encoded children.
            let mut parts: Vec<String> = children
                .iter()
                .map(|c| encode_predicate(schema, c))
                .collect();
            parts.sort();
            format!("and({})", parts.join("&"))
        }
        Predicate::Or(children) => {
            let mut parts: Vec<String> = children
                .iter()
                .map(|c| encode_predicate(schema, c))
                .collect();
            parts.sort();
            format!("or({})", parts.join("|"))
        }
        Predicate::Not(inner) => format!("not({})", encode_predicate(schema, inner)),
    }
}

fn encode_expr(e: &NumExpr) -> String {
    match e {
        NumExpr::Const(c) => canon_f64(*c),
        NumExpr::Agg(i) => format!("q{i}"),
        NumExpr::Add(a, b) => {
            // IEEE addition commutes (a+b == b+a bitwise): sort operands.
            let mut ops = [encode_expr(a), encode_expr(b)];
            ops.sort();
            format!("add({},{})", ops[0], ops[1])
        }
        NumExpr::Mul(a, b) => {
            let mut ops = [encode_expr(a), encode_expr(b)];
            ops.sort();
            format!("mul({},{})", ops[0], ops[1])
        }
        NumExpr::Sub(a, b) => format!("sub({},{})", encode_expr(a), encode_expr(b)),
        NumExpr::Div(a, b) => format!("div({},{})", encode_expr(a), encode_expr(b)),
        NumExpr::Log(a) => format!("log({})", encode_expr(a)),
        NumExpr::Exp(a) => format!("exp({})", encode_expr(a)),
        NumExpr::Neg(a) => format!("neg({})", encode_expr(a)),
    }
}

/// FNV-1a over the key bytes — used only for shard selection.
pub fn fnv1a(key: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::{Atom, CmpOp, SchemaBuilder, ValueType as T};

    fn schema() -> DatabaseSchema {
        SchemaBuilder::new()
            .relation(
                "R",
                &[("id", T::Int), ("g", T::Str), ("ok", T::Str)],
                &["id"],
            )
            .build()
            .unwrap()
    }

    fn base_request<'a>(question: &'a UserQuestion, attrs: &'a [AttrRef]) -> CanonicalRequest<'a> {
        CanonicalRequest {
            endpoint: "explain",
            dataset: "test",
            epoch: 0,
            question,
            attrs,
            top_k: 5,
            kind: DegreeKind::Intervention,
            strategy: TopKStrategy::MinimalSelfJoin,
            polarity: MinimalityPolarity::PreferGeneral,
            min_support: None,
            naive: false,
        }
    }

    fn question_with(schema: &DatabaseSchema, smoothing: f64, swap: bool) -> UserQuestion {
        let ok = schema.attr("R", "ok").unwrap();
        let g = schema.attr("R", "g").unwrap();
        let atoms = |sw: bool| {
            let a = Predicate::Atom(Atom::eq(ok, "y"));
            let b = Predicate::Atom(Atom {
                attr: g,
                op: CmpOp::Ne,
                value: "z".into(),
            });
            if sw {
                Predicate::And(vec![b, a])
            } else {
                Predicate::And(vec![a, b])
            }
        };
        UserQuestion::new(
            NumericalQuery::ratio(
                AggregateQuery::count_star(atoms(swap)),
                AggregateQuery::count_star(Predicate::Atom(Atom::eq(ok, "n"))),
            )
            .with_smoothing(smoothing),
            Direction::High,
        )
    }

    #[test]
    fn semantically_equal_requests_collide() {
        let s = schema();
        let g = [s.attr("R", "g").unwrap()];
        // Same smoothing spelled two ways, conjuncts in swapped order.
        let q1 = question_with(&s, 1e-4, false);
        let q2 = question_with(&s, 0.0001, true);
        assert_eq!(
            cache_key(&s, &base_request(&q1, &g)),
            cache_key(&s, &base_request(&q2, &g))
        );
    }

    #[test]
    fn negative_zero_min_support_collides_with_zero() {
        let s = schema();
        let g = [s.attr("R", "g").unwrap()];
        let q = question_with(&s, 1e-4, false);
        let mut a = base_request(&q, &g);
        let mut b = base_request(&q, &g);
        a.min_support = Some(0.0);
        b.min_support = Some(-0.0);
        assert_eq!(cache_key(&s, &a), cache_key(&s, &b));
        let none = base_request(&q, &g);
        assert_ne!(cache_key(&s, &a), cache_key(&s, &none));
    }

    #[test]
    fn attr_order_is_canonicalized() {
        let s = schema();
        let g = s.attr("R", "g").unwrap();
        let ok = s.attr("R", "ok").unwrap();
        let q = question_with(&s, 1e-4, false);
        let fwd = [g, ok];
        let rev = [ok, g];
        assert_eq!(
            cache_key(&s, &base_request(&q, &fwd)),
            cache_key(&s, &base_request(&q, &rev))
        );
    }

    #[test]
    fn distinct_configs_do_not_collide() {
        let s = schema();
        let g = [s.attr("R", "g").unwrap()];
        let q = question_with(&s, 1e-4, false);
        let base = cache_key(&s, &base_request(&q, &g));
        let variants: Vec<CanonicalRequest<'_>> = vec![
            CanonicalRequest {
                top_k: 7,
                ..base_request(&q, &g)
            },
            CanonicalRequest {
                kind: DegreeKind::Aggravation,
                ..base_request(&q, &g)
            },
            CanonicalRequest {
                strategy: TopKStrategy::NoMinimal,
                ..base_request(&q, &g)
            },
            CanonicalRequest {
                polarity: MinimalityPolarity::PreferSpecific,
                ..base_request(&q, &g)
            },
            CanonicalRequest {
                naive: true,
                ..base_request(&q, &g)
            },
            CanonicalRequest {
                min_support: Some(0.25),
                ..base_request(&q, &g)
            },
            CanonicalRequest {
                dataset: "other",
                ..base_request(&q, &g)
            },
            CanonicalRequest {
                endpoint: "report",
                ..base_request(&q, &g)
            },
            CanonicalRequest {
                epoch: 1,
                ..base_request(&q, &g)
            },
        ];
        let mut keys: Vec<String> = variants.iter().map(|v| cache_key(&s, v)).collect();
        keys.push(base);
        let unique: std::collections::BTreeSet<&String> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "{keys:#?}");
    }

    #[test]
    fn different_smoothing_and_question_differ() {
        let s = schema();
        let g = [s.attr("R", "g").unwrap()];
        let q1 = question_with(&s, 1e-4, false);
        let q2 = question_with(&s, 1e-3, false);
        assert_ne!(
            cache_key(&s, &base_request(&q1, &g)),
            cache_key(&s, &base_request(&q2, &g))
        );
    }

    #[test]
    fn float_canonicalization() {
        assert_eq!(canon_f64(0.0), canon_f64(-0.0));
        assert_eq!(canon_f64(1e-4), canon_f64(0.0001));
        assert_eq!(canon_f64(f64::NAN), canon_f64(-f64::NAN));
        assert_ne!(canon_f64(0.1 + 0.2), canon_f64(0.3));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: shard placement (and therefore eviction order) must
        // not drift between builds.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("exq"), fnv1a("exq"));
        assert_ne!(fnv1a("a"), fnv1a("b"));
    }
}
