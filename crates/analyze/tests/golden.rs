//! Golden-file tests over the bad-fixture corpus.
//!
//! Each fixture is `fixtures/bad/NAME.schema.exq` plus an optional
//! `NAME.question.exq`, with the expected diagnostics in
//! `NAME.expected` — one `CODE file:line:col` line per diagnostic, in
//! emission order. Regenerate after an intentional analyzer change
//! with `EXQ_BLESS=1 cargo test -p exq-analyze --test golden`.

use exq_analyze::{analyze, SourceFile};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad")
}

fn actual_lines(schema: &SourceFile, questions: &[SourceFile]) -> String {
    let analysis = analyze(Some(schema), questions);
    let mut out = String::new();
    for d in &analysis.diagnostics {
        out.push_str(&format!(
            "{} {}:{}:{}\n",
            d.code, d.file, d.span.line, d.span.col
        ));
    }
    out
}

#[test]
fn bad_fixtures_report_expected_codes() {
    let dir = fixture_dir();
    let bless = std::env::var_os("EXQ_BLESS").is_some();
    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("fixture dir")
        .filter_map(|e| {
            e.ok()?
                .file_name()
                .to_str()?
                .strip_suffix(".schema.exq")
                .map(str::to_string)
        })
        .collect();
    names.sort();
    assert!(names.len() >= 6, "fixture corpus went missing: {names:?}");
    let mut failures = Vec::new();
    for name in &names {
        let schema_text = fs::read_to_string(dir.join(format!("{name}.schema.exq"))).unwrap();
        let schema = SourceFile::schema("schema", schema_text);
        let questions: Vec<SourceFile> =
            fs::read_to_string(dir.join(format!("{name}.question.exq")))
                .ok()
                .map(|text| SourceFile::question("question", text))
                .into_iter()
                .collect();
        let actual = actual_lines(&schema, &questions);
        let expected_path = dir.join(format!("{name}.expected"));
        if bless {
            fs::write(&expected_path, &actual).unwrap();
            continue;
        }
        let expected = fs::read_to_string(&expected_path)
            .unwrap_or_else(|_| panic!("missing {expected_path:?}; run with EXQ_BLESS=1"));
        if actual != expected {
            failures.push(format!(
                "fixture `{name}`:\n--- expected ---\n{expected}--- actual ---\n{actual}"
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn acceptance_fixture_reports_cycle_unknown_and_mismatch() {
    let dir = fixture_dir();
    let schema = SourceFile::schema(
        "schema",
        fs::read_to_string(dir.join("acceptance.schema.exq")).unwrap(),
    );
    let question = SourceFile::question(
        "question",
        fs::read_to_string(dir.join("acceptance.question.exq")).unwrap(),
    );
    let analysis = analyze(Some(&schema), std::slice::from_ref(&question));
    let codes: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code).collect();
    // One run surfaces all three distinct error codes.
    assert!(codes.contains(&"E007"), "cycle missing: {codes:?}");
    assert!(codes.contains(&"E002"), "unknown attr missing: {codes:?}");
    assert!(codes.contains(&"E008"), "type mismatch missing: {codes:?}");
    // Every diagnostic carries a real position.
    for d in &analysis.diagnostics {
        assert!(d.span.line > 0 && d.span.col > 0, "{d:?}");
    }
    // Both renderings agree on the codes.
    let pretty = analysis.render_pretty(&[&schema, &question]);
    let json = analysis.render_json();
    for code in ["E007", "E002", "E008"] {
        assert!(pretty.contains(&format!("error[{code}]")), "{pretty}");
        assert!(json.contains(&format!("\"code\":\"{code}\"")), "{json}");
    }
    assert!(
        pretty.contains("schema:") && pretty.contains("question:"),
        "{pretty}"
    );
}

#[test]
fn good_assets_are_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../assets");
    for (schema, questions) in [
        ("schemas/dblp.exq", vec!["questions/bump.exq"]),
        (
            "schemas/natality.exq",
            vec!["questions/q_marital.exq", "questions/q_race.exq"],
        ),
    ] {
        let s = SourceFile::schema(schema, fs::read_to_string(root.join(schema)).unwrap());
        let qs: Vec<SourceFile> = questions
            .iter()
            .map(|q| SourceFile::question(*q, fs::read_to_string(root.join(q)).unwrap()))
            .collect();
        let analysis = analyze(Some(&s), &qs);
        assert!(
            !analysis.has_errors(),
            "{schema}: {}",
            analysis.render_json()
        );
    }
}
