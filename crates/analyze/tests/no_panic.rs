//! The analyzer must never panic, whatever bytes it is fed: it is the
//! component that runs *before* validation, so its own robustness is
//! the whole point. Feed it arbitrary (lossily-decoded) byte soup as
//! schema, as question, and as both, and require a normal return.

use exq_analyze::{analyze, SourceFile};
use proptest::prelude::*;

fn mutate(base: &str, edits: &[(u16, u8)]) -> String {
    // Splice arbitrary bytes into otherwise well-formed text so the
    // generator also explores "almost valid" inputs, where tolerant
    // parsing does the most work.
    let mut bytes = base.as_bytes().to_vec();
    for &(pos, b) in edits {
        let i = pos as usize % (bytes.len() + 1);
        if i == bytes.len() {
            bytes.push(b);
        } else {
            bytes[i] = b;
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

const SCHEMA_BASE: &str = "relation R(id: int key, year: int, venue: str)\n\
                           relation S(rid: int key, w: float)\n\
                           fk S(rid) <-> R\n";
const QUESTION_BASE: &str = "agg a = count(*) where year >= 2000 and venue = 'x'\n\
                             agg b = sum(S.w)\nexpr a / b\ndir high\nsmoothing 0.1\n";

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    #[test]
    fn analyzer_never_panics_on_arbitrary_bytes(
        schema_bytes in proptest::collection::vec(any::<u8>(), 0..200),
        question_bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let schema_text = String::from_utf8_lossy(&schema_bytes).into_owned();
        let question_text = String::from_utf8_lossy(&question_bytes).into_owned();
        let schema = SourceFile::schema("s", schema_text);
        let question = SourceFile::question("q", question_text);
        let analysis = analyze(Some(&schema), std::slice::from_ref(&question));
        // Rendering must not panic either.
        let _ = analysis.render_pretty(&[&schema, &question]);
        let _ = analysis.render_json();
        let _ = analyze(None, std::slice::from_ref(&question));
    }

    #[test]
    fn analyzer_never_panics_on_mutated_valid_input(
        schema_edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..8),
        question_edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 0..8),
    ) {
        let schema = SourceFile::schema("s", mutate(SCHEMA_BASE, &schema_edits));
        let question = SourceFile::question("q", mutate(QUESTION_BASE, &question_edits));
        let analysis = analyze(Some(&schema), std::slice::from_ref(&question));
        let _ = analysis.render_pretty(&[&schema, &question]);
        let _ = analysis.render_json();
    }
}
