//! Loose predicate parser: same grammar as
//! `exq_relstore::parse::parse_predicate`, but attribute references are
//! *not* resolved against a schema — atoms keep their raw text and spans
//! so the semantic passes can report unknown attributes, ambiguity, and
//! type mismatches with precise locations.

use crate::diag::{Diagnostic, Span};
use exq_relstore::CmpOp;

/// A literal in a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// String literal.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Lit {
    /// Human-readable kind for messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Lit::Str(_) => "string",
            Lit::Int(_) => "integer",
            Lit::Float(_) => "float",
            Lit::Bool(_) => "boolean",
            Lit::Null => "null",
        }
    }

    /// Numeric view, when the literal is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Lit::Int(i) => Some(*i as f64),
            Lit::Float(f) => Some(*f),
            _ => None,
        }
    }
}

/// Unresolved predicate AST.
#[derive(Debug, Clone, PartialEq)]
pub enum PredAst {
    /// `attr op literal`.
    Atom {
        /// Attribute text (`attr` or `Rel.attr`).
        attr: String,
        /// Where the attribute appears.
        attr_span: Span,
        /// Comparison operator.
        op: CmpOp,
        /// The literal.
        lit: Lit,
        /// Where the literal appears.
        lit_span: Span,
    },
    /// Conjunction.
    And(Vec<PredAst>),
    /// Disjunction.
    Or(Vec<PredAst>),
    /// Negation.
    Not(Box<PredAst>),
    /// `true` / `false`.
    Const(bool),
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Op(CmpOp),
    LParen,
    RParen,
    And,
    Or,
    Not,
    True,
    False,
    Null,
}

struct Lexer {
    toks: Vec<(Tok, usize, usize)>, // token, col, char length
}

fn lex(
    text: &str,
    file: &str,
    line: usize,
    col0: usize,
    diags: &mut Vec<Diagnostic>,
) -> Option<Lexer> {
    let chars: Vec<char> = text.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut ok = true;
    while i < chars.len() {
        let c = chars[i];
        let col = i + 1;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                toks.push((Tok::LParen, col, 1));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, col, 1));
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                let start = i;
                i += 1;
                let mut closed = false;
                while i < chars.len() {
                    if chars[i] == quote {
                        if i + 1 < chars.len() && chars[i + 1] == quote {
                            s.push(quote);
                            i += 2;
                            continue;
                        }
                        i += 1;
                        closed = true;
                        break;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                if !closed {
                    diags.push(Diagnostic::error(
                        "E011",
                        file,
                        Span::new(line, col0 + col, i - start),
                        "unterminated string literal",
                    ));
                    ok = false;
                    break;
                }
                toks.push((Tok::Str(s), col, i - start));
            }
            '=' => {
                toks.push((Tok::Op(CmpOp::Eq), col, 1));
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                toks.push((Tok::Op(CmpOp::Ne), col, 2));
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push((Tok::Op(CmpOp::Le), col, 2));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    toks.push((Tok::Op(CmpOp::Ne), col, 2));
                    i += 2;
                } else {
                    toks.push((Tok::Op(CmpOp::Lt), col, 1));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    toks.push((Tok::Op(CmpOp::Ge), col, 2));
                    i += 2;
                } else {
                    toks.push((Tok::Op(CmpOp::Gt), col, 1));
                    i += 1;
                }
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    is_float |= chars[i] == '.';
                    i += 1;
                }
                let t: String = chars[start..i].iter().collect();
                let tok = if is_float {
                    t.parse().map(Tok::Float).map_err(|_| ())
                } else {
                    t.parse().map(Tok::Int).map_err(|_| ())
                };
                match tok {
                    Ok(tok) => toks.push((tok, col, i - start)),
                    Err(_) => {
                        diags.push(Diagnostic::error(
                            "E011",
                            file,
                            Span::new(line, col0 + col, i - start),
                            format!("bad number `{t}`"),
                        ));
                        ok = false;
                        break;
                    }
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let tok = match word.to_ascii_lowercase().as_str() {
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "not" => Tok::Not,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "null" => Tok::Null,
                    _ => Tok::Ident(word),
                };
                toks.push((tok, col, i - start));
            }
            other => {
                diags.push(Diagnostic::error(
                    "E011",
                    file,
                    Span::new(line, col0 + col, 1),
                    format!("unexpected character `{other}` in predicate"),
                ));
                ok = false;
                break;
            }
        }
    }
    ok.then_some(Lexer { toks })
}

struct Parser<'a> {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
    file: &'a str,
    line: usize,
    col0: usize,
    end_col: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn here(&self) -> Span {
        match self.toks.get(self.pos) {
            Some(&(_, col, len)) => Span::new(self.line, self.col0 + col, len),
            None => Span::new(self.line, self.col0 + self.end_col, 1),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic::error("E011", self.file, span, message)
    }

    fn expr(&mut self) -> Result<PredAst, Diagnostic> {
        let mut parts = vec![self.conjunction()?];
        while self.peek() == Some(&Tok::Or) {
            self.next();
            parts.push(self.conjunction()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            PredAst::Or(parts)
        })
    }

    fn conjunction(&mut self) -> Result<PredAst, Diagnostic> {
        let mut parts = vec![self.unary()?];
        while self.peek() == Some(&Tok::And) {
            self.next();
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            PredAst::And(parts)
        })
    }

    fn unary(&mut self) -> Result<PredAst, Diagnostic> {
        match self.peek() {
            Some(Tok::Not) => {
                self.next();
                Ok(PredAst::Not(Box::new(self.unary()?)))
            }
            Some(Tok::LParen) => {
                self.next();
                let inner = self.expr()?;
                match self.peek() {
                    Some(Tok::RParen) => {
                        self.next();
                        Ok(inner)
                    }
                    _ => Err(self.err(self.here(), "expected `)`")),
                }
            }
            Some(Tok::True) => {
                self.next();
                Ok(PredAst::Const(true))
            }
            Some(Tok::False) => {
                self.next();
                Ok(PredAst::Const(false))
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<PredAst, Diagnostic> {
        let attr_span = self.here();
        let attr = match self.next() {
            Some(Tok::Ident(name)) => name,
            other => {
                return Err(self.err(
                    attr_span,
                    format!("expected attribute, got {}", tok_name(other.as_ref())),
                ))
            }
        };
        let op_span = self.here();
        let op = match self.next() {
            Some(Tok::Op(op)) => op,
            other => {
                return Err(self.err(
                    op_span,
                    format!(
                        "expected comparison operator, got {}",
                        tok_name(other.as_ref())
                    ),
                ))
            }
        };
        let lit_span = self.here();
        let lit = match self.next() {
            Some(Tok::Str(s)) => Lit::Str(s),
            Some(Tok::Int(i)) => Lit::Int(i),
            Some(Tok::Float(f)) => Lit::Float(f),
            Some(Tok::True) => Lit::Bool(true),
            Some(Tok::False) => Lit::Bool(false),
            Some(Tok::Null) => Lit::Null,
            other => {
                return Err(self.err(
                    lit_span,
                    format!("expected literal, got {}", tok_name(other.as_ref())),
                ))
            }
        };
        Ok(PredAst::Atom {
            attr,
            attr_span,
            op,
            lit,
            lit_span,
        })
    }
}

fn tok_name(t: Option<&Tok>) -> String {
    match t {
        None => "end of input".to_string(),
        Some(Tok::Ident(w)) => format!("`{w}`"),
        Some(Tok::Str(_)) => "a string literal".to_string(),
        Some(Tok::Int(i)) => format!("`{i}`"),
        Some(Tok::Float(f)) => format!("`{f}`"),
        Some(Tok::Op(op)) => format!("`{op}`"),
        Some(Tok::LParen) => "`(`".to_string(),
        Some(Tok::RParen) => "`)`".to_string(),
        Some(Tok::And) => "`and`".to_string(),
        Some(Tok::Or) => "`or`".to_string(),
        Some(Tok::Not) => "`not`".to_string(),
        Some(Tok::True) => "`true`".to_string(),
        Some(Tok::False) => "`false`".to_string(),
        Some(Tok::Null) => "`null`".to_string(),
    }
}

/// Parse predicate text at `line` (with `col0` char offset) into an
/// unresolved AST. Syntax faults are pushed as `E011` diagnostics and
/// yield `None` — semantic passes then skip this predicate.
pub fn parse_pred_loose(
    file: &str,
    text: &str,
    line: usize,
    col0: usize,
    diags: &mut Vec<Diagnostic>,
) -> Option<PredAst> {
    let lexer = lex(text, file, line, col0, diags)?;
    if lexer.toks.is_empty() {
        return Some(PredAst::Const(true));
    }
    let mut parser = Parser {
        toks: lexer.toks,
        pos: 0,
        file,
        line,
        col0,
        end_col: text.chars().count() + 1,
    };
    match parser.expr() {
        Ok(ast) => {
            if parser.pos != parser.toks.len() {
                let span = parser.here();
                diags.push(parser.err(span, "trailing tokens after predicate"));
                return None;
            }
            Some(ast)
        }
        Err(d) => {
            diags.push(d);
            None
        }
    }
}

/// Visit every atom in the AST.
pub fn for_each_atom<'a>(ast: &'a PredAst, f: &mut impl FnMut(&'a PredAst)) {
    match ast {
        PredAst::Atom { .. } => f(ast),
        PredAst::And(parts) | PredAst::Or(parts) => {
            for p in parts {
                for_each_atom(p, f);
            }
        }
        PredAst::Not(inner) => for_each_atom(inner, f),
        PredAst::Const(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> (Option<PredAst>, Vec<Diagnostic>) {
        let mut diags = Vec::new();
        let ast = parse_pred_loose("q.exq", text, 3, 10, &mut diags);
        (ast, diags)
    }

    #[test]
    fn parses_conjunctions() {
        let (ast, diags) = parse("venue = 'SIGMOD' and year >= 2000");
        assert!(diags.is_empty());
        let Some(PredAst::And(parts)) = ast else {
            panic!("expected And")
        };
        assert_eq!(parts.len(), 2);
        let PredAst::Atom { attr, lit, .. } = &parts[0] else {
            panic!("expected Atom")
        };
        assert_eq!(attr, "venue");
        assert_eq!(*lit, Lit::Str("SIGMOD".to_string()));
    }

    #[test]
    fn spans_are_offset() {
        let (ast, _) = parse("year >= 2000");
        let Some(PredAst::Atom {
            attr_span,
            lit_span,
            ..
        }) = ast
        else {
            panic!("expected Atom")
        };
        assert_eq!(attr_span, Span::new(3, 11, 4)); // col0 10 + col 1
        assert_eq!(lit_span, Span::new(3, 19, 4));
    }

    #[test]
    fn syntax_faults_are_reported_not_fatal() {
        for text in ["venue =", "= 'x'", "(a = 1", "a = 1 extra", "'open"] {
            let (ast, diags) = parse(text);
            assert!(ast.is_none(), "`{text}`");
            assert_eq!(diags.len(), 1, "`{text}`");
            assert_eq!(diags[0].code, "E011");
            assert!(diags[0].span.col > 10, "`{text}` col {}", diags[0].span.col);
        }
    }

    #[test]
    fn empty_is_true() {
        let (ast, diags) = parse("   ");
        assert_eq!(ast, Some(PredAst::Const(true)));
        assert!(diags.is_empty());
    }

    #[test]
    fn atom_visitor_reaches_nested() {
        let (ast, _) = parse("not (a = 1 or (b = 2 and c = 3))");
        let mut n = 0;
        for_each_atom(&ast.unwrap(), &mut |_| n += 1);
        assert_eq!(n, 3);
    }
}
