//! Tolerant (loose) parsers for the `.exq` schema and question DSLs.
//!
//! The strict parsers in `exq_relstore::parse` / `exq_core::qparse` stop
//! at the first fault — correct for the execution path, useless for a
//! checker that should report *every* problem in one run. The loose
//! parsers here never fail: syntax faults become `E010`/`E011`
//! diagnostics and parsing resumes on the next line, producing a partial
//! AST the semantic passes can still analyze.

use crate::diag::{Diagnostic, Span};
pub(crate) use exq_relstore::text::{col_of, strip_comment};
use exq_relstore::ValueType;

/// Span of the subslice `sub` of `line` on line `line_no`.
pub(crate) fn span_of(line_no: usize, line: &str, sub: &str) -> Span {
    Span::new(line_no, col_of(line, sub), sub.chars().count())
}

// ---------------------------------------------------------------------
// Schema AST
// ---------------------------------------------------------------------

/// One `name: type [key]` column.
#[derive(Debug, Clone)]
pub struct ColDecl {
    /// Column name.
    pub name: String,
    /// Where the name appears.
    pub span: Span,
    /// Declared type; `None` when the type token was invalid (already
    /// reported; treated as `any` downstream).
    pub ty: Option<ValueType>,
    /// Member of the primary key?
    pub key: bool,
}

/// One `relation Name(…)` declaration.
#[derive(Debug, Clone)]
pub struct RelDecl {
    /// Relation name.
    pub name: String,
    /// Where the name appears.
    pub span: Span,
    /// The columns, in declaration order.
    pub columns: Vec<ColDecl>,
}

/// One `fk From(cols) -> To` / `<->` declaration.
#[derive(Debug, Clone)]
pub struct FkDecl {
    /// Source relation name.
    pub from: String,
    /// Where the source name appears.
    pub from_span: Span,
    /// Source columns with their spans.
    pub cols: Vec<(String, Span)>,
    /// `<->` (back-and-forth) rather than `->`.
    pub back_and_forth: bool,
    /// Target relation name.
    pub to: String,
    /// Where the target name appears.
    pub to_span: Span,
}

/// Loose schema parse result.
#[derive(Debug, Default)]
pub struct SchemaAst {
    /// Every syntactically recognizable relation declaration.
    pub relations: Vec<RelDecl>,
    /// Every syntactically recognizable foreign key.
    pub fks: Vec<FkDecl>,
}

/// Parse schema text, pushing `E010` diagnostics for unparsable lines
/// and recovering on the next one.
pub fn parse_schema_loose(file: &str, text: &str, diags: &mut Vec<Diagnostic>) -> SchemaAst {
    let mut ast = SchemaAst::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("relation ") {
            if let Some(rel) = parse_relation_loose(file, raw, rest.trim(), line_no, diags) {
                ast.relations.push(rel);
            }
        } else if let Some(rest) = line.strip_prefix("fk ") {
            if let Some(fk) = parse_fk_loose(file, raw, rest.trim(), line_no, diags) {
                ast.fks.push(fk);
            }
        } else {
            let word = line.split_whitespace().next().unwrap_or(line);
            let mut d = Diagnostic::error(
                "E010",
                file,
                span_of(line_no, raw, word),
                format!("expected `relation` or `fk`, got `{word}`"),
            );
            if let Some(s) = crate::diag::suggest(word, ["relation", "fk"]) {
                d = d.with_help(format!("did you mean `{s}`?"));
            }
            diags.push(d);
        }
    }
    ast
}

fn parse_relation_loose(
    file: &str,
    raw: &str,
    rest: &str,
    line_no: usize,
    diags: &mut Vec<Diagnostic>,
) -> Option<RelDecl> {
    let Some(open) = rest.find('(') else {
        diags.push(Diagnostic::error(
            "E010",
            file,
            span_of(line_no, raw, rest),
            "expected `(` after relation name",
        ));
        return None;
    };
    let name = rest[..open].trim();
    if name.is_empty() {
        diags.push(Diagnostic::error(
            "E010",
            file,
            span_of(line_no, raw, rest),
            "missing relation name",
        ));
        return None;
    }
    let body = if let Some(b) = rest[open + 1..].strip_suffix(')') {
        b
    } else {
        diags.push(
            Diagnostic::error(
                "E010",
                file,
                Span::new(line_no, col_of(raw, rest) + rest.chars().count(), 1),
                "expected `)` at end of relation declaration",
            )
            .with_help("close the column list with `)`"),
        );
        // Recover: analyze the columns that are there.
        &rest[open + 1..]
    };
    let mut columns = Vec::new();
    for col_spec in body.split(',') {
        let col_spec = col_spec.trim();
        if col_spec.is_empty() {
            diags.push(Diagnostic::error(
                "E010",
                file,
                span_of(line_no, raw, body),
                "empty column declaration",
            ));
            continue;
        }
        let Some((col_name, col_rest)) = col_spec.split_once(':') else {
            diags.push(
                Diagnostic::error(
                    "E010",
                    file,
                    span_of(line_no, raw, col_spec),
                    format!("expected `name: type` in `{col_spec}`"),
                )
                .with_help("declare columns as `name: str|int|float|bool|any [key]`"),
            );
            continue;
        };
        let col_name = col_name.trim();
        let mut parts = col_rest.split_whitespace();
        let ty = match parts.next() {
            Some("str") => Some(ValueType::Str),
            Some("int") => Some(ValueType::Int),
            Some("float") => Some(ValueType::Float),
            Some("bool") => Some(ValueType::Bool),
            Some("any") => Some(ValueType::Any),
            Some(other) => {
                let mut d = Diagnostic::error(
                    "E010",
                    file,
                    span_of(line_no, raw, other),
                    format!("unknown type `{other}`"),
                );
                if let Some(s) = crate::diag::suggest(other, ["str", "int", "float", "bool", "any"])
                {
                    d = d.with_help(format!("did you mean `{s}`?"));
                }
                diags.push(d);
                None
            }
            None => {
                diags.push(Diagnostic::error(
                    "E010",
                    file,
                    span_of(line_no, raw, col_spec),
                    format!("missing type in `{col_spec}`"),
                ));
                None
            }
        };
        let key = match parts.next() {
            None => false,
            Some("key") => true,
            Some(other) => {
                diags.push(
                    Diagnostic::error(
                        "E010",
                        file,
                        span_of(line_no, raw, other),
                        format!("unexpected token `{other}` after type"),
                    )
                    .with_help("only `key` may follow the column type"),
                );
                false
            }
        };
        if let Some(extra) = parts.next() {
            diags.push(Diagnostic::error(
                "E010",
                file,
                span_of(line_no, raw, extra),
                format!("trailing tokens in `{col_spec}`"),
            ));
        }
        columns.push(ColDecl {
            name: col_name.to_string(),
            span: span_of(line_no, raw, col_name),
            ty,
            key,
        });
    }
    Some(RelDecl {
        name: name.to_string(),
        span: span_of(line_no, raw, name),
        columns,
    })
}

fn parse_fk_loose(
    file: &str,
    raw: &str,
    rest: &str,
    line_no: usize,
    diags: &mut Vec<Diagnostic>,
) -> Option<FkDecl> {
    let (head, target, back_and_forth) = if let Some((h, t)) = rest.split_once("<->") {
        (h.trim(), t.trim(), true)
    } else if let Some((h, t)) = rest.split_once("->") {
        (h.trim(), t.trim(), false)
    } else {
        diags.push(
            Diagnostic::error(
                "E010",
                file,
                span_of(line_no, raw, rest),
                "expected `->` or `<->` in foreign key",
            )
            .with_help("declare foreign keys as `fk From(col, …) -> To` (or `<->`)"),
        );
        return None;
    };
    if target.is_empty() {
        diags.push(Diagnostic::error(
            "E010",
            file,
            Span::new(line_no, col_of(raw, rest) + rest.chars().count(), 1),
            "missing foreign-key target relation",
        ));
        return None;
    }
    let Some(open) = head.find('(') else {
        diags.push(Diagnostic::error(
            "E010",
            file,
            span_of(line_no, raw, head),
            "expected `(columns)` after relation",
        ));
        return None;
    };
    let body = head[open + 1..].strip_suffix(')').unwrap_or_else(|| {
        diags.push(Diagnostic::error(
            "E010",
            file,
            Span::new(line_no, col_of(raw, head) + head.chars().count(), 1),
            "expected `)` after foreign-key columns",
        ));
        &head[open + 1..]
    });
    let from = head[..open].trim();
    let cols: Vec<(String, Span)> = body
        .split(',')
        .map(str::trim)
        .filter(|c| !c.is_empty())
        .map(|c| (c.to_string(), span_of(line_no, raw, c)))
        .collect();
    if from.is_empty() || cols.is_empty() {
        diags.push(Diagnostic::error(
            "E010",
            file,
            span_of(line_no, raw, head),
            "malformed foreign-key declaration",
        ));
        return None;
    }
    Some(FkDecl {
        from: from.to_string(),
        from_span: span_of(line_no, raw, from),
        cols,
        back_and_forth,
        to: target.to_string(),
        to_span: span_of(line_no, raw, target),
    })
}

// ---------------------------------------------------------------------
// Question AST
// ---------------------------------------------------------------------

/// One `agg name = func(arg) [where …]` declaration.
#[derive(Debug, Clone)]
pub struct AggDecl {
    /// The aggregate's name (referenced from `expr`).
    pub name: String,
    /// Where the name appears.
    pub name_span: Span,
    /// Function name, lowercased (`count`, `sum`, …).
    pub func: String,
    /// Where the function call appears.
    pub func_span: Span,
    /// Argument text (`*`, `Attr`, `distinct Attr`), with its span.
    pub arg: Option<(String, Span)>,
    /// `where` clause: predicate text, source line, and 0-based char
    /// offset of the text within that line (for error columns).
    pub selection: Option<(String, usize, usize)>,
}

/// `dir high|low`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirDecl {
    /// Question asks why the value is high.
    High,
    /// Question asks why the value is low.
    Low,
}

/// Loose question parse result.
#[derive(Debug, Default)]
pub struct QuestionAst {
    /// Aggregate declarations in order.
    pub aggs: Vec<AggDecl>,
    /// `expr` text, its line, and the 0-based char offset within it.
    pub expr: Option<(String, usize, usize)>,
    /// `dir` directive with its span.
    pub dir: Option<(DirDecl, Span)>,
    /// `smoothing` constant with its span.
    pub smoothing: Option<(f64, Span)>,
    /// Number of lines in the file (for end-of-file spans).
    pub lines: usize,
}

/// Parse question text, pushing `E011` diagnostics for unparsable lines
/// and recovering on the next one.
pub fn parse_question_loose(file: &str, text: &str, diags: &mut Vec<Diagnostic>) -> QuestionAst {
    let mut ast = QuestionAst::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        ast.lines = line_no;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("agg ") {
            parse_agg_loose(file, raw, rest, line_no, diags, &mut ast);
        } else if let Some(rest) = line.strip_prefix("expr ") {
            let t = rest.trim();
            ast.expr = Some((t.to_string(), line_no, col_of(raw, t) - 1));
        } else if let Some(rest) = line.strip_prefix("dir ") {
            let t = rest.trim();
            match t {
                "high" => ast.dir = Some((DirDecl::High, span_of(line_no, raw, t))),
                "low" => ast.dir = Some((DirDecl::Low, span_of(line_no, raw, t))),
                other => diags.push(
                    Diagnostic::error(
                        "E011",
                        file,
                        span_of(line_no, raw, t),
                        format!("direction must be high|low, got `{other}`"),
                    )
                    .with_help("write `dir high` or `dir low`"),
                ),
            }
        } else if let Some(rest) = line.strip_prefix("smoothing ") {
            let t = rest.trim();
            match t.parse::<f64>() {
                Ok(v) => ast.smoothing = Some((v, span_of(line_no, raw, t))),
                Err(_) => diags.push(Diagnostic::error(
                    "E011",
                    file,
                    span_of(line_no, raw, t),
                    format!("bad smoothing constant `{t}`"),
                )),
            }
        } else {
            let word = line.split_whitespace().next().unwrap_or(line);
            let mut d = Diagnostic::error(
                "E011",
                file,
                span_of(line_no, raw, word),
                format!("expected agg/expr/dir/smoothing, got `{word}`"),
            );
            if let Some(s) = crate::diag::suggest(word, ["agg", "expr", "dir", "smoothing"]) {
                d = d.with_help(format!("did you mean `{s}`?"));
            }
            diags.push(d);
        }
    }
    ast
}

fn parse_agg_loose(
    file: &str,
    raw: &str,
    rest: &str,
    line_no: usize,
    diags: &mut Vec<Diagnostic>,
    ast: &mut QuestionAst,
) {
    let Some((name, spec)) = rest.split_once('=') else {
        diags.push(
            Diagnostic::error(
                "E011",
                file,
                span_of(line_no, raw, rest),
                "expected `agg name = function(...)`",
            )
            .with_help("e.g. `agg q1 = count(*) where year >= 2000`"),
        );
        return;
    };
    let name = name.trim();
    if name.is_empty() {
        diags.push(Diagnostic::error(
            "E011",
            file,
            span_of(line_no, raw, rest),
            "missing aggregate name before `=`",
        ));
        return;
    }
    let spec = spec.trim();
    let (func_part, where_part) = match split_where(spec) {
        Some((f, w)) => (f.trim(), Some(w.trim())),
        None => (spec, None),
    };
    let (func, arg) = match func_part.find('(') {
        Some(open) => {
            let fname = func_part[..open].trim();
            let arg_text = func_part[open + 1..]
                .strip_suffix(')')
                .unwrap_or_else(|| {
                    diags.push(Diagnostic::error(
                        "E011",
                        file,
                        Span::new(
                            line_no,
                            col_of(raw, func_part) + func_part.chars().count(),
                            1,
                        ),
                        "expected `)` after aggregate arguments",
                    ));
                    &func_part[open + 1..]
                })
                .trim();
            (fname, Some(arg_text))
        }
        None => {
            diags.push(
                Diagnostic::error(
                    "E011",
                    file,
                    span_of(line_no, raw, func_part),
                    "expected `(` in aggregate function",
                )
                .with_help(
                    "aggregates are count(*), count(distinct A), sum(A), avg(A), min(A), max(A)",
                ),
            );
            (func_part, None)
        }
    };
    ast.aggs.push(AggDecl {
        name: name.to_string(),
        name_span: span_of(line_no, raw, name),
        func: func.to_ascii_lowercase(),
        func_span: span_of(line_no, raw, func),
        arg: arg.map(|a| (a.to_string(), span_of(line_no, raw, a))),
        selection: where_part.map(|w| (w.to_string(), line_no, col_of(raw, w) - 1)),
    });
}

/// Split at the top-level ` where ` keyword (outside quotes).
fn split_where(spec: &str) -> Option<(&str, &str)> {
    let lower = spec.to_ascii_lowercase();
    let mut in_quote: Option<char> = None;
    let bytes = lower.as_bytes();
    for i in 0..bytes.len() {
        // `where ` and the quote delimiters are ASCII; bytes inside a
        // multi-byte character can never start a match, and slicing at
        // them would panic.
        if !lower.is_char_boundary(i) {
            continue;
        }
        let c = bytes[i] as char;
        match in_quote {
            Some(q) if c == q => in_quote = None,
            Some(_) => {}
            None if c == '\'' || c == '"' => in_quote = Some(c),
            None => {
                if lower[i..].starts_with("where ")
                    && (i == 0 || bytes[i - 1].is_ascii_whitespace())
                {
                    return Some((&spec[..i], &spec[i + "where ".len()..]));
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_recovers_past_errors() {
        let text = "relation A(id: blob key)\nwibble\nrelation B(id: int key)\nfk A(id) => B\n";
        let mut diags = Vec::new();
        let ast = parse_schema_loose("s.exq", text, &mut diags);
        // Both relations survive despite the bad type and the bad line.
        assert_eq!(ast.relations.len(), 2);
        assert_eq!(ast.fks.len(), 0);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["E010", "E010", "E010"]);
        // The unknown type has no type but keeps its name.
        assert_eq!(ast.relations[0].columns[0].ty, None);
        assert!(ast.relations[0].columns[0].key);
    }

    #[test]
    fn schema_spans_point_at_fragments() {
        let text = "relation A(id: blob key)";
        let mut diags = Vec::new();
        parse_schema_loose("s.exq", text, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].span.line, 1);
        assert_eq!(diags[0].span.col, text.find("blob").unwrap() + 1);
        assert_eq!(diags[0].span.len, 4);
    }

    #[test]
    fn question_recovers_past_errors() {
        let text = "agg a = frob(x)\nagg b = count(*) where x = 1\nexpr a / b\ndir sideways\n";
        let mut diags = Vec::new();
        let ast = parse_question_loose("q.exq", text, &mut diags);
        assert_eq!(ast.aggs.len(), 2);
        assert!(ast.expr.is_some());
        assert!(ast.dir.is_none());
        assert_eq!(diags.len(), 1); // only the bad dir is a syntax fault
        assert_eq!(diags[0].code, "E011");
        // The unknown function parses loosely; the semantic pass flags it.
        assert_eq!(ast.aggs[0].func, "frob");
    }

    #[test]
    fn where_split_is_quote_safe() {
        assert_eq!(
            split_where("count(*) where a = 'where b'"),
            Some(("count(*) ", "a = 'where b'"))
        );
        assert_eq!(split_where("count(*)"), None);
    }
}
