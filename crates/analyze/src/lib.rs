//! # exq-analyze — static analysis for the `.exq` DSLs
//!
//! A compiler-style, multi-diagnostic semantic analyzer over schema and
//! question files: unlike the strict execution-path parsers
//! (`exq_relstore::parse`, `exq_core::qparse`), which stop at the first
//! fault, this crate parses *tolerantly* and reports **every** problem in
//! one run, each as a [`Diagnostic`] with a stable code, a `line:col`
//! span, and — where the analyzer has a concrete fix — a help
//! suggestion.
//!
//! The lint catalogue (see [`diag`] for the full code table) covers the
//! faults the engine would reject anyway (unknown names, duplicate
//! declarations, foreign-key arity/type errors, cyclic join graphs) plus
//! paper-motivated structural checks the engine cannot see until run
//! time: predicate type mismatches (`year = 'SIGMOD'`), unsatisfiable
//! constant ranges (`year >= 2007 and year <= 2004`), division-prone
//! `expr`s without a smoothing constant, Proposition 3.11's
//! one-back-and-forth-key-per-relation bound, join-graph connectivity,
//! and the cube dimensionality budget.
//!
//! ```
//! use exq_analyze::{analyze, SourceFile};
//!
//! let schema = SourceFile::schema("s.exq", "relation R(id: int key, year: int)");
//! let q = SourceFile::question("q.exq", "agg a = count(*) where year = 'x'\ndir high");
//! let analysis = analyze(Some(&schema), &[q.clone()]);
//! assert_eq!(analysis.diagnostics[0].code, "E008"); // type mismatch
//! assert!(analysis.has_errors());
//! println!("{}", analysis.render_pretty(&[&schema, &q]));
//! ```

pub mod diag;
pub mod passes;
pub mod pred;
pub mod render;
pub mod syntax;

pub use diag::{Diagnostic, Severity, Span};
pub use passes::SymbolTable;
pub use render::{render_json, render_pretty};

use exq_relstore::DatabaseSchema;

/// What kind of source file a [`SourceFile`] holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Schema DSL (`relation …` / `fk …`).
    Schema,
    /// Question DSL (`agg …` / `expr …` / `dir …` / `smoothing …`).
    Question,
    /// Rust source, analyzed by `exq-lint` (this crate only renders
    /// its diagnostics).
    Rust,
}

/// A named input file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Display name (usually the path), used in diagnostics.
    pub name: String,
    /// Full text.
    pub text: String,
    /// Schema or question.
    pub kind: SourceKind,
}

impl SourceFile {
    /// A schema source.
    pub fn schema(name: impl Into<String>, text: impl Into<String>) -> SourceFile {
        SourceFile {
            name: name.into(),
            text: text.into(),
            kind: SourceKind::Schema,
        }
    }

    /// A question source.
    pub fn question(name: impl Into<String>, text: impl Into<String>) -> SourceFile {
        SourceFile {
            name: name.into(),
            text: text.into(),
            kind: SourceKind::Question,
        }
    }

    /// A Rust source (used by `exq-lint` for rendering).
    pub fn rust(name: impl Into<String>, text: impl Into<String>) -> SourceFile {
        SourceFile {
            name: name.into(),
            text: text.into(),
            kind: SourceKind::Rust,
        }
    }
}

/// The result of an analysis run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Every finding, ordered by (file, line, column).
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Would the execution path reject these inputs?
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Pretty terminal rendering (see [`render::render_pretty`]).
    pub fn render_pretty(&self, sources: &[&SourceFile]) -> String {
        render::render_pretty(&self.diagnostics, sources)
    }

    /// JSON rendering (see [`render::render_json`]).
    pub fn render_json(&self) -> String {
        render::render_json(&self.diagnostics)
    }
}

fn sort_key(d: &Diagnostic, order: &[&str]) -> (usize, usize, usize) {
    let file_rank = order
        .iter()
        .position(|f| *f == d.file)
        .unwrap_or(usize::MAX);
    (file_rank, d.span.line, d.span.col)
}

/// Analyze a schema and any number of question files against it.
///
/// With `schema: None` the questions are checked without name
/// resolution (no symbol table), which still catches syntax faults,
/// duplicate names, undeclared `expr` references, missing directives,
/// and unsmoothed division — use [`analyze_question_against`] when a
/// validated [`DatabaseSchema`] is already in hand.
pub fn analyze(schema: Option<&SourceFile>, questions: &[SourceFile]) -> Analysis {
    let mut diags = Vec::new();
    let table = schema.map(|s| {
        let ast = syntax::parse_schema_loose(&s.name, &s.text, &mut diags);
        passes::check_schema(&s.name, &ast, &mut diags)
    });
    for q in questions {
        let ast = syntax::parse_question_loose(&q.name, &q.text, &mut diags);
        match &table {
            Some(t) => passes::check_question(&q.name, &ast, t, &mut diags),
            None => passes::check_question_schema_free(&q.name, &ast, &mut diags),
        }
    }
    let order: Vec<&str> = schema
        .iter()
        .map(|s| s.name.as_str())
        .chain(questions.iter().map(|q| q.name.as_str()))
        .collect();
    diags.sort_by_key(|d| sort_key(d, &order));
    Analysis { diagnostics: diags }
}

/// Analyze a question file against an already-validated schema (the
/// explainer's load path: the schema parsed strictly, so only the
/// question needs checking).
pub fn analyze_question_against(schema: &DatabaseSchema, question: &SourceFile) -> Analysis {
    let table = SymbolTable::from_schema(schema);
    let mut diags = Vec::new();
    let ast = syntax::parse_question_loose(&question.name, &question.text, &mut diags);
    passes::check_question(&question.name, &ast, &table, &mut diags);
    diags.sort_by_key(|d| (d.span.line, d.span.col));
    Analysis { diagnostics: diags }
}

/// Analyze a schema file alone.
pub fn analyze_schema(schema: &SourceFile) -> Analysis {
    analyze(Some(schema), &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_runs() {
        let schema = SourceFile::schema("s.exq", "relation R(id: int key, year: int)");
        let q = SourceFile::question("q.exq", "agg a = count(*) where year = 'x'\ndir high");
        let analysis = analyze(Some(&schema), &[q]);
        assert_eq!(analysis.error_count(), 1);
        assert_eq!(analysis.diagnostics[0].code, "E008");
    }

    #[test]
    fn diagnostics_are_ordered() {
        let schema = SourceFile::schema(
            "s.exq",
            "relation R(id: int key)\nrelation R(id: int key)\n",
        );
        let q = SourceFile::question("q.exq", "agg a = count(*)\nagg a = count(*)\ndir high");
        let analysis = analyze(Some(&schema), &[q]);
        let files: Vec<&str> = analysis
            .diagnostics
            .iter()
            .map(|d| d.file.as_str())
            .collect();
        assert!(!files.is_empty());
        // Schema diagnostics come before question diagnostics.
        let first_q = files.iter().position(|f| *f == "q.exq").unwrap();
        assert!(files[..first_q].iter().all(|f| *f == "s.exq"), "{files:?}");
        assert!(files[first_q..].iter().all(|f| *f == "q.exq"), "{files:?}");
    }

    #[test]
    fn schema_free_question_analysis() {
        let q = SourceFile::question("q.exq", "agg a = count(*)\nexpr a / b\n");
        let analysis = analyze(None, &[q]);
        let codes: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"E009"), "{codes:?}"); // `b` undeclared
        assert!(codes.contains(&"E014"), "{codes:?}"); // missing dir
        assert!(codes.contains(&"W004"), "{codes:?}"); // unsmoothed division
    }
}
