//! The [`Diagnostic`] type and the stable code catalogue.
//!
//! Codes are shared with `exq_relstore::Error::code` and
//! `exq_core::Error::code` so a fault class gets the same code whether
//! it is caught statically by `exq check` or dynamically by the engine:
//!
//! | code | meaning |
//! |------|---------|
//! | E001 | unknown relation |
//! | E002 | unknown attribute |
//! | E003 | duplicate relation declaration |
//! | E004 | duplicate attribute declaration |
//! | E005 | foreign-key arity mismatch |
//! | E006 | foreign-key type mismatch |
//! | E007 | cyclic foreign-key join graph |
//! | E008 | predicate type mismatch |
//! | E009 | unknown aggregate name in `expr` |
//! | E010 | schema syntax error |
//! | E011 | question syntax error |
//! | E012 | relation without a key column |
//! | E013 | ambiguous attribute reference |
//! | E014 | missing directive (`dir`, or `expr` with several aggregates) |
//! | E015 | duplicate aggregate name |
//! | W001 | several back-and-forth keys on one relation (Prop 3.11) |
//! | W002 | disconnected foreign-key join graph |
//! | W003 | unsatisfiable constant range |
//! | W004 | division in `expr` without smoothing |
//! | W005 | cube dimensionality over the enumeration budget |

use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The input will be rejected by the engine.
    Error,
    /// The input is legal but likely not what the author meant, or
    /// threatens performance/convergence.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// A half-open source region on one line (1-based line and column,
/// counted in chars; `len` is the caret width, at least 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line. Line 0 means "whole file" (e.g. a missing
    /// directive).
    pub line: usize,
    /// 1-based char column; 0 when unknown.
    pub col: usize,
    /// Caret width in chars.
    pub len: usize,
}

impl Span {
    /// Span covering `len` chars starting at `line:col`.
    pub fn new(line: usize, col: usize, len: usize) -> Span {
        Span {
            line,
            col,
            len: len.max(1),
        }
    }

    /// Whole-file span (no line/col known).
    pub fn file() -> Span {
        Span {
            line: 0,
            col: 0,
            len: 1,
        }
    }
}

/// One finding: a coded, located message with an optional suggestion.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`E0xx` error, `W0xx` warning); see the module docs.
    pub code: &'static str,
    /// Error or warning (consistent with the code's prefix).
    pub severity: Severity,
    /// Name of the file the span points into.
    pub file: String,
    /// Where in the file.
    pub span: Span,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the analyzer has a concrete suggestion.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(code: &'static str, file: &str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            file: file.to_string(),
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Build a warning diagnostic.
    pub fn warning(code: &'static str, file: &str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            file: file.to_string(),
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a help suggestion.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

/// Levenshtein edit distance (small inputs only — identifier lengths).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// "Did you mean …?" — the closest candidate within an edit distance
/// budget of one third of the name (minimum 1, maximum 3), ties broken
/// by first occurrence. Case-insensitive exact matches always win.
pub fn suggest<'a>(name: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    let budget = (name.chars().count() / 3).clamp(1, 3);
    let mut best: Option<(usize, &str)> = None;
    for c in candidates {
        if c == name {
            continue;
        }
        let d = if c.eq_ignore_ascii_case(name) {
            0
        } else {
            edit_distance(name, c)
        };
        if d <= budget && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, c));
        }
    }
    best.map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        assert_eq!(edit_distance("year", "year"), 0);
        assert_eq!(edit_distance("yearr", "year"), 1);
        assert_eq!(edit_distance("venue", "value"), 2);
        assert_eq!(edit_distance("", "abc"), 3);
    }

    #[test]
    fn suggestions() {
        let cands = ["year", "venue", "pubid"];
        assert_eq!(suggest("yearr", cands), Some("year"));
        assert_eq!(suggest("Year", cands), Some("year"));
        assert_eq!(suggest("zzzzzz", cands), None);
        // An exact match is not a suggestion.
        assert_eq!(suggest("year", ["year"]), None);
    }

    #[test]
    fn span_widths() {
        assert_eq!(Span::new(1, 2, 0).len, 1);
        assert_eq!(Span::file().line, 0);
    }
}
