//! Semantic lint passes over the loose ASTs.
//!
//! Each pass appends to a shared diagnostic list; none of them aborts, so
//! one `exq check` run reports everything it can find. The schema passes
//! mirror `SchemaBuilder::build`'s validation (duplicates, keys, foreign
//! keys, acyclicity) and add the paper-motivated structural warnings the
//! builder does not enforce: Proposition 3.11's one-back-and-forth-key
//! bound, join-graph connectivity (a disconnected schema makes the
//! universal relation a cross product), and the cube dimensionality
//! budget.

use crate::diag::{suggest, Diagnostic, Span};
use crate::pred::{for_each_atom, parse_pred_loose, Lit, PredAst};
use crate::syntax::{QuestionAst, SchemaAst};
use exq_relstore::{CmpOp, DatabaseSchema, ValueType};

/// A resolved relation in the analyzer's symbol table.
#[derive(Debug, Clone)]
pub struct RelSym {
    /// Relation name.
    pub name: String,
    /// Columns: name and type (`None` when the declaration was faulty —
    /// treated as `any` so one error does not cascade).
    pub columns: Vec<(String, Option<ValueType>)>,
    /// Indices of the primary-key columns.
    pub pk: Vec<usize>,
}

/// Name-resolution table built from a loose AST (first declaration wins
/// on duplicates) or from an already-validated [`DatabaseSchema`].
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Relations in declaration order.
    pub relations: Vec<RelSym>,
}

impl SymbolTable {
    /// Build from a loose schema AST.
    pub fn from_ast(ast: &SchemaAst) -> SymbolTable {
        let mut table = SymbolTable::default();
        for rel in &ast.relations {
            if table.rel(&rel.name).is_some() {
                continue; // duplicate: reported by the duplicate pass
            }
            let mut columns = Vec::new();
            let mut pk = Vec::new();
            for col in &rel.columns {
                if columns.iter().any(|(n, _)| n == &col.name) {
                    continue;
                }
                if col.key {
                    pk.push(columns.len());
                }
                columns.push((col.name.clone(), col.ty));
            }
            table.relations.push(RelSym {
                name: rel.name.clone(),
                columns,
                pk,
            });
        }
        table
    }

    /// Build from a validated schema (used when only question files are
    /// being checked against an already-loaded database).
    pub fn from_schema(schema: &DatabaseSchema) -> SymbolTable {
        SymbolTable {
            relations: schema
                .relations()
                .iter()
                .map(|r| RelSym {
                    name: r.name.clone(),
                    columns: r
                        .attributes
                        .iter()
                        .map(|a| (a.name.clone(), Some(a.ty)))
                        .collect(),
                    pk: r.primary_key.clone(),
                })
                .collect(),
        }
    }

    fn rel(&self, name: &str) -> Option<(usize, &RelSym)> {
        self.relations
            .iter()
            .enumerate()
            .find(|(_, r)| r.name == name)
    }

    fn all_attr_names(&self) -> impl Iterator<Item = &str> {
        self.relations
            .iter()
            .flat_map(|r| r.columns.iter().map(|(n, _)| n.as_str()))
    }

    /// Resolve `attr` or `Rel.attr` to its declared type. Pushes E001 /
    /// E002 / E013 on failure and returns `None`.
    fn resolve(
        &self,
        file: &str,
        attr: &str,
        span: Span,
        diags: &mut Vec<Diagnostic>,
    ) -> Option<Option<ValueType>> {
        if let Some((rel_name, col_name)) = attr.split_once('.') {
            let Some((_, rel)) = self.rel(rel_name) else {
                let mut d =
                    Diagnostic::error("E001", file, span, format!("unknown relation `{rel_name}`"));
                if let Some(s) = suggest(rel_name, self.relations.iter().map(|r| r.name.as_str())) {
                    d = d.with_help(format!("did you mean `{s}.{col_name}`?"));
                }
                diags.push(d);
                return None;
            };
            let Some((_, ty)) = rel.columns.iter().find(|(n, _)| n == col_name) else {
                let mut d = Diagnostic::error(
                    "E002",
                    file,
                    span,
                    format!("unknown attribute `{rel_name}.{col_name}`"),
                );
                if let Some(s) = suggest(col_name, rel.columns.iter().map(|(n, _)| n.as_str())) {
                    d = d.with_help(format!("did you mean `{rel_name}.{s}`?"));
                }
                diags.push(d);
                return None;
            };
            return Some(*ty);
        }
        let matches: Vec<(&RelSym, Option<ValueType>)> = self
            .relations
            .iter()
            .filter_map(|r| {
                r.columns
                    .iter()
                    .find(|(n, _)| n == attr)
                    .map(|(_, ty)| (r, *ty))
            })
            .collect();
        match matches.as_slice() {
            [(_, ty)] => Some(*ty),
            [] => {
                let mut d =
                    Diagnostic::error("E002", file, span, format!("unknown attribute `{attr}`"));
                if let Some(s) = suggest(attr, self.all_attr_names()) {
                    d = d.with_help(format!("did you mean `{s}`?"));
                }
                diags.push(d);
                None
            }
            many => {
                let rels: Vec<&str> = many.iter().map(|(r, _)| r.name.as_str()).collect();
                diags.push(
                    Diagnostic::error(
                        "E013",
                        file,
                        span,
                        format!(
                            "attribute `{attr}` is ambiguous (declared in {})",
                            rels.join(", ")
                        ),
                    )
                    .with_help(format!("qualify it, e.g. `{}.{attr}`", rels[0])),
                );
                None
            }
        }
    }
}

// ---------------------------------------------------------------------
// Schema passes
// ---------------------------------------------------------------------

/// Run every schema pass.
pub fn check_schema(file: &str, ast: &SchemaAst, diags: &mut Vec<Diagnostic>) -> SymbolTable {
    let table = SymbolTable::from_ast(ast);
    schema_duplicates(file, ast, diags);
    schema_keys(file, ast, diags);
    schema_fks(file, ast, &table, diags);
    schema_graph(file, ast, &table, diags);
    schema_cube_budget(file, &table, diags);
    table
}

fn schema_duplicates(file: &str, ast: &SchemaAst, diags: &mut Vec<Diagnostic>) {
    let mut seen: Vec<&str> = Vec::new();
    for rel in &ast.relations {
        if seen.contains(&rel.name.as_str()) {
            diags.push(
                Diagnostic::error(
                    "E003",
                    file,
                    rel.span,
                    format!("duplicate relation `{}`", rel.name),
                )
                .with_help("the first declaration wins; remove or rename this one"),
            );
        } else {
            seen.push(&rel.name);
        }
        let mut cols: Vec<&str> = Vec::new();
        for col in &rel.columns {
            if cols.contains(&col.name.as_str()) {
                diags.push(Diagnostic::error(
                    "E004",
                    file,
                    col.span,
                    format!(
                        "duplicate attribute `{}` in relation `{}`",
                        col.name, rel.name
                    ),
                ));
            } else {
                cols.push(&col.name);
            }
        }
    }
}

fn schema_keys(file: &str, ast: &SchemaAst, diags: &mut Vec<Diagnostic>) {
    for rel in &ast.relations {
        if !rel.columns.is_empty() && !rel.columns.iter().any(|c| c.key) {
            diags.push(
                Diagnostic::error(
                    "E012",
                    file,
                    rel.span,
                    format!("relation `{}` declares no key column", rel.name),
                )
                .with_help("mark the identifying columns with `key`, e.g. `id: str key`"),
            );
        }
    }
}

fn schema_fks(file: &str, ast: &SchemaAst, table: &SymbolTable, diags: &mut Vec<Diagnostic>) {
    for fk in &ast.fks {
        let from = table.rel(&fk.from);
        if from.is_none() {
            let mut d = Diagnostic::error(
                "E001",
                file,
                fk.from_span,
                format!("unknown relation `{}` in foreign key", fk.from),
            );
            if let Some(s) = suggest(&fk.from, table.relations.iter().map(|r| r.name.as_str())) {
                d = d.with_help(format!("did you mean `{s}`?"));
            }
            diags.push(d);
        }
        let to = table.rel(&fk.to);
        if to.is_none() {
            let mut d = Diagnostic::error(
                "E001",
                file,
                fk.to_span,
                format!("unknown relation `{}` in foreign key", fk.to),
            );
            if let Some(s) = suggest(&fk.to, table.relations.iter().map(|r| r.name.as_str())) {
                d = d.with_help(format!("did you mean `{s}`?"));
            }
            diags.push(d);
        }
        let mut col_types: Vec<Option<ValueType>> = Vec::new();
        if let Some((_, from_rel)) = from {
            for (col, span) in &fk.cols {
                match from_rel.columns.iter().find(|(n, _)| n == col) {
                    Some((_, ty)) => col_types.push(*ty),
                    None => {
                        let mut d = Diagnostic::error(
                            "E002",
                            file,
                            *span,
                            format!("unknown attribute `{}.{col}` in foreign key", fk.from),
                        );
                        if let Some(s) =
                            suggest(col, from_rel.columns.iter().map(|(n, _)| n.as_str()))
                        {
                            d = d.with_help(format!("did you mean `{s}`?"));
                        }
                        diags.push(d);
                        col_types.push(None);
                    }
                }
            }
        }
        let Some((_, to_rel)) = to else { continue };
        if fk.cols.len() != to_rel.pk.len() {
            diags.push(
                Diagnostic::error(
                    "E005",
                    file,
                    fk.from_span,
                    format!(
                        "foreign key {} -> {} references {} column{} but the target's primary \
                         key has {}",
                        fk.from,
                        fk.to,
                        fk.cols.len(),
                        if fk.cols.len() == 1 { "" } else { "s" },
                        to_rel.pk.len()
                    ),
                )
                .with_help("a foreign key must cover the target's full primary key, in order"),
            );
            continue;
        }
        if from.is_none() {
            continue;
        }
        for (i, &pk_col) in to_rel.pk.iter().enumerate() {
            let (Some(from_ty), Some(to_ty)) = (col_types[i], to_rel.columns[pk_col].1) else {
                continue; // a faulty declaration already reported
            };
            let compatible =
                from_ty == to_ty || from_ty == ValueType::Any || to_ty == ValueType::Any;
            if !compatible {
                diags.push(
                    Diagnostic::error(
                        "E006",
                        file,
                        fk.cols[i].1,
                        format!(
                            "foreign key {} -> {}: column `{}` has type {from_ty} but target \
                             key `{}.{}` has type {to_ty}",
                            fk.from, fk.to, fk.cols[i].0, fk.to, to_rel.columns[pk_col].0
                        ),
                    )
                    .with_help("align the column types on both sides of the key"),
                );
            }
        }
    }
}

/// Cycle detection (union-find), connectivity, and the Proposition 3.11
/// back-and-forth bound.
fn schema_graph(file: &str, ast: &SchemaAst, table: &SymbolTable, diags: &mut Vec<Diagnostic>) {
    let n = table.relations.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut bf_counts = vec![0usize; n];
    for fk in &ast.fks {
        let (Some((a, _)), Some((b, _))) = (table.rel(&fk.from), table.rel(&fk.to)) else {
            continue;
        };
        if fk.back_and_forth {
            bf_counts[a] += 1;
            if bf_counts[a] == 2 {
                diags.push(
                    Diagnostic::warning(
                        "W001",
                        file,
                        fk.from_span,
                        format!(
                            "relation `{}` carries more than one back-and-forth foreign key",
                            fk.from
                        ),
                    )
                    .with_help(
                        "Proposition 3.11 guarantees single-pass fixpoint evaluation only with \
                         at most one back-and-forth key per relation; the intervention program \
                         may need recursive evaluation",
                    ),
                );
            }
        }
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra == rb {
            let kind = if fk.back_and_forth {
                "back-and-forth foreign key"
            } else {
                "foreign key"
            };
            diags.push(
                Diagnostic::error(
                    "E007",
                    file,
                    fk.from_span,
                    format!(
                        "{kind} {} {} {} closes a cycle in the join graph",
                        fk.from,
                        if fk.back_and_forth { "<->" } else { "->" },
                        fk.to
                    ),
                )
                .with_help(
                    "the universal relation and the intervention fixpoint require an acyclic \
                     foreign-key forest; remove this key or restructure the schema",
                ),
            );
        } else {
            parent[ra] = rb;
        }
    }
    // Connectivity: one warning per component beyond the first.
    if n >= 2 {
        let mut roots: Vec<usize> = Vec::new();
        for rel in &ast.relations {
            let Some((i, _)) = table.rel(&rel.name) else {
                continue;
            };
            let r = find(&mut parent, i);
            if !roots.contains(&r) {
                roots.push(r);
                if roots.len() >= 2 {
                    diags.push(
                        Diagnostic::warning(
                            "W002",
                            file,
                            rel.span,
                            format!(
                                "relation `{}` is not connected to `{}` by any foreign key",
                                rel.name, table.relations[0].name
                            ),
                        )
                        .with_help(
                            "the universal relation over a disconnected schema is a cross \
                             product; add a foreign key joining the components",
                        ),
                    );
                }
            }
        }
    }
}

fn schema_cube_budget(file: &str, table: &SymbolTable, diags: &mut Vec<Diagnostic>) {
    let dims: usize = table
        .relations
        .iter()
        .map(|r| r.columns.len().saturating_sub(r.pk.len()))
        .sum();
    let budget = exq_relstore::cube::MAX_CUBE_DIMS;
    if dims > budget {
        diags.push(
            Diagnostic::warning(
                "W005",
                file,
                Span::file(),
                format!(
                    "schema exposes {dims} non-key attributes as candidate cube dimensions, \
                     over the subset-enumeration budget of {budget}"
                ),
            )
            .with_help(
                "restrict candidate attributes with `--attrs Rel.a,Rel.b` when explaining; \
                 a cube over every attribute will be rejected at run time",
            ),
        );
    }
}

// ---------------------------------------------------------------------
// Question passes
// ---------------------------------------------------------------------

const AGG_FUNCS: [&str; 5] = ["count", "sum", "avg", "min", "max"];

/// Run every question pass against the schema's symbol table.
pub fn check_question(
    file: &str,
    ast: &QuestionAst,
    table: &SymbolTable,
    diags: &mut Vec<Diagnostic>,
) {
    question_aggs(file, ast, Some(table), diags);
    question_expr(file, ast, diags);
    question_directives(file, ast, diags);
}

/// Run the question passes that need no schema: duplicate/unknown
/// aggregates, predicate syntax and range satisfiability, `expr`
/// references, directive completeness. Attribute resolution and type
/// checks are skipped.
pub fn check_question_schema_free(file: &str, ast: &QuestionAst, diags: &mut Vec<Diagnostic>) {
    question_aggs(file, ast, None, diags);
    question_expr(file, ast, diags);
    question_directives(file, ast, diags);
}

fn question_aggs(
    file: &str,
    ast: &QuestionAst,
    table: Option<&SymbolTable>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut seen: Vec<&str> = Vec::new();
    for agg in &ast.aggs {
        if seen.contains(&agg.name.as_str()) {
            diags.push(
                Diagnostic::error(
                    "E015",
                    file,
                    agg.name_span,
                    format!("duplicate aggregate name `{}`", agg.name),
                )
                .with_help("each `agg` needs a distinct name for `expr` to reference"),
            );
        } else {
            seen.push(&agg.name);
        }
        if !AGG_FUNCS.contains(&agg.func.as_str()) {
            let mut d = Diagnostic::error(
                "E011",
                file,
                agg.func_span,
                format!("unknown aggregate function `{}`", agg.func),
            );
            d = match suggest(&agg.func, AGG_FUNCS) {
                Some(s) => d.with_help(format!("did you mean `{s}`?")),
                None => d.with_help("aggregates are count, sum, avg, min, max"),
            };
            diags.push(d);
        } else if let Some((arg, arg_span)) = &agg.arg {
            if let Some(table) = table {
                check_agg_arg(file, &agg.func, arg, *arg_span, table, diags);
            }
        }
        if let Some((text, line, col0)) = &agg.selection {
            if let Some(pred) = parse_pred_loose(file, text, *line, *col0, diags) {
                match table {
                    Some(table) => check_predicate(file, &pred, table, diags),
                    None => unsatisfiable_ranges(file, &pred, diags),
                }
            }
        }
    }
}

fn check_agg_arg(
    file: &str,
    func: &str,
    arg: &str,
    span: Span,
    table: &SymbolTable,
    diags: &mut Vec<Diagnostic>,
) {
    if func == "count" {
        if arg == "*" {
            return;
        }
        let Some(inner) = arg.strip_prefix("distinct ") else {
            diags.push(
                Diagnostic::error("E011", file, span, "count takes `*` or `distinct Attr`")
                    .with_help("write `count(*)` or `count(distinct Rel.attr)`"),
            );
            return;
        };
        table.resolve(file, inner.trim(), span, diags);
        return;
    }
    if arg.is_empty() {
        diags.push(Diagnostic::error(
            "E011",
            file,
            span,
            format!("{func} needs an attribute argument"),
        ));
        return;
    }
    if let Some(ty) = table.resolve(file, arg, span, diags) {
        // min/max order any type; sum/avg need numbers.
        if matches!(func, "sum" | "avg")
            && matches!(ty, Some(ValueType::Str) | Some(ValueType::Bool))
        {
            diags.push(
                Diagnostic::error(
                    "E008",
                    file,
                    span,
                    format!(
                        "{func}({arg}) aggregates a non-numeric attribute of type {}",
                        ty.expect("matched Some above")
                    ),
                )
                .with_help("sum/avg need an int or float attribute"),
            );
        }
    }
}

fn check_predicate(file: &str, pred: &PredAst, table: &SymbolTable, diags: &mut Vec<Diagnostic>) {
    for_each_atom(pred, &mut |atom| {
        let PredAst::Atom {
            attr,
            attr_span,
            op,
            lit,
            lit_span,
        } = atom
        else {
            return;
        };
        let Some(ty) = table.resolve(file, attr, *attr_span, diags) else {
            return;
        };
        let Some(ty) = ty else { return }; // faulty column declaration
        check_atom_types(file, attr, ty, *op, lit, *lit_span, diags);
    });
    unsatisfiable_ranges(file, pred, diags);
}

fn check_atom_types(
    file: &str,
    attr: &str,
    ty: ValueType,
    _op: CmpOp,
    lit: &Lit,
    lit_span: Span,
    diags: &mut Vec<Diagnostic>,
) {
    let mismatch = !matches!(
        (ty, lit),
        (ValueType::Any, _)
            | (_, Lit::Null)
            | (ValueType::Str, Lit::Str(_))
            | (
                ValueType::Int | ValueType::Float,
                Lit::Int(_) | Lit::Float(_)
            )
            | (ValueType::Bool, Lit::Bool(_))
    );
    if !mismatch {
        return;
    }
    let kind = lit.kind();
    let article = if kind.starts_with(['a', 'e', 'i', 'o', 'u']) {
        "an"
    } else {
        "a"
    };
    let mut d = Diagnostic::error(
        "E008",
        file,
        lit_span,
        format!(
            "type mismatch: attribute `{attr}` has type {ty} but is compared to {article} {kind} literal"
        ),
    );
    d = match (ty, lit) {
        (ValueType::Str, Lit::Int(i)) => d.with_help(format!("quote the value: `'{i}'`")),
        (ValueType::Str, Lit::Float(f)) => d.with_help(format!("quote the value: `'{f}'`")),
        (ValueType::Int | ValueType::Float, Lit::Str(s)) if s.parse::<f64>().is_ok() => {
            d.with_help(format!("remove the quotes: `{s}`"))
        }
        _ => d,
    };
    diags.push(d);
}

/// Detect conjunctions whose constant constraints on one attribute can
/// never hold, e.g. `year >= 2007 and year <= 2004` (W003).
fn unsatisfiable_ranges(file: &str, pred: &PredAst, diags: &mut Vec<Diagnostic>) {
    match pred {
        PredAst::And(parts) => {
            check_conjunction(file, parts, diags);
            for p in parts {
                unsatisfiable_ranges(file, p, diags);
            }
        }
        PredAst::Or(parts) => {
            for p in parts {
                unsatisfiable_ranges(file, p, diags);
            }
        }
        PredAst::Not(inner) => unsatisfiable_ranges(file, inner, diags),
        _ => {}
    }
}

fn check_conjunction(file: &str, parts: &[PredAst], diags: &mut Vec<Diagnostic>) {
    #[derive(Default)]
    struct Bounds {
        lo: Option<(f64, bool)>, // (bound, strict)
        hi: Option<(f64, bool)>,
        eq: Option<Lit>,
        reported: bool,
    }
    let mut by_attr: Vec<(&str, Bounds)> = Vec::new();
    for part in parts {
        let PredAst::Atom {
            attr,
            op,
            lit,
            lit_span,
            ..
        } = part
        else {
            continue;
        };
        let idx = match by_attr.iter().position(|(a, _)| a == attr) {
            Some(i) => i,
            None => {
                by_attr.push((attr, Bounds::default()));
                by_attr.len() - 1
            }
        };
        let b = &mut by_attr[idx].1;
        if b.reported {
            continue;
        }
        let mut conflict = false;
        match (op, lit.as_num()) {
            (CmpOp::Eq, _) => {
                if let Some(prev) = &b.eq {
                    let same = match (prev.as_num(), lit.as_num()) {
                        (Some(x), Some(y)) => x == y,
                        _ => prev == lit,
                    };
                    conflict = !same;
                } else {
                    b.eq = Some(lit.clone());
                }
            }
            (CmpOp::Ge, Some(v)) if b.lo.is_none_or(|(lo, _)| v > lo) => {
                b.lo = Some((v, false));
            }
            (CmpOp::Gt, Some(v))
                if b.lo
                    .is_none_or(|(lo, strict)| v > lo || (v == lo && !strict)) =>
            {
                b.lo = Some((v, true));
            }
            (CmpOp::Le, Some(v)) if b.hi.is_none_or(|(hi, _)| v < hi) => {
                b.hi = Some((v, false));
            }
            (CmpOp::Lt, Some(v))
                if b.hi
                    .is_none_or(|(hi, strict)| v < hi || (v == hi && !strict)) =>
            {
                b.hi = Some((v, true));
            }
            _ => {}
        }
        if !conflict {
            if let (Some((lo, lo_strict)), Some((hi, hi_strict))) = (b.lo, b.hi) {
                conflict = lo > hi || (lo == hi && (lo_strict || hi_strict));
            }
        }
        if !conflict {
            if let Some(v) = b.eq.as_ref().and_then(Lit::as_num) {
                if b.lo
                    .is_some_and(|(lo, strict)| v < lo || (v == lo && strict))
                    || b.hi
                        .is_some_and(|(hi, strict)| v > hi || (v == hi && strict))
                {
                    conflict = true;
                }
            }
        }
        if conflict {
            b.reported = true;
            diags.push(
                Diagnostic::warning(
                    "W003",
                    file,
                    *lit_span,
                    format!(
                        "constraints on `{attr}` in this conjunction are unsatisfiable — the \
                         aggregate is constantly empty"
                    ),
                )
                .with_help("check the constant bounds; this predicate selects no tuples"),
            );
        }
    }
}

fn question_expr(file: &str, ast: &QuestionAst, diags: &mut Vec<Diagnostic>) {
    let Some((text, line, col0)) = &ast.expr else {
        return;
    };
    let names: Vec<&str> = ast.aggs.iter().map(|a| a.name.as_str()).collect();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut depth = 0i64;
    let mut has_div = false;
    while i < chars.len() {
        let c = chars[i];
        if c == '(' {
            depth += 1;
            i += 1;
        } else if c == ')' {
            depth -= 1;
            if depth < 0 {
                diags.push(Diagnostic::error(
                    "E011",
                    file,
                    Span::new(*line, col0 + i + 1, 1),
                    "unbalanced `)` in expr",
                ));
                depth = 0;
            }
            i += 1;
        } else if c == '/' {
            has_div = true;
            i += 1;
        } else if c.is_ascii_digit()
            || (c == '.' && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit()))
        {
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            if word != "log" && word != "exp" && !names.contains(&word.as_str()) {
                let mut d = Diagnostic::error(
                    "E009",
                    file,
                    Span::new(*line, col0 + start + 1, i - start),
                    format!("expr references undeclared aggregate `{word}`"),
                );
                d = match suggest(&word, names.iter().copied()) {
                    Some(s) => d.with_help(format!("did you mean `{s}`?")),
                    None => {
                        d.with_help(format!("declare it first: `agg {word} = count(*) where …`"))
                    }
                };
                diags.push(d);
            }
        } else {
            i += 1;
        }
    }
    if depth > 0 {
        diags.push(Diagnostic::error(
            "E011",
            file,
            Span::new(*line, col0 + chars.len() + 1, 1),
            "unclosed `(` in expr",
        ));
    }
    let smoothed = ast.smoothing.is_some_and(|(v, _)| v > 0.0);
    if has_div && !smoothed {
        let div_pos = chars.iter().position(|&c| c == '/').unwrap_or(0);
        diags.push(
            Diagnostic::warning(
                "W004",
                file,
                Span::new(*line, col0 + div_pos + 1, 1),
                "expr divides but the question declares no smoothing constant",
            )
            .with_help(
                "an intervention can empty a denominator; add e.g. `smoothing 0.0001` \
                 (the paper's +epsilon in Section 5)",
            ),
        );
    }
}

fn question_directives(file: &str, ast: &QuestionAst, diags: &mut Vec<Diagnostic>) {
    if ast.aggs.is_empty() {
        diags.push(
            Diagnostic::error(
                "E014",
                file,
                Span::file(),
                "question declares no aggregate sub-queries",
            )
            .with_help("declare at least one, e.g. `agg n = count(*)`"),
        );
    }
    if ast.dir.is_none() {
        diags.push(
            Diagnostic::error(
                "E014",
                file,
                Span::file(),
                "missing `dir high|low` directive",
            )
            .with_help("state whether the question asks why the value is high or low"),
        );
    }
    if ast.expr.is_none() && ast.aggs.len() > 1 {
        diags.push(
            Diagnostic::error(
                "E014",
                file,
                Span::file(),
                format!(
                    "missing `expr …` directive ({} aggregates declared, so a combining \
                     expression is required)",
                    ast.aggs.len()
                ),
            )
            .with_help("combine the aggregates, e.g. `expr (q1 / q2) / (q3 / q4)`"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{parse_question_loose, parse_schema_loose};

    fn check_all(schema: &str, question: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let ast = parse_schema_loose("s.exq", schema, &mut diags);
        let table = check_schema("s.exq", &ast, &mut diags);
        let qast = parse_question_loose("q.exq", question, &mut diags);
        check_question("q.exq", &qast, &table, &mut diags);
        diags
    }

    const GOOD_SCHEMA: &str = "\
relation Author(id: str key, name: str, dom: str)
relation Authored(id: str key, pubid: str key)
relation Publication(pubid: str key, year: int, venue: str)
fk Authored(id) -> Author
fk Authored(pubid) <-> Publication
";

    #[test]
    fn clean_inputs_are_clean() {
        let diags = check_all(
            GOOD_SCHEMA,
            "agg a = count(*) where venue = 'SIGMOD' and year >= 2000\n\
             agg b = count(*) where dom = 'edu'\n\
             expr a / b\ndir high\nsmoothing 0.0001\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unknown_and_ambiguous_attributes() {
        let diags = check_all(
            GOOD_SCHEMA,
            "agg a = count(*) where yearr = 2000 and id = 'x' and Publication.veue = 'y'\n\
             dir high\n",
        );
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["E002", "E013", "E002"]);
        assert_eq!(diags[0].help.as_deref(), Some("did you mean `year`?"));
        assert!(diags[1].help.as_deref().unwrap().contains("Author.id"));
        assert!(diags[2].message.contains("Publication.veue"));
    }

    #[test]
    fn predicate_type_mismatches() {
        let diags = check_all(
            GOOD_SCHEMA,
            "agg a = count(*) where year = 'SIGMOD' and venue = 2004\ndir high\n",
        );
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["E008", "E008"]);
        assert!(diags[1].help.as_deref().unwrap().contains("'2004'"));
    }

    #[test]
    fn fk_cycle_and_prop_311() {
        let schema = "\
relation A(id: int key)
relation B(id: int key, a: int, c: int)
relation C(id: int key)
fk B(a) <-> A
fk B(id) <-> C
fk C(id) -> A
";
        let mut diags = Vec::new();
        let ast = parse_schema_loose("s.exq", schema, &mut diags);
        check_schema("s.exq", &ast, &mut diags);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"W001"), "{codes:?}");
        assert!(codes.contains(&"E007"), "{codes:?}");
    }

    #[test]
    fn disconnected_schema_warns() {
        let schema = "relation A(id: int key)\nrelation B(id: int key)\n";
        let mut diags = Vec::new();
        let ast = parse_schema_loose("s.exq", schema, &mut diags);
        check_schema("s.exq", &ast, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "W002");
        assert_eq!(diags[0].span.line, 2);
    }

    #[test]
    fn fk_arity_and_type_mismatches() {
        let schema = "\
relation A(x: int key, y: int key)
relation B(a: str key, b: int)
fk B(a) -> A
fk B(a, b) -> A
";
        let mut diags = Vec::new();
        let ast = parse_schema_loose("s.exq", schema, &mut diags);
        check_schema("s.exq", &ast, &mut diags);
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        // fk 1: arity (1 vs 2). fk 2: `a` is str vs x int; second
        // union-find edge on the same pair also closes a cycle.
        assert!(codes.contains(&"E005"), "{codes:?}");
        assert!(codes.contains(&"E006"), "{codes:?}");
        assert!(codes.contains(&"E007"), "{codes:?}");
    }

    #[test]
    fn unsatisfiable_range_detected() {
        let diags = check_all(
            GOOD_SCHEMA,
            "agg a = count(*) where year >= 2007 and year <= 2004\n\
             agg b = count(*) where year >= 2000 and year <= 2004\n\
             agg c = count(*) where venue = 'a' and venue = 'b'\n\
             agg d = count(*) where year = 2005 and year < 2005\n\
             expr a / b + c / d\ndir high\nsmoothing 1\n",
        );
        let w003 = diags.iter().filter(|d| d.code == "W003").count();
        assert_eq!(w003, 3, "{diags:?}");
    }

    #[test]
    fn expr_checks() {
        let diags = check_all(
            GOOD_SCHEMA,
            "agg alpha = count(*)\nagg beta = count(*)\nexpr alpa / beta\ndir low\n",
        );
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"E009"), "{codes:?}");
        assert!(codes.contains(&"W004"), "{codes:?}");
        let e9 = diags.iter().find(|d| d.code == "E009").unwrap();
        assert_eq!(e9.help.as_deref(), Some("did you mean `alpha`?"));
    }

    #[test]
    fn missing_directives() {
        let diags = check_all(GOOD_SCHEMA, "agg a = count(*)\nagg b = count(*)\n");
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, ["E014", "E014"]); // missing dir, missing expr
    }

    #[test]
    fn sum_over_string_flagged() {
        let diags = check_all(GOOD_SCHEMA, "agg s = sum(venue)\ndir high\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "E008");
    }

    #[test]
    fn cube_budget_warning() {
        let cols: Vec<String> = (0..20).map(|i| format!("c{i}: int")).collect();
        let schema = format!("relation Wide(id: int key, {})\n", cols.join(", "));
        let mut diags = Vec::new();
        let ast = parse_schema_loose("s.exq", &schema, &mut diags);
        check_schema("s.exq", &ast, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "W005");
    }

    #[test]
    fn symbol_table_from_real_schema() {
        let schema = exq_relstore::parse::parse_schema(GOOD_SCHEMA).unwrap();
        let table = SymbolTable::from_schema(&schema);
        assert_eq!(table.relations.len(), 3);
        let mut diags = Vec::new();
        let qast = parse_question_loose("q.exq", "agg a = count(*)\ndir high\n", &mut diags);
        check_question("q.exq", &qast, &table, &mut diags);
        assert!(diags.is_empty());
    }
}
