//! Diagnostic rendering: rustc-style pretty terminal output and a
//! machine-readable JSON form (hand-rolled — the workspace has no serde).

use crate::diag::{Diagnostic, Severity};
use crate::SourceFile;

/// Render diagnostics rustc-style, quoting the offending source line
/// with a caret underline:
///
/// ```text
/// error[E002]: unknown attribute `yearr`
///   --> q.exq:3:34
///    |
///  3 | agg a = count(*) where yearr = 2000
///    |                        ^^^^^ unknown attribute
///    = help: did you mean `year`?
/// ```
pub fn render_pretty(diags: &[Diagnostic], sources: &[&SourceFile]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
        let line_text = sources
            .iter()
            .find(|s| s.name == d.file)
            .and_then(|s| s.text.lines().nth(d.span.line.wrapping_sub(1)));
        if d.span.line == 0 {
            let _ = writeln!(out, "  --> {}", d.file);
        } else {
            let _ = writeln!(out, "  --> {}:{}:{}", d.file, d.span.line, d.span.col);
        }
        if let Some(text) = line_text {
            let gutter = d.span.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, " {pad} |");
            let _ = writeln!(out, " {gutter} | {text}");
            let indent = " ".repeat(d.span.col.saturating_sub(1));
            let carets = "^".repeat(d.span.len.max(1));
            let _ = writeln!(out, " {pad} | {indent}{carets}");
        }
        if let Some(help) = &d.help {
            let _ = writeln!(out, "   = help: {help}");
        }
        let _ = writeln!(out);
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    match (errors, warnings) {
        (0, 0) => out.push_str("no problems found\n"),
        (0, w) => {
            let _ = writeln!(out, "{w} warning{} emitted", plural(w));
        }
        (e, 0) => {
            let _ = writeln!(out, "{e} error{} emitted", plural(e));
        }
        (e, w) => {
            let _ = writeln!(
                out,
                "{e} error{} and {w} warning{} emitted",
                plural(e),
                plural(w)
            );
        }
    }
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Render diagnostics as a JSON object:
///
/// ```json
/// {"errors": 1, "warnings": 0, "diagnostics": [
///   {"code": "E002", "severity": "error", "file": "q.exq",
///    "line": 3, "col": 34, "len": 5,
///    "message": "unknown attribute `yearr`",
///    "help": "did you mean `year`?"}
/// ]}
/// ```
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{");
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    out.push_str(&format!(
        "\"errors\":{},\"warnings\":{},\"diagnostics\":[",
        errors,
        diags.len() - errors
    ));
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":{},\"severity\":{},\"file\":{},\"line\":{},\"col\":{},\"len\":{},\"message\":{}",
            json_str(d.code),
            json_str(&d.severity.to_string()),
            json_str(&d.file),
            d.span.line,
            d.span.col,
            d.span.len,
            json_str(&d.message),
        ));
        if let Some(help) = &d.help {
            out.push_str(&format!(",\"help\":{}", json_str(help)));
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Quoted JSON string literal; the escaping itself is the workspace-wide
/// [`exq_obs::escape_json`] (one table, shared with the serve and obs
/// emitters, so the four renderers cannot disagree on an escape).
fn json_str(s: &str) -> String {
    format!("\"{}\"", exq_obs::escape_json(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Span;
    use crate::SourceKind;

    fn sample() -> (Vec<Diagnostic>, SourceFile) {
        let src = SourceFile {
            name: "q.exq".to_string(),
            text: "agg a = count(*) where yearr = 2000\ndir high\n".to_string(),
            kind: SourceKind::Question,
        };
        let d = Diagnostic::error(
            "E002",
            "q.exq",
            Span::new(1, 24, 5),
            "unknown attribute `yearr`",
        )
        .with_help("did you mean `year`?");
        (vec![d], src)
    }

    #[test]
    fn pretty_quotes_source_with_carets() {
        let (diags, src) = sample();
        let text = render_pretty(&diags, &[&src]);
        assert!(
            text.contains("error[E002]: unknown attribute `yearr`"),
            "{text}"
        );
        assert!(text.contains("--> q.exq:1:24"), "{text}");
        assert!(
            text.contains("agg a = count(*) where yearr = 2000"),
            "{text}"
        );
        assert!(text.contains("^^^^^"), "{text}");
        assert!(text.contains("= help: did you mean `year`?"), "{text}");
        assert!(text.contains("1 error emitted"), "{text}");
        // Caret is under the right column.
        let caret_line = text.lines().find(|l| l.contains("^^^^^")).unwrap();
        let src_line = text.lines().find(|l| l.contains("agg a")).unwrap();
        assert_eq!(
            caret_line.find('^').unwrap() - caret_line.find('|').unwrap(),
            src_line.find("yearr").unwrap() - src_line.find('|').unwrap()
        );
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let (mut diags, _) = sample();
        diags[0].message = "quote \" backslash \\ newline \n".to_string();
        let json = render_json(&diags);
        assert!(json.starts_with("{\"errors\":1,\"warnings\":0,"), "{json}");
        assert!(json.contains("\\\""), "{json}");
        assert!(json.contains("\\\\"), "{json}");
        assert!(json.contains("\\n"), "{json}");
        assert!(json.contains("\"line\":1,\"col\":24,\"len\":5"), "{json}");
        assert!(json.contains("\"help\":\"did you mean `year`?\""), "{json}");
    }

    #[test]
    fn empty_run_reports_no_problems() {
        let text = render_pretty(&[], &[]);
        assert!(text.contains("no problems found"));
        assert_eq!(
            render_json(&[]),
            "{\"errors\":0,\"warnings\":0,\"diagnostics\":[]}"
        );
    }
}
