//! Consistent-hash assignment of datasets to workers.
//!
//! Every request names a dataset (in the body for explain/report, in
//! the path for appends), and a dataset's intermediates — prepared
//! joins, epoch history, cached responses — live on exactly one worker.
//! The front therefore needs a pure function `dataset name → shard`
//! that every process computes identically, with no coordination and no
//! persisted assignment table. A hash ring over [`fnv1a`] (the house
//! hash, pinned by `exq-serve`'s key tests) with [`VNODES_PER_WORKER`]
//! virtual nodes per worker gives that: placement is deterministic,
//! spread is even at realistic catalog sizes, and growing the worker
//! count moves only the keys that land on the new worker's vnodes
//! (≈ `1/(n+1)` of them) instead of reshuffling everything.

use exq_serve::key::fnv1a;

/// Virtual nodes per worker on the ring. 64 keeps the per-worker load
/// spread within a few percent while the ring stays small enough to
/// rebuild on every [`ShardMap::new`].
pub const VNODES_PER_WORKER: usize = 64;

/// Ring position of a string: the house FNV-1a hash pushed through a
/// SplitMix64-style finalizer. FNV alone is fine for equality buckets,
/// but its high bits barely move across short strings differing in one
/// digit — exactly the `shard-W-vnode-V` / `dataset-N` families the
/// ring hashes — which clumps vnodes and starves workers. The avalanche
/// spreads them uniformly while staying pure and dependency-free.
fn position(s: &str) -> u64 {
    let mut x = fnv1a(s);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The dataset → worker map. Cheap to build, immutable, identical in
/// every process that knows the worker count.
pub struct ShardMap {
    workers: usize,
    /// `(vnode hash, worker)`, sorted by hash.
    ring: Vec<(u64, usize)>,
}

impl ShardMap {
    /// A ring over `workers` workers (at least 1).
    pub fn new(workers: usize) -> ShardMap {
        let workers = workers.max(1);
        let mut ring = Vec::with_capacity(workers * VNODES_PER_WORKER);
        for worker in 0..workers {
            for vnode in 0..VNODES_PER_WORKER {
                ring.push((position(&format!("shard-{worker}-vnode-{vnode}")), worker));
            }
        }
        ring.sort_unstable();
        ShardMap { workers, ring }
    }

    /// How many workers the ring covers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The worker owning `dataset`: the first vnode clockwise of the
    /// dataset's hash.
    pub fn shard_of(&self, dataset: &str) -> usize {
        let hash = position(dataset);
        let at = self.ring.partition_point(|&(vnode, _)| vnode < hash);
        let at = if at == self.ring.len() { 0 } else { at };
        self.ring[at].1
    }

    /// Partition `names` into per-worker groups (index = shard). Used
    /// by the CLI to decide which datasets each worker process
    /// preloads.
    pub fn partition<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> Vec<Vec<&'a str>> {
        let mut groups: Vec<Vec<&'a str>> = vec![Vec::new(); self.workers];
        for name in names {
            groups[self.shard_of(name)].push(name);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_across_instances() {
        let a = ShardMap::new(4);
        let b = ShardMap::new(4);
        for name in ["dblp", "natality", "figure3", "dblp-small", "x"] {
            assert_eq!(a.shard_of(name), b.shard_of(name));
            assert!(a.shard_of(name) < 4);
        }
    }

    #[test]
    fn one_worker_owns_everything() {
        let map = ShardMap::new(1);
        for i in 0..50 {
            assert_eq!(map.shard_of(&format!("ds-{i}")), 0);
        }
    }

    #[test]
    fn load_spreads_across_workers() {
        let map = ShardMap::new(4);
        let mut counts = [0usize; 4];
        for i in 0..400 {
            counts[map.shard_of(&format!("dataset-{i}"))] += 1;
        }
        for (worker, &n) in counts.iter().enumerate() {
            assert!(n > 0, "worker {worker} owns no datasets: {counts:?}");
        }
    }

    #[test]
    fn growing_the_ring_moves_only_a_fraction_of_keys() {
        let four = ShardMap::new(4);
        let five = ShardMap::new(5);
        let names: Vec<String> = (0..500).map(|i| format!("dataset-{i}")).collect();
        let moved = names
            .iter()
            .filter(|n| four.shard_of(n) != five.shard_of(n))
            .count();
        // Ideal is 1/5 = 100; anything under half shows the ring is
        // doing its job versus mod-N hashing (which would move ~4/5).
        assert!(moved < 250, "{moved}/500 keys moved on 4 → 5 workers");
    }

    #[test]
    fn partition_covers_every_name_exactly_once() {
        let map = ShardMap::new(3);
        let names = ["a", "b", "c", "d", "e", "f", "g"];
        let groups = map.partition(names);
        assert_eq!(groups.len(), 3);
        let mut seen: Vec<&str> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, names);
        for (shard, group) in groups.iter().enumerate() {
            for name in group {
                assert_eq!(map.shard_of(name), shard);
            }
        }
    }
}
