//! Merging per-process Chrome traces into one two-tier timeline.
//!
//! Every process in the router topology — the front and each worker —
//! writes its own Chrome trace file through `exq-obs` (`--trace`), and
//! trace ids propagate front → worker, so the *events* already share
//! request identity. What they do not share is a file: `about:tracing`
//! wants one JSON document. This module splices the per-process
//! documents together, remapping each worker's `pid` (exq-obs hardcodes
//! `1`) to `shard + 2` so the viewer shows the front (`pid 1`) above
//! one labeled row group per worker.
//!
//! The splice is textual, by the same line discipline `exq-obs` emits
//! (one event per `    {"name": ...}` line): parsing and re-rendering
//! JSON here would risk drifting from the obs crate's exact float
//! formatting, and byte-stable artifacts are a workspace rule.

/// The `pid` the merged document assigns to a worker's events.
/// `shard + 2` keeps the front's hardcoded `pid 1` unshadowed.
pub fn worker_pid(shard: usize) -> usize {
    shard + 2
}

/// One merged Chrome trace document: the front's events verbatim, every
/// worker's events re-homed under [`worker_pid`], `dropped_events`
/// summed across all inputs.
pub fn merge_chrome_traces(front: &str, workers: &[(usize, String)]) -> String {
    let mut events: Vec<String> = event_lines(front).map(str::to_string).collect();
    let mut dropped = dropped_events(front);
    for (shard, doc) in workers {
        let pid = format!("\"pid\": {},", worker_pid(*shard));
        events.extend(event_lines(doc).map(|line| line.replace("\"pid\": 1,", &pid)));
        dropped += dropped_events(doc);
    }
    let mut out = String::from("{\n  \"traceEvents\": [\n");
    let last = events.len();
    for (i, line) in events.iter().enumerate() {
        out.push_str(line.trim_end_matches(','));
        if i + 1 != last {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"displayTimeUnit\": \"ns\",\n  \"metadata\": {\"dropped_events\": ");
    out.push_str(&dropped.to_string());
    out.push_str("}\n}\n");
    out
}

/// The event lines of an exq-obs Chrome trace document, trailing commas
/// included as emitted.
fn event_lines(doc: &str) -> impl Iterator<Item = &str> {
    doc.lines()
        .filter(|line| line.starts_with("    {\"name\": "))
}

/// The document's `dropped_events` metadata count (0 if absent).
fn dropped_events(doc: &str) -> u64 {
    doc.split("\"dropped_events\": ")
        .nth(1)
        .and_then(|rest| {
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(events: &[&str], dropped: u64) -> String {
        format!(
            "{{\n  \"traceEvents\": [\n{}\n  ],\n  \"displayTimeUnit\": \"ns\",\n  \"metadata\": {{\"dropped_events\": {dropped}}}\n}}\n",
            events.join(",\n")
        )
    }

    const FRONT_EVENT: &str = r#"    {"name": "router.request", "ph": "B", "ts": 1.000, "pid": 1, "tid": 1, "args": {"trace_id": 7, "span_id": 1}}"#;
    const WORKER_EVENT: &str = r#"    {"name": "server.request", "ph": "B", "ts": 2.000, "pid": 1, "tid": 1, "args": {"trace_id": 7, "span_id": 1}}"#;

    #[test]
    fn workers_are_rehomed_under_their_shard_pid() {
        let merged = merge_chrome_traces(
            &doc(&[FRONT_EVENT], 0),
            &[(0, doc(&[WORKER_EVENT], 0)), (1, doc(&[WORKER_EVENT], 0))],
        );
        assert!(merged
            .contains("\"name\": \"router.request\", \"ph\": \"B\", \"ts\": 1.000, \"pid\": 1,"));
        assert!(merged.contains("\"pid\": 2,"), "shard 0 → pid 2:\n{merged}");
        assert!(merged.contains("\"pid\": 3,"), "shard 1 → pid 3:\n{merged}");
        // Exactly three events, comma-separated, valid structure.
        assert_eq!(merged.matches("\"name\": ").count(), 3);
        assert!(merged.ends_with("\"metadata\": {\"dropped_events\": 0}\n}\n"));
    }

    #[test]
    fn dropped_events_are_summed() {
        let merged = merge_chrome_traces(&doc(&[FRONT_EVENT], 2), &[(0, doc(&[WORKER_EVENT], 3))]);
        assert!(merged.contains("\"dropped_events\": 5"), "{merged}");
    }

    #[test]
    fn empty_inputs_still_render_a_valid_document() {
        let merged = merge_chrome_traces(&doc(&[], 0), &[]);
        assert!(merged.starts_with("{\n  \"traceEvents\": [\n"));
        assert!(merged.contains("\"dropped_events\": 0"));
    }
}
