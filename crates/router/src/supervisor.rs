//! Worker process supervision: spawn, health-check, restart, drain.
//!
//! Each worker is an ordinary `exq serve` child process. The supervisor
//! parses its machine-readable ready line (`ready: listening on
//! http://ADDR ...`) to learn the bound port, publishes the address
//! into the front's [`Upstreams`] table, and then watches two signals:
//!
//! * **exit** — a crashed worker is restarted up to a bounded number of
//!   times (`router.worker.restarts`); while it warm-starts, its shard
//!   reads `Down` and the front answers bounded `503`s. A worker that
//!   keeps dying is marked dead and its shard stays down — bounded
//!   errors, never a crash loop.
//! * **health** — periodic `GET /v1/health` probes
//!   (`router.health.checks` / `router.health.failures`); a worker that
//!   fails several consecutive probes while still running is presumed
//!   wedged and sent SIGTERM, which turns the case into an exit and
//!   re-enters the restart path. Its result cache persists across the
//!   restart ([`exq_serve::persist`]), so recovery starts warm.
//!
//! Shutdown is cooperative and ordered: stop monitoring, SIGTERM every
//! child (each drains in flight work and dumps its warm-start
//! snapshot), wait bounded, then kill stragglers.

use crate::upstream::Upstreams;
use exq_obs::MetricsSink;
use exq_serve::client::Connection;
use exq_serve::signal;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Monitor cadence. Exits are noticed within one tick; health probes
/// run every [`HEALTH_EVERY_TICKS`]th tick.
const TICK: Duration = Duration::from_millis(250);
const HEALTH_EVERY_TICKS: u64 = 4;
/// Consecutive failed probes before a running worker is presumed wedged
/// and SIGTERMed into the restart path.
const HEALTH_FAILURES_TO_RESTART: u32 = 3;

/// How to (re)start one worker process.
pub struct WorkerSpec {
    /// The shard this worker owns (its [`Upstreams`] slot).
    pub shard: usize,
    /// Arguments after the executable, e.g.
    /// `["serve", "--addr", "127.0.0.1:0", "--preload", ...]`.
    pub args: Vec<String>,
}

struct Worker {
    spec: WorkerSpec,
    child: Option<Child>,
    restarts: u32,
    health_failures: u32,
    /// Restart budget exhausted; the shard stays down.
    dead: bool,
}

/// A running supervisor: one monitor thread over N child processes.
pub struct Supervisor {
    exe: PathBuf,
    upstreams: Arc<Upstreams>,
    sink: MetricsSink,
    max_restarts: u32,
    stop: Arc<AtomicBool>,
    workers: Arc<Mutex<Vec<Worker>>>,
    monitor: Option<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Spawn every worker in `specs` from `exe`, wait for each ready
    /// line, publish addresses into `upstreams`, and start the monitor
    /// thread. Fails if any worker refuses to boot — a router that
    /// starts degraded is a misconfiguration, not a runtime condition.
    pub fn start(
        exe: PathBuf,
        specs: Vec<WorkerSpec>,
        upstreams: Arc<Upstreams>,
        sink: MetricsSink,
        max_restarts: u32,
    ) -> std::io::Result<Supervisor> {
        let mut workers = Vec::with_capacity(specs.len());
        for spec in specs {
            let (child, addr) = spawn_worker(&exe, &spec)?;
            upstreams.set_addr(spec.shard, Some(addr));
            workers.push(Worker {
                spec,
                child: Some(child),
                restarts: 0,
                health_failures: 0,
                dead: false,
            });
        }
        let mut supervisor = Supervisor {
            exe,
            upstreams,
            sink,
            max_restarts,
            stop: Arc::new(AtomicBool::new(false)),
            workers: Arc::new(Mutex::new(workers)),
            monitor: None,
        };
        let exe = supervisor.exe.clone();
        let upstreams = Arc::clone(&supervisor.upstreams);
        let sink = supervisor.sink.clone();
        let stop = Arc::clone(&supervisor.stop);
        let workers = Arc::clone(&supervisor.workers);
        let max_restarts = supervisor.max_restarts;
        supervisor.monitor = Some(
            std::thread::Builder::new()
                .name("exq-router-monitor".to_string())
                .spawn(move || {
                    monitor_loop(&exe, &workers, &upstreams, &sink, &stop, max_restarts)
                })?,
        );
        Ok(supervisor)
    }

    /// Worker process ids, by shard (None for a dead shard). The CLI
    /// reports these next to the ready line.
    pub fn pids(&self) -> Vec<Option<u32>> {
        let workers = self.workers.lock().expect("supervisor state poisoned");
        workers
            .iter()
            .map(|w| w.child.as_ref().map(Child::id))
            .collect()
    }

    /// Stop the restart machinery without touching the workers. Called
    /// the moment shutdown begins: a terminal-delivered SIGINT reaches
    /// the whole process group, and a monitor that kept running would
    /// "helpfully" restart workers that are busy draining.
    pub fn halt_restarts(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Stop monitoring, SIGTERM every worker, and wait (bounded) for
    /// each to drain and exit; stragglers past the budget are killed.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        let mut workers = self.workers.lock().expect("supervisor state poisoned");
        for worker in workers.iter_mut() {
            self.upstreams.set_addr(worker.spec.shard, None);
            if let Some(child) = &worker.child {
                signal::terminate(child.id());
            }
        }
        for worker in workers.iter_mut() {
            let Some(mut child) = worker.child.take() else {
                continue;
            };
            // ~10s per worker to drain in-flight requests and dump its
            // warm-start snapshot.
            let mut waited = 0u32;
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if waited < 200 => {
                        waited += 1;
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }
}

/// Spawn one worker and block until its ready line names an address.
/// The worker's stdout is piped (the ready line is for us); stderr
/// passes through so worker logs land with the front's.
fn spawn_worker(exe: &PathBuf, spec: &WorkerSpec) -> std::io::Result<(Child, SocketAddr)> {
    let mut child = Command::new(exe)
        .args(&spec.args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "worker for shard {} exited before its ready line",
                    spec.shard
                ),
            ));
        }
        if let Some(rest) = line.trim().strip_prefix("ready: listening on http://") {
            let addr_text = rest.split_whitespace().next().unwrap_or("");
            match addr_text.parse::<SocketAddr>() {
                Ok(addr) => break addr,
                Err(_) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unparseable worker address `{addr_text}`"),
                    ));
                }
            }
        }
    };
    // Keep draining stdout so the worker never blocks on a full pipe;
    // anything after the ready line is informational.
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            match reader.read_line(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    });
    Ok((child, addr))
}

fn monitor_loop(
    exe: &PathBuf,
    workers: &Mutex<Vec<Worker>>,
    upstreams: &Upstreams,
    sink: &MetricsSink,
    stop: &AtomicBool,
    max_restarts: u32,
) {
    let mut tick = 0u64;
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(TICK);
        // Re-check after the nap: during shutdown the workers exit on
        // purpose, and acting on this tick's stale view would restart
        // one mid-drain.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        tick += 1;
        let probe = tick.is_multiple_of(HEALTH_EVERY_TICKS);
        let mut workers = workers.lock().expect("supervisor state poisoned");
        for worker in workers.iter_mut() {
            if worker.dead {
                continue;
            }
            let exited = match &mut worker.child {
                Some(child) => matches!(child.try_wait(), Ok(Some(_)) | Err(_)),
                None => true,
            };
            if exited {
                upstreams.set_addr(worker.spec.shard, None);
                worker.child = None;
                worker.health_failures = 0;
                if worker.restarts < max_restarts {
                    worker.restarts += 1;
                    sink.incr("router.worker.restarts");
                    match spawn_worker(exe, &worker.spec) {
                        Ok((child, addr)) => {
                            upstreams.set_addr(worker.spec.shard, Some(addr));
                            worker.child = Some(child);
                        }
                        Err(_) => {
                            // Count the failed respawn against the
                            // budget and retry next tick.
                        }
                    }
                } else {
                    worker.dead = true;
                }
                continue;
            }
            if probe {
                let Some(addr) = upstreams.addr(worker.spec.shard) else {
                    continue;
                };
                sink.incr("router.health.checks");
                let healthy = Connection::new(addr)
                    .with_read_timeout(Duration::from_secs(1))
                    .get("/v1/health")
                    .map(|r| r.status == 200)
                    .unwrap_or(false);
                if healthy {
                    worker.health_failures = 0;
                } else {
                    sink.incr("router.health.failures");
                    worker.health_failures += 1;
                    if worker.health_failures >= HEALTH_FAILURES_TO_RESTART {
                        // Presumed wedged: force an exit; the next tick
                        // notices and restarts it warm.
                        if let Some(child) = &worker.child {
                            signal::terminate(child.id());
                        }
                        worker.health_failures = 0;
                    }
                }
            }
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    fn sh_spec(shard: usize, script: &str) -> WorkerSpec {
        WorkerSpec {
            shard,
            args: vec!["-c".to_string(), script.to_string()],
        }
    }

    #[test]
    fn parses_the_ready_line_and_terminates_on_shutdown() {
        let upstreams = Arc::new(Upstreams::new(1, 2, Duration::from_millis(20)));
        let supervisor = Supervisor::start(
            PathBuf::from("/bin/sh"),
            vec![sh_spec(
                0,
                "echo 'noise before ready'; \
                 echo 'ready: listening on http://127.0.0.1:6553 (1 workers)'; \
                 exec sleep 30",
            )],
            Arc::clone(&upstreams),
            MetricsSink::recording(),
            0,
        )
        .expect("supervisor starts");
        assert_eq!(
            upstreams.addr(0),
            Some("127.0.0.1:6553".parse().unwrap()),
            "ready line parsed and published"
        );
        assert_eq!(supervisor.pids().len(), 1);
        supervisor.shutdown(); // must not hang on the sleeping child
        assert_eq!(upstreams.addr(0), None);
    }

    #[test]
    fn crashed_worker_is_restarted_a_bounded_number_of_times() {
        let upstreams = Arc::new(Upstreams::new(1, 2, Duration::from_millis(20)));
        let sink = MetricsSink::recording();
        let supervisor = Supervisor::start(
            PathBuf::from("/bin/sh"),
            // Announces readiness, then exits immediately: a crash loop.
            vec![sh_spec(
                0,
                "echo 'ready: listening on http://127.0.0.1:6553 (1 workers)'",
            )],
            Arc::clone(&upstreams),
            sink.clone(),
            2,
        )
        .expect("supervisor starts");
        // Two ticks per crash cycle at most; give it a generous window.
        for _ in 0..40 {
            if sink.snapshot().counter("router.worker.restarts") >= 2 && upstreams.addr(0).is_none()
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let snapshot = sink.snapshot();
        assert_eq!(
            snapshot.counter("router.worker.restarts"),
            2,
            "restart budget spent exactly"
        );
        assert_eq!(upstreams.addr(0), None, "exhausted shard stays down");
        supervisor.shutdown();
    }

    #[test]
    fn boot_failure_is_an_error_not_a_degraded_router() {
        let upstreams = Arc::new(Upstreams::new(1, 2, Duration::from_millis(20)));
        let result = Supervisor::start(
            PathBuf::from("/bin/sh"),
            vec![sh_spec(0, "echo 'no ready line here'")],
            upstreams,
            MetricsSink::recording(),
            0,
        );
        assert!(result.is_err());
    }
}
