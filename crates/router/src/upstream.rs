//! Per-shard pools of keep-alive connections to the workers.
//!
//! Each worker is a thread-per-connection server, so a persistent
//! connection *pins a worker thread* for its lifetime. The pool
//! therefore enforces a hard per-shard capacity (the front passes the
//! worker's thread count): a front thread checks a connection out,
//! proxies one request, and checks it back in; when all connections are
//! out, checkout blocks briefly and then reports [`CheckoutError::Busy`]
//! so the front can shed load the standard way (`503` + `Retry-After`)
//! instead of deadlocking the worker.
//!
//! Workers also *move*: the supervisor restarts a crashed worker on a
//! fresh port. Each slot carries a generation counter bumped on every
//! [`Upstreams::set_addr`]; leases from an older generation are dropped
//! on return rather than pooled, so a restart can never resurrect a
//! stream to the dead process. A slot with no address (worker down,
//! restart pending) reports [`CheckoutError::Down`].

use exq_serve::client::Connection;
use std::net::SocketAddr;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a checkout produced no connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckoutError {
    /// The shard has no live worker (crashed, restart pending). The
    /// front answers `503` and the supervisor is already on it.
    Down,
    /// All pooled connections are in flight and none freed within the
    /// wait budget. The front sheds the request.
    Busy,
}

struct SlotState {
    /// Where the shard's worker listens, or `None` while it is down.
    addr: Option<SocketAddr>,
    /// Bumped on every `set_addr`; stale leases are filtered on return.
    generation: u64,
    /// Connections currently out or idle, bounded by pool capacity.
    open: usize,
    idle: Vec<Connection>,
}

struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

/// A checked-out connection, tagged with the slot generation it came
/// from so [`Upstreams::checkin`] can discard it if the worker moved.
#[derive(Debug)]
pub struct Lease {
    /// The connection itself; the front drives requests through it.
    pub conn: Connection,
    generation: u64,
    pooled: bool,
}

impl Lease {
    /// Whether this lease reused an idle pooled connection (as opposed
    /// to opening a fresh one) — feeds `router.upstream.reuses`.
    pub fn was_pooled(&self) -> bool {
        self.pooled
    }
}

/// One connection pool per shard.
pub struct Upstreams {
    slots: Vec<Slot>,
    capacity: usize,
    wait: Duration,
}

impl Upstreams {
    /// Pools for `shards` workers, `capacity` connections each (the
    /// worker's thread count), waiting up to `wait` for a free
    /// connection before reporting [`CheckoutError::Busy`]. All slots
    /// start with no address; the supervisor (or an embedding test)
    /// calls [`Upstreams::set_addr`] as workers come up.
    pub fn new(shards: usize, capacity: usize, wait: Duration) -> Upstreams {
        Upstreams {
            slots: (0..shards.max(1))
                .map(|_| Slot {
                    state: Mutex::new(SlotState {
                        addr: None,
                        generation: 0,
                        open: 0,
                        idle: Vec::new(),
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            capacity: capacity.max(1),
            wait,
        }
    }

    /// How many shards the pool tracks.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// The shard's current worker address, if it is up.
    pub fn addr(&self, shard: usize) -> Option<SocketAddr> {
        self.slots[shard].state.lock().expect("slot poisoned").addr
    }

    /// Point `shard` at a (re)started worker, or mark it down with
    /// `None`. Either way the generation bumps: idle connections are
    /// dropped and in-flight leases will be discarded on return, never
    /// pooled against the new address.
    pub fn set_addr(&self, shard: usize, addr: Option<SocketAddr>) {
        let slot = &self.slots[shard];
        let mut state = slot.state.lock().expect("slot poisoned");
        state.addr = addr;
        state.generation += 1;
        state.open = 0;
        state.idle.clear();
        drop(state);
        slot.cv.notify_all();
    }

    /// Check a connection out of `shard`'s pool: an idle one if
    /// available, a fresh one while under capacity, else wait up to the
    /// pool's budget for a checkin.
    pub fn checkout(&self, shard: usize) -> Result<Lease, CheckoutError> {
        let slot = &self.slots[shard];
        let mut state = slot.state.lock().expect("slot poisoned");
        // exq-lint: allow(L002): pool-wait deadline, never reaches explanation results
        let deadline = std::time::Instant::now() + self.wait;
        loop {
            let Some(addr) = state.addr else {
                return Err(CheckoutError::Down);
            };
            if let Some(conn) = state.idle.pop() {
                return Ok(Lease {
                    conn,
                    generation: state.generation,
                    pooled: true,
                });
            }
            if state.open < self.capacity {
                state.open += 1;
                return Ok(Lease {
                    // Dialing is lazy, so holding no lock here is fine.
                    conn: Connection::new(addr),
                    generation: state.generation,
                    pooled: false,
                });
            }
            // exq-lint: allow(L002): pool-wait deadline, never reaches explanation results
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(CheckoutError::Busy);
            }
            let (guard, _) = slot
                .cv
                .wait_timeout(state, deadline - now)
                .expect("slot poisoned");
            state = guard;
        }
    }

    /// Return a healthy connection to the pool. Stale leases (the
    /// worker moved since checkout) are silently dropped.
    pub fn checkin(&self, shard: usize, lease: Lease) {
        let slot = &self.slots[shard];
        let mut state = slot.state.lock().expect("slot poisoned");
        if state.generation == lease.generation {
            state.idle.push(lease.conn);
            drop(state);
            slot.cv.notify_one();
        }
    }

    /// Drop a connection that errored, freeing its capacity. Stale
    /// leases already freed theirs when the generation bumped.
    pub fn discard(&self, shard: usize, lease: Lease) {
        let slot = &self.slots[shard];
        let mut state = slot.state.lock().expect("slot poisoned");
        if state.generation == lease.generation {
            state.open = state.open.saturating_sub(1);
            drop(state);
            slot.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Upstreams {
        let pool = Upstreams::new(2, 2, Duration::from_millis(20));
        pool.set_addr(0, Some("127.0.0.1:9".parse().unwrap()));
        pool
    }

    #[test]
    fn capacity_bounds_concurrent_leases() {
        let pool = pool();
        let a = pool.checkout(0).expect("fresh connection under capacity");
        let b = pool.checkout(0).expect("second connection under capacity");
        assert!(!a.was_pooled() && !b.was_pooled());
        assert_eq!(pool.checkout(0).unwrap_err(), CheckoutError::Busy);
        pool.checkin(0, a);
        let c = pool.checkout(0).expect("checkin freed a connection");
        assert!(c.was_pooled(), "idle connection is reused, not redialed");
        drop((b, c));
    }

    #[test]
    fn down_shard_reports_down() {
        let pool = pool();
        assert_eq!(pool.checkout(1).unwrap_err(), CheckoutError::Down);
        pool.set_addr(0, None);
        assert_eq!(pool.checkout(0).unwrap_err(), CheckoutError::Down);
    }

    #[test]
    fn restart_invalidates_stale_leases() {
        let pool = pool();
        let stale = pool.checkout(0).expect("lease against the old worker");
        pool.set_addr(0, Some("127.0.0.1:10".parse().unwrap()));
        // Returning the stale lease must not pool it against the new
        // address, and must not corrupt the open count.
        pool.checkin(0, stale);
        let fresh = pool.checkout(0).expect("checkout after restart");
        assert!(!fresh.was_pooled(), "stale connection was not resurrected");
        let stale2 = pool.checkout(0).unwrap();
        pool.set_addr(0, Some("127.0.0.1:11".parse().unwrap()));
        pool.discard(0, stale2); // stale discard: generation mismatch, no underflow
        let a = pool.checkout(0).unwrap();
        let b = pool.checkout(0).unwrap();
        assert_eq!(pool.checkout(0).unwrap_err(), CheckoutError::Busy);
        drop((fresh, a, b));
    }
}
