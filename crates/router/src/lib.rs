//! # exq-router — the sharded multi-process serving tier
//!
//! One `exq serve --router N` command runs N independent worker
//! processes (each an ordinary `exq serve` on a loopback port, owning a
//! consistent-hash shard of the dataset catalog) behind a thin *front*
//! process that:
//!
//! * parses just enough of each request to learn which dataset it
//!   names, picks the owning worker off the [`shard::ShardMap`] ring,
//!   and proxies the request over a pooled keep-alive connection
//!   ([`upstream`]), streaming the worker's bytes back unchanged;
//! * applies per-tenant token-bucket admission control ([`bucket`])
//!   ahead of the workers, answering `503` + `Retry-After` in the same
//!   backpressure dialect the workers' accept queues already speak;
//! * supervises the workers ([`supervisor`]): parses their ready lines,
//!   health-checks `GET /v1/health`, and restarts a crashed worker a
//!   bounded number of times, routing around it (bounded `503`s, never
//!   wrong answers) while it warm-starts from its persisted result
//!   cache;
//! * observes everything ([`front`] records `router.*` counters and a
//!   front-latency histogram; trace ids propagate front → worker so one
//!   Chrome trace spans both tiers — [`trace`] merges the per-process
//!   trace files into a single timeline).
//!
//! The whole tier stays inside the workspace's std-only,
//! deterministic-observability rules: no async runtime, no HTTP or RPC
//! crates, every counter pre-registered and catalogued.

#![warn(missing_docs)]

pub mod bucket;
pub mod front;
pub mod shard;
pub mod supervisor;
pub mod trace;
pub mod upstream;

pub use bucket::TokenBuckets;
pub use front::{Front, FrontConfig, ROUTER_COUNTERS};
pub use shard::ShardMap;
pub use supervisor::{Supervisor, WorkerSpec};
pub use upstream::{CheckoutError, Upstreams};
