//! Per-tenant token-bucket admission control.
//!
//! The serve tier already sheds load when its accept queue fills; that
//! protects the *process* but lets one noisy tenant starve everyone
//! ahead of the queue. The front adds a second, earlier gate: each
//! tenant (the `X-Exq-Tenant` header; requests without one share the
//! global `""` bucket) gets a token bucket refilled at a configured
//! rate. A request that finds no token is answered `503` +
//! `Retry-After` — the same backpressure contract the queue uses, so
//! clients need exactly one retry strategy
//! (`exq_serve::client::Connection::post_json_retry`).
//!
//! Deliberately wall-clock: admission is about *real* arrival rates, so
//! the refill math reads `Instant::now` (lint-allowed below) — but no
//! token-bucket decision ever reaches explanation results, only whether
//! a request is admitted.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Hard cap on tracked tenants; beyond it, unseen tenants share the
/// global bucket instead of growing the map without bound.
const MAX_TENANTS: usize = 10_000;

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Token buckets keyed by tenant, all sharing one rate/burst config.
pub struct TokenBuckets {
    /// Tokens added per second.
    rate: f64,
    /// Bucket capacity (burst allowance).
    burst: f64,
    state: Mutex<HashMap<String, Bucket>>,
}

impl TokenBuckets {
    /// Buckets refilled at `rate_per_sec`, with a burst of twice the
    /// rate (minimum 1 token, so a positive rate always admits an idle
    /// tenant's first request).
    pub fn new(rate_per_sec: f64) -> TokenBuckets {
        TokenBuckets::with_burst(rate_per_sec, (rate_per_sec * 2.0).max(1.0))
    }

    /// [`TokenBuckets::new`] with an explicit burst capacity.
    pub fn with_burst(rate_per_sec: f64, burst: f64) -> TokenBuckets {
        TokenBuckets {
            rate: rate_per_sec.max(0.0),
            burst: burst.max(1.0),
            state: Mutex::new(HashMap::new()),
        }
    }

    /// Take one token from `tenant`'s bucket, refilling for elapsed
    /// time first. `true` admits the request.
    pub fn try_take(&self, tenant: &str) -> bool {
        // exq-lint: allow(L002): token refill is wall-clock by definition; decides admission only, never reaches explanation results
        let now = Instant::now();
        let mut state = self.state.lock().expect("bucket state poisoned");
        let key = if state.len() >= MAX_TENANTS && !state.contains_key(tenant) {
            "" // overflow tenants share the global bucket
        } else {
            tenant
        };
        let bucket = state.entry(key.to_string()).or_insert(Bucket {
            tokens: self.burst,
            last: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_admits_then_denies() {
        let buckets = TokenBuckets::with_burst(0.0, 3.0);
        assert!(buckets.try_take("t"));
        assert!(buckets.try_take("t"));
        assert!(buckets.try_take("t"));
        assert!(!buckets.try_take("t"), "burst exhausted, zero refill");
    }

    #[test]
    fn tenants_are_isolated() {
        let buckets = TokenBuckets::with_burst(0.0, 1.0);
        assert!(buckets.try_take("a"));
        assert!(!buckets.try_take("a"));
        assert!(buckets.try_take("b"), "tenant b has its own bucket");
        assert!(buckets.try_take(""), "the global bucket too");
    }

    #[test]
    fn refill_restores_admission() {
        let buckets = TokenBuckets::with_burst(1_000.0, 1.0);
        assert!(buckets.try_take("t"));
        assert!(!buckets.try_take("t"));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(buckets.try_take("t"), "20ms at 1000/s refills the token");
    }
}
