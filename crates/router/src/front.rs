//! The front process: parse a sliver, admit, route, proxy, observe.
//!
//! The front is deliberately thin. It parses each request only far
//! enough to learn **which dataset** it names — the path segment for
//! appends, the `"dataset"` field for explain/report — then proxies the
//! request verbatim to the owning worker over a pooled keep-alive
//! connection and streams the worker's body back unchanged, so a
//! response through the router is byte-identical to one from a
//! single-process server. Requests the front cannot attribute to a
//! dataset still go to a worker (shard 0), which renders the same
//! canonical error body a direct client would see.
//!
//! What the front *adds*: per-tenant admission control (the
//! [`crate::bucket`] gate, `X-Exq-Tenant` header), trace-id propagation
//! (the front allocates the id and passes it down in `X-Exq-Trace-Id`,
//! so one trace names the request in both tiers), an `X-Exq-Shard`
//! response header naming the worker that answered, and the `router.*`
//! counter family with a front-latency histogram.

use crate::bucket::TokenBuckets;
use crate::shard::ShardMap;
use crate::upstream::{CheckoutError, Upstreams};
use exq_obs::{MetricsSink, Snapshot};
use exq_serve::client::ClientResponse;
use exq_serve::http::{Limits, Request, Response};
use exq_serve::{json, pump};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every fixed-name `router.*` counter the front and supervisor record,
/// pre-registered at startup and catalogued in `assets/obs/counters.txt`.
/// The per-shard `router.proxied.shard.{i}` family is registered
/// dynamically (one per worker) and catalogued as a wildcard.
pub const ROUTER_COUNTERS: &[&str] = &[
    "router.requests",
    "router.responses.ok",
    "router.responses.client_error",
    "router.responses.server_error",
    "router.throttled",
    "router.proxy.errors",
    "router.upstream.connects",
    "router.upstream.reuses",
    "router.health.checks",
    "router.health.failures",
    "router.worker.restarts",
];

/// Front tuning knobs.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Front worker threads serving client connections.
    pub threads: usize,
    /// Pending-connection queue depth; beyond it, `503` + `Retry-After`.
    pub queue_depth: usize,
    /// How many worker processes sit behind the front.
    pub workers: usize,
    /// Connection-pool capacity per worker. Must not exceed the
    /// worker's thread count: a keep-alive connection pins a worker
    /// thread.
    pub per_worker_connections: usize,
    /// Per-tenant admitted requests per second (`None` disables
    /// admission control).
    pub rate_limit: Option<f64>,
    /// How long a proxying thread may wait for a pooled upstream
    /// connection before answering `503` (saturated worker). The
    /// default keeps the front snappy under overload; embedders that
    /// prefer queueing to shedding (the bench harness) raise it.
    pub upstream_wait: Duration,
    /// Per-request wall-clock budget for reading the client's request.
    pub request_timeout: Duration,
    /// HTTP parser limits for client requests.
    pub limits: Limits,
    /// Every dataset name in the catalog, for the front's
    /// `GET /v1/health` topology document.
    pub datasets: Vec<String>,
}

impl Default for FrontConfig {
    fn default() -> FrontConfig {
        FrontConfig {
            threads: 4,
            queue_depth: 64,
            workers: 1,
            per_worker_connections: 4,
            rate_limit: None,
            upstream_wait: Duration::from_millis(500),
            request_timeout: Duration::from_secs(10),
            limits: Limits::default(),
            datasets: Vec::new(),
        }
    }
}

struct FrontInner {
    shards: ShardMap,
    upstreams: Arc<Upstreams>,
    buckets: Option<TokenBuckets>,
    sink: MetricsSink,
    shutdown: Arc<AtomicBool>,
    next_trace: AtomicU64,
    config: FrontConfig,
}

/// A running front. Workers are *not* started here: the supervisor (or
/// an embedding test) publishes their addresses through
/// [`Front::upstreams`].
pub struct Front {
    addr: SocketAddr,
    inner: Arc<FrontInner>,
    pump: pump::Pump,
}

impl Front {
    /// Bind `addr` and start the front's accept and worker threads.
    /// Pre-registers the full `router.*` catalogue (idle fronts expose
    /// every counter at 0).
    pub fn start_on(
        addr: impl ToSocketAddrs,
        config: FrontConfig,
        sink: MetricsSink,
    ) -> std::io::Result<Front> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        for counter in ROUTER_COUNTERS {
            sink.add(counter, 0);
        }
        for shard in 0..config.workers.max(1) {
            sink.add(&format!("router.proxied.shard.{shard}"), 0);
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let inner = Arc::new(FrontInner {
            shards: ShardMap::new(config.workers),
            upstreams: Arc::new(Upstreams::new(
                config.workers,
                config.per_worker_connections,
                config.upstream_wait,
            )),
            buckets: config.rate_limit.map(TokenBuckets::new),
            sink,
            shutdown: Arc::clone(&shutdown),
            next_trace: AtomicU64::new(0),
            config,
        });
        let options = pump::PumpOptions {
            threads: inner.config.threads,
            queue_depth: inner.config.queue_depth,
            name: "exq-front",
        };
        let reject_inner = Arc::clone(&inner);
        let serve_inner = Arc::clone(&inner);
        let pump = pump::start(
            listener,
            &options,
            shutdown,
            move |stream| {
                reject_inner.sink.incr("router.throttled");
                pump::reject(stream, &pump::busy_response());
            },
            move |stream| {
                let inner = Arc::clone(&serve_inner);
                pump::serve_connection(stream, move |stream, carry| {
                    serve_one(&inner, stream, carry)
                })
            },
        )?;
        Ok(Front {
            addr: local,
            inner,
            pump,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The per-shard connection pools — the supervisor publishes worker
    /// addresses here as they come up, move, or die.
    pub fn upstreams(&self) -> Arc<Upstreams> {
        Arc::clone(&self.inner.upstreams)
    }

    /// Stop accepting, drain in-flight client connections, join all
    /// threads, and return the front's final metrics snapshot.
    pub fn shutdown(self) -> Snapshot {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.pump.join();
        self.inner.sink.snapshot()
    }
}

/// One front request: read, admit, route, proxy, respond. Runs inside
/// [`pump::serve_connection`], exactly like the worker tier: keep-alive
/// on request, silent idle close.
fn serve_one(inner: &FrontInner, stream: &mut TcpStream, carry: &mut Vec<u8>) -> bool {
    // exq-lint: allow(L002): HTTP timeout/latency bookkeeping, never reaches explanation results
    let started = Instant::now();
    let deadline = started + inner.config.request_timeout;
    let read = pump::read_request(
        stream,
        &inner.config.limits,
        deadline,
        carry,
        &inner.shutdown,
    );
    let (request, response) = match read {
        Ok(Some(request)) => {
            inner.sink.incr("router.requests");
            // The front allocates the trace id (honoring one the client
            // already sent) and hands it to the worker, so both tiers
            // log the same id for one request — and stamps it onto its
            // own trace events for the merged Chrome timeline.
            let trace_id = request
                .header("x-exq-trace-id")
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&id| id > 0)
                .unwrap_or_else(|| inner.next_trace.fetch_add(1, Ordering::Relaxed) + 1);
            inner.sink.set_trace(trace_id);
            let response = {
                let _span = inner.sink.span("router.request");
                route(inner, &request, trace_id)
            }
            .with_header("x-exq-trace-id", &trace_id.to_string());
            (Some(request), response)
        }
        Ok(None) => return false,
        Err(response) => (None, response),
    };
    match response.status {
        200 => inner.sink.incr("router.responses.ok"),
        400..=499 => inner.sink.incr("router.responses.client_error"),
        _ => inner.sink.incr("router.responses.server_error"),
    }
    let keep_alive = request.as_ref().is_some_and(|r| {
        r.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }) && response.status != 408
        && !inner.shutdown.load(Ordering::SeqCst);
    let written = stream
        .write_all(&response.to_bytes_with(keep_alive))
        .and_then(|()| stream.flush());
    inner
        .sink
        .observe_duration("router.latency.front", started.elapsed());
    keep_alive && written.is_ok()
}

fn route(inner: &FrontInner, request: &Request, trace_id: u64) -> Response {
    let path = request
        .path
        .split_once('?')
        .map_or(request.path.as_str(), |(p, _)| p);
    // Work-bearing routes pass admission control, then proxy to the
    // dataset's shard.
    if request.method == "POST" {
        let dataset = match path {
            "/v1/explain" | "/v1/report" => dataset_from_body(&request.body),
            _ => dataset_from_append_path(path).map(str::to_string),
        };
        let routable = matches!(path, "/v1/explain" | "/v1/report")
            || dataset_from_append_path(path).is_some();
        if routable {
            if let Some(throttled) = admit(inner, request) {
                return throttled;
            }
            // No dataset parsed (bad JSON, missing field): any worker
            // renders the same canonical error body a single-process
            // server would, so shard 0 serves it.
            let shard = dataset.map_or(0, |name| inner.shards.shard_of(&name));
            return proxy(inner, request, shard, trace_id);
        }
    }
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            Response::json(200, "{\n  \"status\": \"ok\",\n  \"role\": \"front\"\n}\n")
        }
        ("GET", "/v1/health") => Response::json(200, health_doc(inner)),
        ("GET", "/metrics") => Response::text(200, inner.sink.snapshot().to_prometheus()),
        ("GET", "/v1/metrics") => {
            let query = request.path.split_once('?').map_or("", |(_, q)| q);
            if query.split('&').any(|pair| pair == "format=prometheus") {
                Response::text(200, inner.sink.snapshot().to_prometheus())
            } else {
                Response::json(200, inner.sink.snapshot().to_json() + "\n")
            }
        }
        ("GET", "/v1/datasets") => merged_datasets(inner, trace_id),
        (
            _,
            "/healthz" | "/v1/health" | "/v1/datasets" | "/metrics" | "/v1/metrics" | "/v1/explain"
            | "/v1/report",
        ) => Response::error(405, "method not allowed"),
        // Worker-local debug endpoints (the flight recorder) are not
        // meaningful through the front; hit a worker's port directly.
        _ => Response::error(404, "no such endpoint"),
    }
}

/// Apply admission control; `Some` is the throttle response.
fn admit(inner: &FrontInner, request: &Request) -> Option<Response> {
    let buckets = inner.buckets.as_ref()?;
    let tenant = request.header("x-exq-tenant").unwrap_or("");
    if buckets.try_take(tenant) {
        None
    } else {
        inner.sink.incr("router.throttled");
        Some(
            Response::error(503, "rate limit exceeded; retry shortly")
                .with_header("retry-after", "1"),
        )
    }
}

/// The `"dataset"` field of an explain/report body, if it parses.
fn dataset_from_body(body: &[u8]) -> Option<String> {
    let doc = json::parse(body).ok()?;
    doc.get("dataset")?.as_str().map(str::to_string)
}

/// The `{name}` of `/v1/datasets/{name}/rows`.
fn dataset_from_append_path(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/datasets/")
        .and_then(|rest| rest.strip_suffix("/rows"))
        .filter(|name| !name.is_empty() && !name.contains('/'))
}

/// Forward `request` to `shard`'s worker and convert the reply. Any
/// failure to reach the worker is a `503` + `Retry-After` — the
/// supervisor is restarting it, and clients already speak that dialect
/// — never a hang and never a made-up answer.
fn proxy(inner: &FrontInner, request: &Request, shard: usize, trace_id: u64) -> Response {
    let mut lease = match inner.upstreams.checkout(shard) {
        Ok(lease) => lease,
        Err(CheckoutError::Down) => {
            return Response::error(503, "shard worker unavailable; retry shortly")
                .with_header("retry-after", "1");
        }
        Err(CheckoutError::Busy) => {
            return Response::error(503, "shard worker saturated; retry shortly")
                .with_header("retry-after", "1");
        }
    };
    inner.sink.incr(if lease.was_pooled() {
        "router.upstream.reuses"
    } else {
        "router.upstream.connects"
    });
    let trace = trace_id.to_string();
    let sent = lease.conn.request_with(
        &request.method,
        &request.path,
        Some(&request.body),
        &[("x-exq-trace-id", &trace)],
    );
    match sent {
        Ok(upstream) => {
            inner.sink.incr(&format!("router.proxied.shard.{shard}"));
            inner.upstreams.checkin(shard, lease);
            convert(upstream, shard)
        }
        Err(_) => {
            inner.sink.incr("router.proxy.errors");
            inner.upstreams.discard(shard, lease);
            Response::error(503, "shard worker failed mid-request; retry shortly")
                .with_header("retry-after", "1")
        }
    }
}

/// A worker's reply as a front [`Response`]: body bytes verbatim,
/// meaningful headers (`X-Exq-Epoch`, `Retry-After`) copied through,
/// plus an `X-Exq-Shard` header naming the worker that answered. The
/// worker's own trace-id header is dropped — the front stamps the same
/// id on its way out.
fn convert(upstream: ClientResponse, shard: usize) -> Response {
    let content_type = match upstream.header("content-type") {
        Some(value) if value.starts_with("text/plain") => {
            "text/plain; version=0.0.4; charset=utf-8"
        }
        _ => "application/json",
    };
    let mut extra_headers = Vec::new();
    for name in ["x-exq-epoch", "retry-after"] {
        if let Some(value) = upstream.header(name) {
            extra_headers.push((name.to_string(), value.to_string()));
        }
    }
    extra_headers.push(("x-exq-shard".to_string(), shard.to_string()));
    Response {
        status: upstream.status,
        body: upstream.body,
        content_type,
        extra_headers,
    }
}

/// `GET /v1/datasets` through the front: every worker holds only its
/// shard of the catalog, so the front fans out and merges. Entry lines
/// are re-sorted by dataset name so the merged document is byte-for-byte
/// what a single-process server holding the full catalog would emit.
/// Any unreachable worker fails the whole listing (a partial catalog
/// silently missing datasets is worse than a retryable error).
fn merged_datasets(inner: &FrontInner, trace_id: u64) -> Response {
    let mut entries: Vec<(String, String)> = Vec::new();
    for shard in 0..inner.shards.workers() {
        let mut lease = match inner.upstreams.checkout(shard) {
            Ok(lease) => lease,
            Err(_) => {
                return Response::error(503, "shard worker unavailable; retry shortly")
                    .with_header("retry-after", "1");
            }
        };
        inner.sink.incr(if lease.was_pooled() {
            "router.upstream.reuses"
        } else {
            "router.upstream.connects"
        });
        let trace = trace_id.to_string();
        let fetched =
            lease
                .conn
                .request_with("GET", "/v1/datasets", None, &[("x-exq-trace-id", &trace)]);
        let body = match fetched {
            Ok(response) if response.status == 200 => {
                inner.sink.incr(&format!("router.proxied.shard.{shard}"));
                inner.upstreams.checkin(shard, lease);
                response.text()
            }
            Ok(_) | Err(_) => {
                inner.sink.incr("router.proxy.errors");
                inner.upstreams.discard(shard, lease);
                return Response::error(503, "shard catalog listing failed; retry shortly")
                    .with_header("retry-after", "1");
            }
        };
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("    { \"name\": \"") {
                let name = json_string_prefix(rest);
                entries.push((name, line.trim_end_matches(',').to_string()));
            }
        }
    }
    entries.sort();
    let mut doc = String::from("{\n  \"datasets\": [\n");
    let last = entries.len();
    for (i, (_, line)) in entries.iter().enumerate() {
        doc.push_str(line);
        if i + 1 != last {
            doc.push(',');
        }
        doc.push('\n');
    }
    doc.push_str("  ]\n}\n");
    Response::json(200, doc)
}

/// The decoded content of a JSON string whose opening quote was already
/// consumed: scan to the closing quote (backslash-escape aware) and
/// unescape. Used to sort merged catalog entries by their *actual*
/// dataset name, matching the BTreeMap order a single process uses.
fn json_string_prefix(rest: &str) -> String {
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => break,
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if let Some(decoded) =
                        u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32)
                    {
                        out.push(decoded);
                    }
                }
                Some(other) => out.push(other),
                None => break,
            },
            _ => out.push(c),
        }
    }
    out
}

/// The front's `GET /v1/health`: topology at a glance — worker count,
/// which shards are currently routable, and which datasets the
/// consistent-hash ring assigns to each.
fn health_doc(inner: &FrontInner) -> String {
    use std::fmt::Write as _;
    let workers = inner.shards.workers();
    let mut groups: Vec<Vec<&str>> = vec![Vec::new(); workers];
    for name in &inner.config.datasets {
        groups[inner.shards.shard_of(name)].push(name);
    }
    let mut out = format!(
        "{{\n  \"status\": \"ok\",\n  \"role\": \"front\",\n  \"workers\": {workers},\n  \"shards\": [\n"
    );
    for (shard, group) in groups.iter().enumerate() {
        let alive = inner.upstreams.addr(shard).is_some();
        let sep = if shard + 1 == workers { "" } else { "," };
        let names: Vec<String> = group
            .iter()
            .map(|n| format!("\"{}\"", exq_obs::escape_json(n)))
            .collect();
        let _ = writeln!(
            out,
            "    {{ \"shard\": {shard}, \"alive\": {alive}, \"datasets\": [{}{}{}] }}{sep}",
            if names.is_empty() { "" } else { " " },
            names.join(", "),
            if names.is_empty() { "" } else { " " },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_serve::client;
    use exq_serve::http;
    use std::io::Read;
    use std::sync::atomic::AtomicUsize;

    /// A stub worker: parses real HTTP, answers via `handler`, honors
    /// keep-alive. Good enough to test routing, proxying, and header
    /// conversion without building a catalog.
    fn stub_worker(handler: impl Fn(&Request) -> Response + Send + 'static) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let mut carry = Vec::new();
                let mut chunk = [0u8; 4096];
                loop {
                    let request = loop {
                        match http::parse_request(&carry, &Limits::default()) {
                            Ok(Some((request, consumed))) => {
                                carry.drain(..consumed);
                                break Some(request);
                            }
                            Ok(None) => match stream.read(&mut chunk) {
                                Ok(0) => break None,
                                Ok(n) => carry.extend_from_slice(&chunk[..n]),
                                Err(_) => break None,
                            },
                            Err(_) => break None,
                        }
                    };
                    let Some(request) = request else { break };
                    let keep = request
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"));
                    let response = handler(&request);
                    if stream.write_all(&response.to_bytes_with(keep)).is_err() || !keep {
                        break;
                    }
                }
            }
        });
        addr
    }

    fn front_with(config: FrontConfig, worker: Option<SocketAddr>) -> Front {
        let front =
            Front::start_on(("127.0.0.1", 0), config, MetricsSink::recording()).expect("front");
        if let Some(addr) = worker {
            front.upstreams().set_addr(0, Some(addr));
        }
        front
    }

    #[test]
    fn front_serves_its_own_endpoints() {
        let front = front_with(
            FrontConfig {
                datasets: vec!["dblp".to_string()],
                ..FrontConfig::default()
            },
            None,
        );
        let healthz = client::get(front.addr(), "/healthz").unwrap();
        assert_eq!(healthz.status, 200);
        assert!(healthz.text().contains("\"role\": \"front\""));
        let health = client::get(front.addr(), "/v1/health").unwrap();
        assert!(health.text().contains("\"alive\": false"));
        assert!(health.text().contains("\"dblp\""));
        let metrics = client::get(front.addr(), "/metrics").unwrap();
        let exposition = metrics.text();
        assert!(exposition.contains("router_requests"), "{exposition}");
        let missing = client::get(front.addr(), "/v1/debug/requests").unwrap();
        assert_eq!(missing.status, 404);
        let snapshot = front.shutdown();
        assert_eq!(snapshot.counter("router.requests"), 4);
        assert_eq!(snapshot.counter("router.responses.ok"), 3);
    }

    #[test]
    fn proxy_round_trips_bodies_and_tags_the_shard() {
        let body = "{\n  \"explanations\": []\n}\n";
        let worker = stub_worker(move |request| {
            assert!(
                request.header("x-exq-trace-id").is_some(),
                "front must propagate a trace id"
            );
            Response::json(200, body).with_header("x-exq-epoch", "7")
        });
        let front = front_with(FrontConfig::default(), Some(worker));
        let reply = client::post_json(
            front.addr(),
            "/v1/explain",
            "{ \"dataset\": \"dblp\", \"question\": \"?\" }",
        )
        .unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.text(), body, "proxied body is byte-identical");
        assert_eq!(reply.header("x-exq-shard"), Some("0"));
        assert_eq!(reply.header("x-exq-epoch"), Some("7"));
        assert!(reply.header("x-exq-trace-id").is_some());
        let snapshot = front.shutdown();
        assert_eq!(snapshot.counter("router.proxied.shard.0"), 1);
        assert_eq!(snapshot.counter("router.upstream.connects"), 1);
    }

    #[test]
    fn down_worker_means_bounded_503_not_a_hang() {
        let front = front_with(FrontConfig::default(), None);
        let reply =
            client::post_json(front.addr(), "/v1/explain", "{ \"dataset\": \"x\" }").unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));
        front.shutdown();
    }

    #[test]
    fn admission_control_throttles_past_the_burst() {
        let served = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&served);
        let worker = stub_worker(move |_| {
            counted.fetch_add(1, Ordering::SeqCst);
            Response::json(200, "{}\n")
        });
        let front = front_with(
            FrontConfig {
                // rate 0.5/s → burst max(1.0) = 1 token: first request
                // admitted, second throttled (no refill that fast).
                rate_limit: Some(0.5),
                ..FrontConfig::default()
            },
            Some(worker),
        );
        let first =
            client::post_json(front.addr(), "/v1/explain", "{ \"dataset\": \"x\" }").unwrap();
        assert_eq!(first.status, 200);
        let second =
            client::post_json(front.addr(), "/v1/explain", "{ \"dataset\": \"x\" }").unwrap();
        assert_eq!(second.status, 503);
        assert_eq!(second.header("retry-after"), Some("1"));
        // A different tenant has its own bucket.
        let mut conn = client::Connection::new(front.addr());
        let other = conn
            .request_with(
                "POST",
                "/v1/explain",
                Some(b"{ \"dataset\": \"x\" }"),
                &[("x-exq-tenant", "other")],
            )
            .unwrap();
        assert_eq!(other.status, 200);
        let snapshot = front.shutdown();
        assert_eq!(snapshot.counter("router.throttled"), 1);
        assert_eq!(served.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn unparseable_bodies_still_reach_a_worker_for_the_canonical_error() {
        let worker = stub_worker(|_| Response::error(400, "bad json"));
        let front = front_with(FrontConfig::default(), Some(worker));
        let reply = client::post_json(front.addr(), "/v1/explain", "not json at all").unwrap();
        assert_eq!(reply.status, 400, "the worker's error comes through");
        assert_eq!(reply.header("x-exq-shard"), Some("0"));
        front.shutdown();
    }
}
