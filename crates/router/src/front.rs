//! The front process: parse a sliver, admit, route, proxy, observe.
//!
//! The front is deliberately thin. It parses each request only far
//! enough to learn **which dataset** it names — the path segment for
//! appends, the `"dataset"` field for explain/report — then proxies the
//! request verbatim to the owning worker over a pooled keep-alive
//! connection and streams the worker's body back unchanged, so a
//! response through the router is byte-identical to one from a
//! single-process server. Requests the front cannot attribute to a
//! dataset still go to a worker (shard 0), which renders the same
//! canonical error body a direct client would see.
//!
//! What the front *adds*: per-tenant admission control (the
//! [`crate::bucket`] gate, `X-Exq-Tenant` header), trace-id propagation
//! (the front allocates the id and passes it down in `X-Exq-Trace-Id`,
//! so one trace names the request in both tiers), an `X-Exq-Shard`
//! response header naming the worker that answered, and the `router.*`
//! counter family with a front-latency histogram.

use crate::bucket::TokenBuckets;
use crate::shard::ShardMap;
use crate::upstream::{CheckoutError, Upstreams};
use exq_obs::{Exemplar, MetricsSink, Snapshot};
use exq_serve::accesslog::{AccessEntry, AccessLog};
use exq_serve::client::ClientResponse;
use exq_serve::http::{Limits, Request, Response};
use exq_serve::{json, pump};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every fixed-name `router.*` counter the front and supervisor record,
/// pre-registered at startup and catalogued in `assets/obs/counters.txt`.
/// The per-shard `router.proxied.shard.{i}` family is registered
/// dynamically (one per worker) and catalogued as a wildcard.
pub const ROUTER_COUNTERS: &[&str] = &[
    "router.requests",
    "router.responses.ok",
    "router.responses.client_error",
    "router.responses.server_error",
    "router.throttled",
    "router.proxy.errors",
    "router.upstream.connects",
    "router.upstream.reuses",
    "router.health.checks",
    "router.health.failures",
    "router.worker.restarts",
    "router.scrape.partial",
];

/// Front tuning knobs.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Front worker threads serving client connections.
    pub threads: usize,
    /// Pending-connection queue depth; beyond it, `503` + `Retry-After`.
    pub queue_depth: usize,
    /// How many worker processes sit behind the front.
    pub workers: usize,
    /// Connection-pool capacity per worker. Must not exceed the
    /// worker's thread count: a keep-alive connection pins a worker
    /// thread.
    pub per_worker_connections: usize,
    /// Per-tenant admitted requests per second (`None` disables
    /// admission control).
    pub rate_limit: Option<f64>,
    /// How long a proxying thread may wait for a pooled upstream
    /// connection before answering `503` (saturated worker). The
    /// default keeps the front snappy under overload; embedders that
    /// prefer queueing to shedding (the bench harness) raise it.
    pub upstream_wait: Duration,
    /// Per-request wall-clock budget for reading the client's request.
    pub request_timeout: Duration,
    /// HTTP parser limits for client requests.
    pub limits: Limits,
    /// Every dataset name in the catalog, for the front's
    /// `GET /v1/health` topology document.
    pub datasets: Vec<String>,
    /// Structured access log destination (same line shape as the
    /// workers', with `shard` naming the worker that answered).
    /// Defaults to disabled.
    pub access_log: AccessLog,
}

impl Default for FrontConfig {
    fn default() -> FrontConfig {
        FrontConfig {
            threads: 4,
            queue_depth: 64,
            workers: 1,
            per_worker_connections: 4,
            rate_limit: None,
            upstream_wait: Duration::from_millis(500),
            request_timeout: Duration::from_secs(10),
            limits: Limits::default(),
            datasets: Vec::new(),
            access_log: AccessLog::disabled(),
        }
    }
}

struct FrontInner {
    shards: ShardMap,
    upstreams: Arc<Upstreams>,
    buckets: Option<TokenBuckets>,
    sink: MetricsSink,
    shutdown: Arc<AtomicBool>,
    next_trace: AtomicU64,
    config: FrontConfig,
}

/// A running front. Workers are *not* started here: the supervisor (or
/// an embedding test) publishes their addresses through
/// [`Front::upstreams`].
pub struct Front {
    addr: SocketAddr,
    inner: Arc<FrontInner>,
    pump: pump::Pump,
}

impl Front {
    /// Bind `addr` and start the front's accept and worker threads.
    /// Pre-registers the full `router.*` catalogue (idle fronts expose
    /// every counter at 0).
    pub fn start_on(
        addr: impl ToSocketAddrs,
        config: FrontConfig,
        sink: MetricsSink,
    ) -> std::io::Result<Front> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        for counter in ROUTER_COUNTERS {
            sink.add(counter, 0);
        }
        for shard in 0..config.workers.max(1) {
            sink.add(&format!("router.proxied.shard.{shard}"), 0);
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let inner = Arc::new(FrontInner {
            shards: ShardMap::new(config.workers),
            upstreams: Arc::new(Upstreams::new(
                config.workers,
                config.per_worker_connections,
                config.upstream_wait,
            )),
            buckets: config.rate_limit.map(TokenBuckets::new),
            sink,
            shutdown: Arc::clone(&shutdown),
            next_trace: AtomicU64::new(0),
            config,
        });
        let options = pump::PumpOptions {
            threads: inner.config.threads,
            queue_depth: inner.config.queue_depth,
            name: "exq-front",
        };
        let reject_inner = Arc::clone(&inner);
        let serve_inner = Arc::clone(&inner);
        let pump = pump::start(
            listener,
            &options,
            shutdown,
            move |stream| {
                reject_inner.sink.incr("router.throttled");
                pump::reject(stream, &pump::busy_response());
            },
            move |stream| {
                let inner = Arc::clone(&serve_inner);
                pump::serve_connection(stream, move |stream, carry| {
                    serve_one(&inner, stream, carry)
                })
            },
        )?;
        Ok(Front {
            addr: local,
            inner,
            pump,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The per-shard connection pools — the supervisor publishes worker
    /// addresses here as they come up, move, or die.
    pub fn upstreams(&self) -> Arc<Upstreams> {
        Arc::clone(&self.inner.upstreams)
    }

    /// Stop accepting, drain in-flight client connections, join all
    /// threads, and return the front's final metrics snapshot.
    pub fn shutdown(self) -> Snapshot {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.pump.join();
        self.inner.sink.snapshot()
    }
}

/// One front request: read, admit, route, proxy, respond. Runs inside
/// [`pump::serve_connection`], exactly like the worker tier: keep-alive
/// on request, silent idle close.
fn serve_one(inner: &FrontInner, stream: &mut TcpStream, carry: &mut Vec<u8>) -> bool {
    // exq-lint: allow(L002): HTTP timeout/latency bookkeeping, never reaches explanation results
    let started = Instant::now();
    let deadline = started + inner.config.request_timeout;
    let read = pump::read_request(
        stream,
        &inner.config.limits,
        deadline,
        carry,
        &inner.shutdown,
    );
    let (request, response, trace_id) = match read {
        Ok(Some(request)) => {
            inner.sink.incr("router.requests");
            // The front allocates the trace id (honoring one the client
            // already sent) and hands it to the worker, so both tiers
            // log the same id for one request — and stamps it onto its
            // own trace events for the merged Chrome timeline.
            let trace_id = request
                .header("x-exq-trace-id")
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&id| id > 0)
                .unwrap_or_else(|| inner.next_trace.fetch_add(1, Ordering::Relaxed) + 1);
            inner.sink.set_trace(trace_id);
            let response = {
                let _span = inner.sink.span("router.request");
                route(inner, &request, trace_id)
            }
            .with_header("x-exq-trace-id", &trace_id.to_string());
            (Some(request), response, trace_id)
        }
        Ok(None) => return false,
        Err(response) => (None, response, 0),
    };
    match response.status {
        200 => inner.sink.incr("router.responses.ok"),
        400..=499 => inner.sink.incr("router.responses.client_error"),
        _ => inner.sink.incr("router.responses.server_error"),
    }
    let keep_alive = request.as_ref().is_some_and(|r| {
        r.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }) && response.status != 408
        && !inner.shutdown.load(Ordering::SeqCst);
    let written = stream
        .write_all(&response.to_bytes_with(keep_alive))
        .and_then(|()| stream.flush());
    let latency = started.elapsed();
    inner.sink.observe_duration("router.latency.front", latency);
    if inner.config.access_log.is_enabled() {
        let header_of = |name: &str| {
            response
                .extra_headers
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_str())
        };
        // The worker that answered, as stamped by the proxy; the cache
        // outcome rides in the `X-Exq-Cost` header it copied through.
        let shard = header_of("x-exq-shard").and_then(|v| v.parse::<u64>().ok());
        let cache = header_of("x-exq-cost")
            .and_then(|v| v.split(';').find_map(|kv| kv.strip_prefix("cache=")))
            .unwrap_or("-");
        inner.config.access_log.record(&AccessEntry {
            tenant: request.as_ref().and_then(|r| r.header("x-exq-tenant")),
            shard,
            endpoint: request
                .as_ref()
                .map_or("-", |r| r.path.split_once('?').map_or(r.path.as_str(), |(p, _)| p)),
            status: response.status,
            latency_ns: u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX),
            trace_id,
            cache,
        });
    }
    keep_alive && written.is_ok()
}

fn route(inner: &FrontInner, request: &Request, trace_id: u64) -> Response {
    let path = request
        .path
        .split_once('?')
        .map_or(request.path.as_str(), |(p, _)| p);
    // Work-bearing routes pass admission control, then proxy to the
    // dataset's shard.
    if request.method == "POST" {
        let dataset = match path {
            "/v1/explain" | "/v1/report" => dataset_from_body(&request.body),
            _ => dataset_from_append_path(path).map(str::to_string),
        };
        let routable = matches!(path, "/v1/explain" | "/v1/report")
            || dataset_from_append_path(path).is_some();
        if routable {
            if let Some(throttled) = admit(inner, request) {
                return throttled;
            }
            // No dataset parsed (bad JSON, missing field): any worker
            // renders the same canonical error body a single-process
            // server would, so shard 0 serves it.
            let shard = dataset.map_or(0, |name| inner.shards.shard_of(&name));
            return proxy(inner, request, shard, trace_id);
        }
    }
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            Response::json(200, "{\n  \"status\": \"ok\",\n  \"role\": \"front\"\n}\n")
        }
        ("GET", "/v1/health") => Response::json(200, health_doc(inner)),
        ("GET", "/metrics") => Response::text(200, fleet_prometheus(inner, trace_id)),
        ("GET", "/v1/metrics") => {
            let query = request.path.split_once('?').map_or("", |(_, q)| q);
            if query.split('&').any(|pair| pair == "format=prometheus") {
                Response::text(200, fleet_prometheus(inner, trace_id))
            } else if query.split('&').any(|pair| pair == "format=snapshot") {
                let (fleet, exemplars) = fleet_snapshot(inner, trace_id);
                let plain: Vec<Exemplar> = exemplars.into_iter().map(|(_, e)| e).collect();
                Response::text(200, exq_obs::encode_snapshot(&fleet, &plain))
            } else {
                let (fleet, _) = fleet_snapshot(inner, trace_id);
                Response::json(200, fleet.to_json() + "\n")
            }
        }
        ("GET", "/v1/datasets") => merged_datasets(inner, trace_id),
        ("GET", "/v1/debug/requests") => merged_debug(inner, "/v1/debug/requests", trace_id),
        ("GET", "/v1/debug/traces") => merged_debug(inner, "/v1/debug/traces", trace_id),
        (
            _,
            "/healthz" | "/v1/health" | "/v1/datasets" | "/metrics" | "/v1/metrics"
            | "/v1/debug/requests" | "/v1/debug/traces" | "/v1/explain" | "/v1/report",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// Apply admission control; `Some` is the throttle response.
fn admit(inner: &FrontInner, request: &Request) -> Option<Response> {
    let buckets = inner.buckets.as_ref()?;
    let tenant = request.header("x-exq-tenant").unwrap_or("");
    if buckets.try_take(tenant) {
        None
    } else {
        inner.sink.incr("router.throttled");
        Some(
            Response::error(503, "rate limit exceeded; retry shortly")
                .with_header("retry-after", "1"),
        )
    }
}

/// The `"dataset"` field of an explain/report body, if it parses.
fn dataset_from_body(body: &[u8]) -> Option<String> {
    let doc = json::parse(body).ok()?;
    doc.get("dataset")?.as_str().map(str::to_string)
}

/// The `{name}` of `/v1/datasets/{name}/rows`.
fn dataset_from_append_path(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/datasets/")
        .and_then(|rest| rest.strip_suffix("/rows"))
        .filter(|name| !name.is_empty() && !name.contains('/'))
}

/// Forward `request` to `shard`'s worker and convert the reply. Any
/// failure to reach the worker is a `503` + `Retry-After` — the
/// supervisor is restarting it, and clients already speak that dialect
/// — never a hang and never a made-up answer.
fn proxy(inner: &FrontInner, request: &Request, shard: usize, trace_id: u64) -> Response {
    let mut lease = match inner.upstreams.checkout(shard) {
        Ok(lease) => lease,
        Err(CheckoutError::Down) => {
            return Response::error(503, "shard worker unavailable; retry shortly")
                .with_header("retry-after", "1");
        }
        Err(CheckoutError::Busy) => {
            return Response::error(503, "shard worker saturated; retry shortly")
                .with_header("retry-after", "1");
        }
    };
    inner.sink.incr(if lease.was_pooled() {
        "router.upstream.reuses"
    } else {
        "router.upstream.connects"
    });
    let trace = trace_id.to_string();
    // Forward the tenant too: the worker's per-tenant cost accounting
    // keys off the same header the front's admission control uses.
    let mut headers: Vec<(&str, &str)> = vec![("x-exq-trace-id", &trace)];
    if let Some(tenant) = request.header("x-exq-tenant") {
        headers.push(("x-exq-tenant", tenant));
    }
    let sent = lease.conn.request_with(
        &request.method,
        &request.path,
        Some(&request.body),
        &headers,
    );
    match sent {
        Ok(upstream) => {
            inner.sink.incr(&format!("router.proxied.shard.{shard}"));
            inner.upstreams.checkin(shard, lease);
            convert(upstream, shard)
        }
        Err(_) => {
            inner.sink.incr("router.proxy.errors");
            inner.upstreams.discard(shard, lease);
            Response::error(503, "shard worker failed mid-request; retry shortly")
                .with_header("retry-after", "1")
        }
    }
}

/// A worker's reply as a front [`Response`]: body bytes verbatim,
/// meaningful headers (`X-Exq-Epoch`, `Retry-After`) copied through,
/// plus an `X-Exq-Shard` header naming the worker that answered. The
/// worker's own trace-id header is dropped — the front stamps the same
/// id on its way out.
fn convert(upstream: ClientResponse, shard: usize) -> Response {
    let content_type = match upstream.header("content-type") {
        Some(value) if value.starts_with("text/plain") => {
            "text/plain; version=0.0.4; charset=utf-8"
        }
        _ => "application/json",
    };
    let mut extra_headers = Vec::new();
    for name in ["x-exq-epoch", "x-exq-cost", "retry-after"] {
        if let Some(value) = upstream.header(name) {
            extra_headers.push((name.to_string(), value.to_string()));
        }
    }
    extra_headers.push(("x-exq-shard".to_string(), shard.to_string()));
    Response {
        status: upstream.status,
        body: upstream.body,
        content_type,
        extra_headers,
    }
}

/// `GET /v1/datasets` through the front: every worker holds only its
/// shard of the catalog, so the front fans out and merges. Entry lines
/// are re-sorted by dataset name so the merged document is byte-for-byte
/// what a single-process server holding the full catalog would emit.
/// Any unreachable worker fails the whole listing (a partial catalog
/// silently missing datasets is worse than a retryable error).
fn merged_datasets(inner: &FrontInner, trace_id: u64) -> Response {
    let mut entries: Vec<(String, String)> = Vec::new();
    for shard in 0..inner.shards.workers() {
        let mut lease = match inner.upstreams.checkout(shard) {
            Ok(lease) => lease,
            Err(_) => {
                return Response::error(503, "shard worker unavailable; retry shortly")
                    .with_header("retry-after", "1");
            }
        };
        inner.sink.incr(if lease.was_pooled() {
            "router.upstream.reuses"
        } else {
            "router.upstream.connects"
        });
        let trace = trace_id.to_string();
        let fetched =
            lease
                .conn
                .request_with("GET", "/v1/datasets", None, &[("x-exq-trace-id", &trace)]);
        let body = match fetched {
            Ok(response) if response.status == 200 => {
                inner.sink.incr(&format!("router.proxied.shard.{shard}"));
                inner.upstreams.checkin(shard, lease);
                response.text()
            }
            Ok(_) | Err(_) => {
                inner.sink.incr("router.proxy.errors");
                inner.upstreams.discard(shard, lease);
                return Response::error(503, "shard catalog listing failed; retry shortly")
                    .with_header("retry-after", "1");
            }
        };
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("    { \"name\": \"") {
                let name = json_string_prefix(rest);
                entries.push((name, line.trim_end_matches(',').to_string()));
            }
        }
    }
    entries.sort();
    let mut doc = String::from("{\n  \"datasets\": [\n");
    let last = entries.len();
    for (i, (_, line)) in entries.iter().enumerate() {
        doc.push_str(line);
        if i + 1 != last {
            doc.push(',');
        }
        doc.push('\n');
    }
    doc.push_str("  ]\n}\n");
    Response::json(200, doc)
}

/// Fetch one worker's GET endpoint over a pooled connection, returning
/// the body on a 200. Scrape traffic is the front's own observability
/// fan-in, not routed client work, so it books neither
/// `router.proxied.shard.*` nor — crucially — `router.proxy.errors`:
/// a worker mid-restart must degrade a scrape (the caller counts
/// `router.scrape.partial`), never fail it or dirty the proxy-error
/// budget the supervisor's drain report asserts on.
fn fetch_from_worker(
    inner: &FrontInner,
    shard: usize,
    path: &str,
    trace_id: u64,
) -> Result<String, ()> {
    let mut lease = inner.upstreams.checkout(shard).map_err(|_| ())?;
    inner.sink.incr(if lease.was_pooled() {
        "router.upstream.reuses"
    } else {
        "router.upstream.connects"
    });
    let trace = trace_id.to_string();
    let fetched = lease
        .conn
        .request_with("GET", path, None, &[("x-exq-trace-id", &trace)]);
    match fetched {
        Ok(response) if response.status == 200 => {
            inner.upstreams.checkin(shard, lease);
            Ok(response.text())
        }
        Ok(_) => {
            inner.upstreams.checkin(shard, lease);
            Err(())
        }
        Err(_) => {
            inner.upstreams.discard(shard, lease);
            Err(())
        }
    }
}

/// Scrape-time fan-in: pull every live worker's mergeable snapshot and
/// fold them into the front's own. The merged result carries
///
/// * **fleet-aggregate** counters and histograms — exact sums and
///   bucket-wise histogram merges, so a fleet p99 read off the merged
///   buckets is the true quantile bound of the concatenated samples,
///   not an average of per-shard percentiles;
/// * **per-shard labelled copies** of every worker counter, named
///   `<counter>.shard.<i>` so the Prometheus renderer's shard-family
///   rule turns them into `exq_<counter>_shard{shard="i"}`.
///
/// Downed or mid-restart shards are skipped and tallied in
/// `router.scrape.partial`; a scrape never fails outright. Returns the
/// merged snapshot and each retained exemplar tagged with its shard.
fn fleet_snapshot(inner: &FrontInner, trace_id: u64) -> (Snapshot, Vec<(usize, Exemplar)>) {
    let mut scraped: Vec<(usize, Snapshot, Vec<Exemplar>)> = Vec::new();
    let mut partial = 0u64;
    for shard in 0..inner.shards.workers() {
        match fetch_from_worker(inner, shard, "/v1/metrics?format=snapshot", trace_id)
            .and_then(|text| exq_obs::decode_snapshot(&text).map_err(|_| ()))
        {
            Ok((snapshot, exemplars)) => scraped.push((shard, snapshot, exemplars)),
            Err(()) => partial += 1,
        }
    }
    if partial > 0 {
        inner.sink.add("router.scrape.partial", partial);
    }
    // The front's own snapshot is the merge base, taken *after* the
    // fan-out so the scrape bookkeeping above is already in it.
    let mut fleet = inner.sink.snapshot();
    let mut tagged = Vec::new();
    for (shard, snapshot, exemplars) in scraped {
        for (name, value) in &snapshot.counters {
            fleet.counters.insert(format!("{name}.shard.{shard}"), *value);
        }
        fleet.merge(&snapshot);
        tagged.extend(exemplars.into_iter().map(|e| (shard, e)));
    }
    (fleet, tagged)
}

/// The fleet Prometheus exposition: merged families plus one
/// shard-labelled exemplar comment per retained trace.
fn fleet_prometheus(inner: &FrontInner, trace_id: u64) -> String {
    let (fleet, exemplars) = fleet_snapshot(inner, trace_id);
    let mut text = fleet.to_prometheus();
    for (shard, exemplar) in &exemplars {
        text.push_str(&exemplar.to_prometheus_comment(Some(*shard as u64)));
        text.push('\n');
    }
    text
}

/// Debug fan-in (`/v1/debug/requests`, `/v1/debug/traces`): each live
/// worker's document embedded verbatim under its shard id, downed
/// shards counted in `"partial"` (and `router.scrape.partial`). Always
/// answers 200 — a half-degraded fleet is exactly when the flight
/// recorders are most wanted.
fn merged_debug(inner: &FrontInner, path: &str, trace_id: u64) -> Response {
    use std::fmt::Write as _;
    let mut shard_docs: Vec<(usize, String)> = Vec::new();
    let mut partial = 0u64;
    for shard in 0..inner.shards.workers() {
        match fetch_from_worker(inner, shard, path, trace_id) {
            Ok(doc) => shard_docs.push((shard, doc)),
            Err(()) => partial += 1,
        }
    }
    if partial > 0 {
        inner.sink.add("router.scrape.partial", partial);
    }
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"partial\": {partial},");
    out.push_str("  \"shards\": {");
    let last = shard_docs.len();
    for (i, (shard, doc)) in shard_docs.iter().enumerate() {
        let sep = if i + 1 == last { "" } else { "," };
        // Worker documents are single JSON objects; embed them verbatim
        // (re-indenting would mean re-serializing, and byte fidelity is
        // worth more than pretty nesting here).
        let _ = write!(out, "\n    \"{shard}\": {}{sep}", doc.trim_end());
    }
    out.push_str(if shard_docs.is_empty() {
        "}\n}\n"
    } else {
        "\n  }\n}\n"
    });
    Response::json(200, out)
}

/// The decoded content of a JSON string whose opening quote was already
/// consumed: scan to the closing quote (backslash-escape aware) and
/// unescape. Used to sort merged catalog entries by their *actual*
/// dataset name, matching the BTreeMap order a single process uses.
fn json_string_prefix(rest: &str) -> String {
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => break,
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if let Some(decoded) =
                        u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32)
                    {
                        out.push(decoded);
                    }
                }
                Some(other) => out.push(other),
                None => break,
            },
            _ => out.push(c),
        }
    }
    out
}

/// The front's `GET /v1/health`: topology at a glance — worker count,
/// which shards are currently routable, and which datasets the
/// consistent-hash ring assigns to each.
fn health_doc(inner: &FrontInner) -> String {
    use std::fmt::Write as _;
    let workers = inner.shards.workers();
    let mut groups: Vec<Vec<&str>> = vec![Vec::new(); workers];
    for name in &inner.config.datasets {
        groups[inner.shards.shard_of(name)].push(name);
    }
    let mut out = format!(
        "{{\n  \"status\": \"ok\",\n  \"role\": \"front\",\n  \"workers\": {workers},\n  \"shards\": [\n"
    );
    for (shard, group) in groups.iter().enumerate() {
        let alive = inner.upstreams.addr(shard).is_some();
        let sep = if shard + 1 == workers { "" } else { "," };
        let names: Vec<String> = group
            .iter()
            .map(|n| format!("\"{}\"", exq_obs::escape_json(n)))
            .collect();
        let _ = writeln!(
            out,
            "    {{ \"shard\": {shard}, \"alive\": {alive}, \"datasets\": [{}{}{}] }}{sep}",
            if names.is_empty() { "" } else { " " },
            names.join(", "),
            if names.is_empty() { "" } else { " " },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_serve::client;
    use exq_serve::http;
    use std::io::Read;
    use std::sync::atomic::AtomicUsize;

    /// A stub worker: parses real HTTP, answers via `handler`, honors
    /// keep-alive. Good enough to test routing, proxying, and header
    /// conversion without building a catalog.
    fn stub_worker(handler: impl Fn(&Request) -> Response + Send + 'static) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { continue };
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let mut carry = Vec::new();
                let mut chunk = [0u8; 4096];
                loop {
                    let request = loop {
                        match http::parse_request(&carry, &Limits::default()) {
                            Ok(Some((request, consumed))) => {
                                carry.drain(..consumed);
                                break Some(request);
                            }
                            Ok(None) => match stream.read(&mut chunk) {
                                Ok(0) => break None,
                                Ok(n) => carry.extend_from_slice(&chunk[..n]),
                                Err(_) => break None,
                            },
                            Err(_) => break None,
                        }
                    };
                    let Some(request) = request else { break };
                    let keep = request
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"));
                    let response = handler(&request);
                    if stream.write_all(&response.to_bytes_with(keep)).is_err() || !keep {
                        break;
                    }
                }
            }
        });
        addr
    }

    fn front_with(config: FrontConfig, worker: Option<SocketAddr>) -> Front {
        let front =
            Front::start_on(("127.0.0.1", 0), config, MetricsSink::recording()).expect("front");
        if let Some(addr) = worker {
            front.upstreams().set_addr(0, Some(addr));
        }
        front
    }

    #[test]
    fn front_serves_its_own_endpoints() {
        let front = front_with(
            FrontConfig {
                datasets: vec!["dblp".to_string()],
                ..FrontConfig::default()
            },
            None,
        );
        let healthz = client::get(front.addr(), "/healthz").unwrap();
        assert_eq!(healthz.status, 200);
        assert!(healthz.text().contains("\"role\": \"front\""));
        let health = client::get(front.addr(), "/v1/health").unwrap();
        assert!(health.text().contains("\"alive\": false"));
        assert!(health.text().contains("\"dblp\""));
        // With its only worker down, the fleet scrape degrades to the
        // front's own families — a valid exposition, never a failure.
        let metrics = client::get(front.addr(), "/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        let exposition = metrics.text();
        exq_obs::check_prometheus(&exposition).unwrap_or_else(|e| panic!("{e}\n{exposition}"));
        assert!(exposition.contains("router_requests"), "{exposition}");
        // Debug fan-in likewise: 200 with the downed shard tallied.
        let debug = client::get(front.addr(), "/v1/debug/requests").unwrap();
        assert_eq!(debug.status, 200);
        let doc = json::parse(debug.text().as_bytes()).unwrap();
        assert_eq!(doc.get("partial").and_then(|v| v.as_usize()), Some(1));
        let snapshot = front.shutdown();
        assert_eq!(snapshot.counter("router.requests"), 4);
        assert_eq!(snapshot.counter("router.responses.ok"), 4);
        // One partial per degraded fan-out: /metrics and the debug fan-in.
        assert_eq!(snapshot.counter("router.scrape.partial"), 2);
        assert_eq!(snapshot.counter("router.proxy.errors"), 0);
    }

    /// ISSUE 10 regression: every GET endpoint a worker serves must be
    /// reachable *through* the front — either answered by the front
    /// itself or fanned in from the workers. `/v1/debug/requests`
    /// 404ing at the front was the original bug.
    #[test]
    fn every_worker_get_endpoint_is_reachable_through_the_front() {
        let worker = exq_serve::start(
            exq_serve::Catalog::new(),
            exq_serve::ServerConfig {
                threads: 1,
                shard_id: Some(0),
                ..exq_serve::ServerConfig::default()
            },
            MetricsSink::recording(),
        )
        .unwrap();
        let front = front_with(FrontConfig::default(), Some(worker.addr()));
        for path in [
            "/healthz",
            "/v1/health",
            "/v1/datasets",
            "/metrics",
            "/v1/metrics",
            "/v1/metrics?format=prometheus",
            "/v1/metrics?format=snapshot",
            "/v1/debug/requests",
            "/v1/debug/traces",
        ] {
            let reply = client::get(front.addr(), path).unwrap();
            assert_eq!(reply.status, 200, "GET {path} through the front");
        }
        front.shutdown();
        worker.shutdown();
    }

    /// Fleet scrape: merged counters conserve the per-worker values,
    /// per-shard labelled families appear, fleet histograms merge
    /// bucket-wise, and retained-trace exemplars ride along
    /// shard-tagged. Uses two *real* workers so the wire format, the
    /// merge, and the exposition are all exercised end to end.
    #[test]
    fn fleet_scrape_merges_workers_with_conservation_and_exemplars() {
        let start_worker = |shard: u64| {
            exq_serve::start(
                exq_serve::Catalog::new(),
                exq_serve::ServerConfig {
                    threads: 1,
                    shard_id: Some(shard),
                    trace_slow_ms: Some(0), // retain everything → exemplars exist
                    ..exq_serve::ServerConfig::default()
                },
                MetricsSink::recording(),
            )
            .unwrap()
        };
        let workers = [start_worker(0), start_worker(1)];
        let front = front_with(
            FrontConfig {
                workers: 2,
                ..FrontConfig::default()
            },
            None,
        );
        for (shard, worker) in workers.iter().enumerate() {
            front.upstreams().set_addr(shard, Some(worker.addr()));
        }
        // Touch both workers through the front (the datasets fan-out
        // hits every shard) so they have non-trivial counters and at
        // least one retained trace each before the first scrape.
        let listing = client::get(front.addr(), "/v1/datasets").unwrap();
        assert_eq!(listing.status, 200);

        // Fleet exposition: checker-clean, with per-shard families for
        // worker counters and shard-tagged exemplar comments.
        let prom = client::get(front.addr(), "/metrics").unwrap();
        let text = prom.text();
        exq_obs::check_prometheus(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        for family in [
            "exq_server_requests_shard{shard=\"0\"}",
            "exq_server_requests_shard{shard=\"1\"}",
            "exq_server_requests ",
            "exq_server_latency_other_bucket",
        ] {
            assert!(text.contains(family), "missing {family} in {text}");
        }
        assert!(
            text.lines().any(|l| l.starts_with("# exemplar ") && l.contains("shard=\"")),
            "no shard-tagged exemplar comment in {text}"
        );

        // Conservation: fleet server.requests == Σ per-worker values,
        // accounting for the deterministic self-counting offsets (a
        // worker's scrape GET increments its own counter before the
        // snapshot is taken, so each later direct scrape reads one
        // more than the fleet scrape saw).
        let wire = client::get(front.addr(), "/v1/metrics?format=snapshot").unwrap();
        let (fleet, _) = exq_obs::decode_snapshot(&wire.text()).unwrap();
        let fleet_requests = fleet.counter("server.requests");
        let mut direct_sum = 0;
        for worker in &workers {
            let direct = client::get(worker.addr(), "/v1/metrics?format=snapshot").unwrap();
            let (snapshot, _) = exq_obs::decode_snapshot(&direct.text()).unwrap();
            direct_sum += snapshot.counter("server.requests");
        }
        assert_eq!(
            direct_sum,
            fleet_requests + 2,
            "fleet scrape must conserve per-worker request counts"
        );
        // The per-shard labelled copies sum to the fleet aggregate too.
        assert_eq!(
            fleet.counter("server.requests.shard.0") + fleet.counter("server.requests.shard.1"),
            fleet_requests,
        );
        // Histogram mass conserves bucket-wise: the merged histogram's
        // count equals its bucket-count total.
        let merged = fleet
            .histograms
            .get("server.latency.other")
            .expect("fleet latency histogram");
        assert_eq!(
            merged.count,
            merged.buckets.iter().map(|(_, c)| c).sum::<u64>()
        );

        let snapshot = front.shutdown();
        assert_eq!(snapshot.counter("router.scrape.partial"), 0);
        assert_eq!(snapshot.counter("router.proxy.errors"), 0);
        for worker in workers {
            worker.shutdown();
        }
    }

    #[test]
    fn proxy_round_trips_bodies_and_tags_the_shard() {
        let body = "{\n  \"explanations\": []\n}\n";
        let worker = stub_worker(move |request| {
            assert!(
                request.header("x-exq-trace-id").is_some(),
                "front must propagate a trace id"
            );
            Response::json(200, body).with_header("x-exq-epoch", "7")
        });
        let front = front_with(FrontConfig::default(), Some(worker));
        let reply = client::post_json(
            front.addr(),
            "/v1/explain",
            "{ \"dataset\": \"dblp\", \"question\": \"?\" }",
        )
        .unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.text(), body, "proxied body is byte-identical");
        assert_eq!(reply.header("x-exq-shard"), Some("0"));
        assert_eq!(reply.header("x-exq-epoch"), Some("7"));
        assert!(reply.header("x-exq-trace-id").is_some());
        let snapshot = front.shutdown();
        assert_eq!(snapshot.counter("router.proxied.shard.0"), 1);
        assert_eq!(snapshot.counter("router.upstream.connects"), 1);
    }

    #[test]
    fn down_worker_means_bounded_503_not_a_hang() {
        let front = front_with(FrontConfig::default(), None);
        let reply =
            client::post_json(front.addr(), "/v1/explain", "{ \"dataset\": \"x\" }").unwrap();
        assert_eq!(reply.status, 503);
        assert_eq!(reply.header("retry-after"), Some("1"));
        front.shutdown();
    }

    #[test]
    fn admission_control_throttles_past_the_burst() {
        let served = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&served);
        let worker = stub_worker(move |_| {
            counted.fetch_add(1, Ordering::SeqCst);
            Response::json(200, "{}\n")
        });
        let front = front_with(
            FrontConfig {
                // rate 0.5/s → burst max(1.0) = 1 token: first request
                // admitted, second throttled (no refill that fast).
                rate_limit: Some(0.5),
                ..FrontConfig::default()
            },
            Some(worker),
        );
        let first =
            client::post_json(front.addr(), "/v1/explain", "{ \"dataset\": \"x\" }").unwrap();
        assert_eq!(first.status, 200);
        let second =
            client::post_json(front.addr(), "/v1/explain", "{ \"dataset\": \"x\" }").unwrap();
        assert_eq!(second.status, 503);
        assert_eq!(second.header("retry-after"), Some("1"));
        // A different tenant has its own bucket.
        let mut conn = client::Connection::new(front.addr());
        let other = conn
            .request_with(
                "POST",
                "/v1/explain",
                Some(b"{ \"dataset\": \"x\" }"),
                &[("x-exq-tenant", "other")],
            )
            .unwrap();
        assert_eq!(other.status, 200);
        let snapshot = front.shutdown();
        assert_eq!(snapshot.counter("router.throttled"), 1);
        assert_eq!(served.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn unparseable_bodies_still_reach_a_worker_for_the_canonical_error() {
        let worker = stub_worker(|_| Response::error(400, "bad json"));
        let front = front_with(FrontConfig::default(), Some(worker));
        let reply = client::post_json(front.addr(), "/v1/explain", "not json at all").unwrap();
        assert_eq!(reply.status, 400, "the worker's error comes through");
        assert_eq!(reply.header("x-exq-shard"), Some("0"));
        front.shutdown();
    }
}
