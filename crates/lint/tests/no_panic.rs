//! The linter must be *total*: arbitrary bytes, truncated source, and
//! randomly mutated Rust all lex, mask, and lint without panicking.
//! (A linter that crashes on the code it is pointed at is worse than
//! no linter — it takes CI down with it.)

use exq_lint::lexer::lex;
use exq_lint::{lint_sources, LintSource};
use proptest::prelude::*;

/// A small but representative Rust-ish seed exercising every token
/// class the lexer distinguishes.
const SEED: &str = r####"
//! Doc comment with `code` and "quotes".
use std::collections::HashMap;

/// Outer doc.
pub fn f<'a>(s: &'a str, m: &HashMap<u32, f64>) -> String {
    let raw = r#"raw "string" body"#;
    let byte = b"bytes\xff";
    let ch = 'x';
    let life: &'static str = "life";
    let num = 0x1f_u64 + 1.5e3 + 0b101;
    /* block /* nested */ comment */
    let range = 1..10;
    format!("{raw}{byte:?}{ch}{life}{num}{range:?}{}", m.len())
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() { println!("test-only"); }
}
"####;

fn lint_never_panics(path: &str, text: &str) {
    let src = LintSource::new(path, text);
    let _ = lint_sources(std::slice::from_ref(&src));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable-plus-specials soup: the lexer must emit
    /// tokens covering the input and never panic; the rules must run.
    #[test]
    fn arbitrary_text_lints(s in "[ -~\n\t\u{3}é\"'\\\\]{0,64}") {
        let toks = lex(&s);
        for t in &toks {
            prop_assert!(t.start <= t.end && t.end <= s.len());
            prop_assert!(s.is_char_boundary(t.start) && s.is_char_boundary(t.end));
        }
        lint_never_panics("crates/core/src/x.rs", &s);
    }

    /// Mutated real Rust: splice arbitrary garbage into the seed at an
    /// arbitrary char boundary, optionally truncating — unterminated
    /// strings, half comments, and split tokens must all be tolerated.
    #[test]
    fn mutated_rust_lints(
        at in 0usize..1000,
        cut in 0usize..1000,
        garbage in "[ -~\n\"'/*#!\\\\]{0,16}",
    ) {
        let boundaries: Vec<usize> = SEED
            .char_indices()
            .map(|(i, _)| i)
            .chain(std::iter::once(SEED.len()))
            .collect();
        let at = boundaries[at % boundaries.len()];
        let cut = boundaries[cut % boundaries.len()];
        let mut text = String::with_capacity(SEED.len() + garbage.len());
        text.push_str(&SEED[..at]);
        text.push_str(&garbage);
        text.push_str(&SEED[at..]);
        lint_never_panics("crates/relstore/src/x.rs", &text);
        lint_never_panics("crates/obs/src/x.rs", &SEED[..cut]);
    }
}
