//! The token-pattern rules, `L001`–`L006`.
//!
//! Every rule works on [`LintSource::code`] — the lexed stream with
//! comments and `#[cfg(test)]` items already removed — so string
//! literals and doc comments can never trigger a rule. Each rule has a
//! stable code, an error/warning severity, and (where the fix is
//! mechanical) a help suggestion; see the crate docs for the catalogue
//! and `tests/fixtures/lint/` for one seeded violation per rule.

use crate::lexer::{Tok, TokKind};
use crate::LintSource;
use exq_analyze::{Diagnostic, Span};
use std::collections::BTreeSet;

/// Crates whose hot paths carry the bit-identical-explanations
/// contract; `L001` applies only to these.
const DETERMINISM_CRATES: &[&str] = &["relstore", "core"];

/// Files allowed to reason about the current thread (`L003`).
const THREAD_ID_EXEMPT: &[&str] = &["relstore/src/par.rs", "obs/src/trace.rs"];

/// Methods whose iteration order is the hash order of the container.
const UNORDERED_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Run the single-file rules over one source.
pub(crate) fn per_file(s: &LintSource, out: &mut Vec<Diagnostic>) {
    let unordered = unordered_names(s);
    if DETERMINISM_CRATES.contains(&s.krate.as_str()) {
        l001_unordered_iteration(s, &unordered, out);
    }
    l002_wall_clock(s, out);
    l003_thread_id(s, out);
    l004_float_accumulation(s, &unordered, out);
    l005_prints_in_libs(s, out);
}

/// Run the cross-file rules (`L006`) over the whole source set.
pub(crate) fn cross_file(sources: &[LintSource], out: &mut Vec<Diagnostic>) {
    l006_duplicate_helpers(sources, out);
}

fn text(s: &LintSource, i: usize) -> &str {
    s.code.get(i).map_or("", |t| t.text(&s.text))
}

fn is(s: &LintSource, i: usize, t: &str) -> bool {
    text(s, i) == t
}

fn kind(s: &LintSource, i: usize) -> Option<TokKind> {
    s.code.get(i).map(|t| t.kind)
}

fn span_of(t: &Tok, src: &LintSource) -> Span {
    Span::new(t.line, t.col, t.text(&src.text).chars().count())
}

/// Names bound (or typed) as `HashMap`/`HashSet` in this file, with the
/// container named for the message.
///
/// Two shapes are recognised:
/// - a type ascription `name: [&][mut][std::collections::]HashMap<…>`
///   (params, struct fields, lets with explicit types);
/// - a `let [mut] name = … HashMap::new()/with_capacity()/default()/
///   from_iter()` initialiser.
fn unordered_names(s: &LintSource) -> Vec<(String, &'static str)> {
    let mut names: Vec<(String, &'static str)> = Vec::new();
    let mut push = |name: &str, container: &'static str| {
        if !names.iter().any(|(n, _)| n == name) {
            names.push((name.to_owned(), container));
        }
    };
    for i in 0..s.code.len() {
        let container = match text(s, i) {
            "HashMap" => "HashMap",
            "HashSet" => "HashSet",
            _ => continue,
        };
        // Shape 1: walk back over `:: std collections & mut 'a dyn` to
        // a `name :` binder.
        let mut k = i;
        while k > 0 {
            let prev = text(s, k - 1);
            let skippable = matches!(prev, ":" | "&" | "mut" | "std" | "collections" | "dyn")
                || kind(s, k - 1) == Some(TokKind::Lifetime);
            if !skippable {
                break;
            }
            k -= 1;
        }
        if k > 0 && k < i && kind(s, k - 1) == Some(TokKind::Ident) && is(s, k, ":") {
            let name = text(s, k - 1);
            if !matches!(name, "collections" | "std") {
                push(name, container);
            }
        }
        // Shape 2: `HashMap :: new(…)` etc. — find the enclosing `let`.
        if is(s, i + 1, ":")
            && is(s, i + 2, ":")
            && matches!(
                text(s, i + 3),
                "new" | "with_capacity" | "default" | "from_iter" | "from"
            )
        {
            let mut k = i;
            let mut budget = 40usize;
            while k > 0 && budget > 0 {
                match text(s, k - 1) {
                    // `;`/braces end the statement; `!`, `[`, and `|`
                    // mean the constructor sits inside a macro, an
                    // array/`vec!` element, or a closure — the binding
                    // to the left is a *container of* maps (e.g.
                    // `let per_mask: Vec<HashMap<…>> =
                    // (0..n).map(|_| HashMap::new()).collect()`), which
                    // iterates in its own deterministic order.
                    ";" | "{" | "}" | "!" | "[" | "|" => break,
                    "let" => {
                        let j = k + usize::from(is(s, k, "mut"));
                        if kind(s, j) == Some(TokKind::Ident) {
                            push(text(s, j), container);
                        }
                        break;
                    }
                    _ => {}
                }
                k -= 1;
                budget -= 1;
            }
        }
    }
    names
}

/// Find `name.method(` and `for … in [&][mut] name {` iteration sites
/// for any unordered `name`; calls `hit` with the flagged token and the
/// container kind.
fn for_each_unordered_iteration<'a>(
    s: &'a LintSource,
    unordered: &'a [(String, &'static str)],
    mut hit: impl FnMut(usize, &'a Tok, &'static str),
) {
    let container_of = |name: &str| unordered.iter().find(|(n, _)| n == name).map(|&(_, c)| c);
    for i in 0..s.code.len() {
        if kind(s, i) != Some(TokKind::Ident) {
            continue;
        }
        let Some(container) = container_of(text(s, i)) else {
            continue;
        };
        // `name . iter ( …`
        if is(s, i + 1, ".")
            && UNORDERED_ITER_METHODS.contains(&text(s, i + 2))
            && is(s, i + 3, "(")
        {
            hit(i, &s.code[i], container);
            continue;
        }
        // `for pat in [&][mut] name {` — require an `in` just before
        // (after optional `&`/`mut`) and an opening brace just after.
        let mut k = i;
        while k > 0 && matches!(text(s, k - 1), "&" | "mut") {
            k -= 1;
        }
        if k > 0 && is(s, k - 1, "in") && is(s, i + 1, "{") {
            hit(i, &s.code[i], container);
        }
    }
}

/// L001: `HashMap`/`HashSet` iteration in a determinism-scoped crate.
///
/// The sanctioned fix — drain into a `Vec` and sort before the order
/// becomes observable — is recognised and not flagged: a `collect`
/// followed by a `sort*` call within the lookahead window means the
/// hash order dies in the sort.
fn l001_unordered_iteration(
    s: &LintSource,
    unordered: &[(String, &'static str)],
    out: &mut Vec<Diagnostic>,
) {
    for_each_unordered_iteration(s, unordered, |i, tok, container| {
        if collect_then_sort(s, i) {
            return;
        }
        out.push(
            Diagnostic::error(
                "L001",
                &s.path,
                span_of(tok, s),
                format!(
                    "iteration over unordered {container} `{}` in determinism-scoped crate `{}`",
                    text(s, i),
                    s.krate
                ),
            )
            .with_help(
                "collect and sort the entries before folding them into results, \
                 or add `// exq-lint: allow(L001): <why order cannot matter>`",
            ),
        );
    });
}

/// The collect-then-sort idiom: within the lookahead window after an
/// unordered iteration site, a `collect` with a later `sort`/
/// `sort_unstable`/`sort_by_key`/… call (possibly on the next
/// statement) turns the hash order into a sorted order before anything
/// can observe it.
fn collect_then_sort(s: &LintSource, i: usize) -> bool {
    let mut collected = false;
    for j in i..(i + 60).min(s.code.len()) {
        let t = text(s, j);
        if !collected {
            collected = t == "collect";
        } else if t.starts_with("sort") {
            return true;
        }
    }
    false
}

/// L002: wall-clock reads outside `crates/obs` library internals.
fn l002_wall_clock(s: &LintSource, out: &mut Vec<Diagnostic>) {
    if s.krate == "obs" || !s.is_lib {
        return;
    }
    for i in 0..s.code.len() {
        let flagged = match text(s, i) {
            "Instant" => is(s, i + 1, ":") && is(s, i + 2, ":") && is(s, i + 3, "now"),
            "SystemTime" | "UNIX_EPOCH" => true,
            _ => false,
        };
        if flagged {
            out.push(
                Diagnostic::error(
                    "L002",
                    &s.path,
                    span_of(&s.code[i], s),
                    format!(
                        "wall-clock read (`{}`) outside `crates/obs` span internals",
                        text(s, i)
                    ),
                )
                .with_help(
                    "time through `MetricsSink::span`/`observe_duration` so clock reads \
                     stay behind the obs boundary, or add \
                     `// exq-lint: allow(L002): <why this read cannot leak into results>`",
                ),
            );
        }
    }
}

/// L003: `thread::current()` outside the two files that own thread
/// identity (`relstore/src/par.rs` work stealing, `obs/src/trace.rs`
/// trace attribution).
fn l003_thread_id(s: &LintSource, out: &mut Vec<Diagnostic>) {
    if THREAD_ID_EXEMPT.iter().any(|e| s.path.ends_with(e)) {
        return;
    }
    for i in 0..s.code.len() {
        if is(s, i, "thread") && is(s, i + 1, ":") && is(s, i + 2, ":") && is(s, i + 3, "current") {
            out.push(
                Diagnostic::error(
                    "L003",
                    &s.path,
                    span_of(&s.code[i], s),
                    "thread-identity logic outside `relstore/src/par.rs`/`obs/src/trace.rs`",
                )
                .with_help(
                    "results must not depend on which worker computed them; pass an explicit \
                     worker index instead of `thread::current()`",
                ),
            );
        }
    }
}

/// L004: float accumulation driven by an unordered iterator — float
/// addition does not commute in rounding, so hash-order folds make
/// results run-dependent in *any* crate.
fn l004_float_accumulation(
    s: &LintSource,
    unordered: &[(String, &'static str)],
    out: &mut Vec<Diagnostic>,
) {
    for_each_unordered_iteration(s, unordered, |i, tok, container| {
        // Look ahead over the rest of the statement for an
        // accumulator and float evidence.
        let mut accumulates = false;
        let mut floaty = false;
        for j in i..(i + 40).min(s.code.len()) {
            match text(s, j) {
                ";" => break,
                "sum" | "product" | "fold" => accumulates = true,
                "f64" | "f32" => floaty = true,
                _ => {
                    if kind(s, j) == Some(TokKind::Num) && text(s, j).contains('.') {
                        floaty = true;
                    }
                }
            }
        }
        if accumulates && floaty {
            out.push(
                Diagnostic::error(
                    "L004",
                    &s.path,
                    span_of(tok, s),
                    format!(
                        "float accumulation over unordered {container} `{}`",
                        text(s, i)
                    ),
                )
                .with_help(
                    "sort the entries before summing (float addition is not associative), \
                     or add `// exq-lint: allow(L004): <why rounding order cannot matter>`",
                ),
            );
        }
    });
}

/// L005: `print!`-family and `dbg!` in library crates — libraries
/// report through `Diagnostic`s or the metrics sink, never stdout.
fn l005_prints_in_libs(s: &LintSource, out: &mut Vec<Diagnostic>) {
    if !s.is_lib {
        return;
    }
    for i in 0..s.code.len() {
        let name = text(s, i);
        if matches!(name, "print" | "println" | "eprint" | "eprintln" | "dbg") && is(s, i + 1, "!")
        {
            out.push(
                Diagnostic::error(
                    "L005",
                    &s.path,
                    span_of(&s.code[i], s),
                    format!("`{name}!` in library crate `{}`", s.krate),
                )
                .with_help(
                    "return the text to the caller or emit through `MetricsSink::note`; \
                     only binaries own stdio",
                ),
            );
        }
    }
}

// --- L006: near-duplicate helpers across crates -------------------------

/// Shingle length for the similarity fingerprint: long enough that a
/// match means several statements in a row, short enough to survive
/// small edits (`format!` vs `write!`).
const SHINGLE_LEN: usize = 8;
/// Minimum normalized body length worth comparing — below this,
/// idiomatic one-liners collide constantly.
const MIN_BODY_TOKENS: usize = 40;
/// Containment (shared shingles / smaller shingle set) at which two
/// bodies count as duplicates. Containment rather than Jaccard because
/// a copy usually *adds* to the original (the historical
/// `render::json_str` wrapped `obs::escape_json`'s body in quote
/// pushes), and additions should not dilute the match. Calibrated on
/// the workspace — see `dup_threshold_separates_real_pairs` below.
const DUP_THRESHOLD_PERCENT: u64 = 60;

struct FnDef<'a> {
    krate: &'a str,
    path: &'a str,
    name: String,
    tok: Tok,
    body_len: usize,
    shingles: BTreeSet<u64>,
}

/// L006: the same helper maintained in two crates drifts apart
/// silently; flag near-identical `fn` bodies across crate boundaries.
fn l006_duplicate_helpers(sources: &[LintSource], out: &mut Vec<Diagnostic>) {
    let mut fns: Vec<FnDef<'_>> = Vec::new();
    for s in sources {
        collect_fns(s, &mut fns);
    }
    for a in 0..fns.len() {
        for b in (a + 1)..fns.len() {
            let (fa, fb) = (&fns[a], &fns[b]);
            if fa.krate == fb.krate {
                continue;
            }
            let (small, large) = if fa.body_len <= fb.body_len {
                (fa.body_len, fb.body_len)
            } else {
                (fb.body_len, fa.body_len)
            };
            if small * 2 < large {
                continue; // too different in size to be a copy
            }
            let inter = fa.shingles.intersection(&fb.shingles).count() as u64;
            let smaller = fa.shingles.len().min(fb.shingles.len()) as u64;
            if smaller == 0 {
                continue;
            }
            let pct = inter * 100 / smaller;
            if pct >= DUP_THRESHOLD_PERCENT {
                let src = sources.iter().find(|s| s.path == fb.path).unwrap();
                out.push(
                    Diagnostic::warning(
                        "L006",
                        fb.path,
                        span_of(&fb.tok, src),
                        format!(
                            "`{}` duplicates `{}` from `{}` ({}:{}, {pct}% token overlap)",
                            fb.name, fa.name, fa.krate, fa.path, fa.tok.line
                        ),
                    )
                    .with_help("extract one shared helper (the copies will drift apart silently)"),
                );
            }
        }
    }
}

/// Extract every `fn name(…) { body }` with a normalized-body
/// fingerprint.
fn collect_fns<'a>(s: &'a LintSource, out: &mut Vec<FnDef<'a>>) {
    let mut i = 0;
    while i < s.code.len() {
        if !(is(s, i, "fn") && kind(s, i + 1) == Some(TokKind::Ident)) {
            i += 1;
            continue;
        }
        let name_tok = s.code[i + 1];
        // Find the body's opening brace at paren depth 0; a `;` first
        // means a trait-method signature without a body.
        let mut j = i + 2;
        let mut paren = 0usize;
        let body_start = loop {
            match (kind(s, j), text(s, j)) {
                (None, _) => break None,
                (_, "(") => paren += 1,
                (_, ")") => paren = paren.saturating_sub(1),
                (_, ";") if paren == 0 => break None,
                (_, "{") if paren == 0 => break Some(j),
                _ => {}
            }
            j += 1;
        };
        let Some(start) = body_start else {
            i += 2;
            continue;
        };
        // Match the braces.
        let mut depth = 0usize;
        let mut end = start;
        while end < s.code.len() {
            match text(s, end) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let norm = normalize(s, start + 1, end.min(s.code.len()));
        if norm.len() >= MIN_BODY_TOKENS {
            let mut shingles = BTreeSet::new();
            for w in norm.windows(SHINGLE_LEN) {
                shingles.insert(fnv1a(w));
            }
            out.push(FnDef {
                krate: &s.krate,
                path: &s.path,
                name: s.tok_text(&name_tok).to_owned(),
                tok: name_tok,
                body_len: norm.len(),
                shingles,
            });
        }
        i = end.max(i + 2);
    }
}

/// Body normalization: identifier and punctuation text verbatim,
/// lifetimes and numbers collapsed to their kind. Identifiers are
/// deliberately *not* α-renamed: real copy-paste keeps names, and
/// position-sensitive renaming schemes (de Bruijn indices) shatter the
/// whole fingerprint when one early statement differs — a copy that
/// consistently renames every variable is out of scope (precision over
/// recall). String literals stay verbatim because they are the
/// *behaviour* of table-driven helpers (match arms).
fn normalize(s: &LintSource, start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(end.saturating_sub(start));
    for t in &s.code[start..end] {
        out.push(match t.kind {
            TokKind::Lifetime => "'_".to_owned(),
            TokKind::Num => "N".to_owned(),
            _ => t.text(&s.text).to_owned(),
        });
    }
    out
}

fn fnv1a(window: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in window {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
        let s = LintSource::new(path, src);
        let mut out = Vec::new();
        per_file(&s, &mut out);
        crate::apply_allows(std::slice::from_ref(&s), &mut out);
        out
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn l001_flags_map_iteration_in_determinism_crates_only() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   \u{20}   m.keys().copied().collect()\n\
                   }\n";
        assert_eq!(codes(&lint_one("crates/relstore/src/x.rs", src)), ["L001"]);
        assert_eq!(codes(&lint_one("crates/core/src/x.rs", src)), ["L001"]);
        assert!(codes(&lint_one("crates/serve/src/x.rs", src)).is_empty());
    }

    #[test]
    fn l001_flags_for_loops_and_let_bindings() {
        let src = "use std::collections::HashSet;\n\
                   fn f() {\n\
                   \u{20}   let mut seen = HashSet::new();\n\
                   \u{20}   seen.insert(1);\n\
                   \u{20}   for x in &seen { drop(x); }\n\
                   }\n";
        let diags = lint_one("crates/core/src/x.rs", src);
        assert_eq!(codes(&diags), ["L001"]);
        assert_eq!(diags[0].span.line, 5);
    }

    #[test]
    fn l001_collect_then_sort_is_sanctioned() {
        let src = "fn f(m: std::collections::HashMap<u32, u32>) -> Vec<(u32, u32)> {\n\
                   \u{20}   let mut v: Vec<_> = m.into_iter().collect();\n\
                   \u{20}   v.sort_unstable();\n\
                   \u{20}   v\n\
                   }\n";
        assert!(codes(&lint_one("crates/core/src/x.rs", src)).is_empty());
        // A collect with no sort is still flagged.
        let unsorted = "fn f(m: std::collections::HashMap<u32, u32>) -> Vec<(u32, u32)> {\n\
                        \u{20}   m.into_iter().collect()\n\
                        }\n";
        assert_eq!(codes(&lint_one("crates/core/src/x.rs", unsorted)), ["L001"]);
    }

    #[test]
    fn l001_allow_comment_suppresses() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> usize {\n\
                   \u{20}   // exq-lint: allow(L001): counting is order-independent\n\
                   \u{20}   m.keys().count()\n\
                   }\n";
        assert!(codes(&lint_one("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn l001_ignores_comments_strings_and_tests() {
        let src = "// a HashMap iter() in prose\n\
                   const S: &str = \"m.iter()\";\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \u{20}   fn t(m: &std::collections::HashMap<u32, u32>) { m.iter().count(); }\n\
                   }\n";
        assert!(codes(&lint_one("crates/relstore/src/x.rs", src)).is_empty());
    }

    #[test]
    fn l002_flags_lib_clock_reads_outside_obs() {
        let src = "fn f() { let t = std::time::Instant::now(); drop(t); }\n";
        assert_eq!(codes(&lint_one("crates/serve/src/x.rs", src)), ["L002"]);
        assert!(codes(&lint_one("crates/obs/src/x.rs", src)).is_empty());
        assert!(codes(&lint_one("src/bin/exq.rs", src)).is_empty());
        let sys = "fn f() -> std::time::SystemTime { std::time::SystemTime::now() }\n";
        assert_eq!(
            codes(&lint_one("crates/core/src/x.rs", sys)),
            ["L002", "L002"]
        );
    }

    #[test]
    fn l003_flags_thread_identity_outside_par_and_trace() {
        let src = "fn f() { let id = std::thread::current().id(); drop(id); }\n";
        assert_eq!(codes(&lint_one("crates/core/src/x.rs", src)), ["L003"]);
        assert!(codes(&lint_one("crates/relstore/src/par.rs", src)).is_empty());
        assert!(codes(&lint_one("crates/obs/src/trace.rs", src)).is_empty());
    }

    #[test]
    fn l004_flags_float_sums_over_hash_order_in_any_crate() {
        let src = "fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {\n\
                   \u{20}   m.values().sum::<f64>()\n\
                   }\n";
        assert_eq!(codes(&lint_one("crates/serve/src/x.rs", src)), ["L004"]);
        // Integer sums over hash order are not L004 (still L001 in
        // determinism crates).
        let int = "fn f(m: &std::collections::HashMap<u32, u64>) -> u64 {\n\
                   \u{20}   m.values().sum::<u64>()\n\
                   }\n";
        assert!(codes(&lint_one("crates/serve/src/x.rs", int)).is_empty());
    }

    #[test]
    fn l005_flags_prints_in_libs_only() {
        let src = "fn f() { println!(\"x\"); }\n";
        assert_eq!(codes(&lint_one("crates/core/src/x.rs", src)), ["L005"]);
        assert!(codes(&lint_one("crates/bench/src/bin/repro.rs", src)).is_empty());
        let dbg = "fn f() { dbg!(1 + 1); }\n";
        assert_eq!(codes(&lint_one("crates/core/src/x.rs", dbg)), ["L005"]);
    }

    #[test]
    fn l006_flags_near_identical_bodies_across_crates() {
        // Same table-driven helper, different names and one different
        // call — the shape of the json_str/escape_json duplication.
        let body = |call: &str| {
            format!(
                "pub fn helper(s: &str) -> String {{\n\
                 \u{20}   let mut out = String::with_capacity(s.len());\n\
                 \u{20}   for c in s.chars() {{\n\
                 \u{20}       match c {{\n\
                 \u{20}           '\"' => out.push_str(\"\\\\\\\"\"),\n\
                 \u{20}           '\\\\' => out.push_str(\"\\\\\\\\\"),\n\
                 \u{20}           '\\n' => out.push_str(\"\\\\n\"),\n\
                 \u{20}           '\\r' => out.push_str(\"\\\\r\"),\n\
                 \u{20}           '\\t' => out.push_str(\"\\\\t\"),\n\
                 \u{20}           c => out.{call}(c),\n\
                 \u{20}       }}\n\
                 \u{20}   }}\n\
                 \u{20}   out\n\
                 }}\n"
            )
        };
        let a = LintSource::new("crates/core/src/a.rs", body("push"));
        let b = LintSource::new("crates/serve/src/b.rs", body("write_char"));
        let mut out = Vec::new();
        cross_file(&[a, b], &mut out);
        assert_eq!(codes(&out), ["L006"]);
        assert_eq!(out[0].file, "crates/serve/src/b.rs");

        // Unrelated bodies of similar length do not pair up.
        let other = "pub fn walk(n: usize) -> usize {\n\
                     \u{20}   let mut acc = 0;\n\
                     \u{20}   for i in 0..n {\n\
                     \u{20}       if i % 3 == 0 { acc += i * 7; } else { acc -= i; }\n\
                     \u{20}       while acc > 100 { acc /= 2; }\n\
                     \u{20}       acc += n.rotate_left(1) as usize;\n\
                     \u{20}   }\n\
                     \u{20}   acc\n\
                     }\n";
        let a = LintSource::new("crates/core/src/a.rs", body("push"));
        let c = LintSource::new("crates/serve/src/c.rs", other);
        let mut out = Vec::new();
        cross_file(&[a, c], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    /// The calibration behind [`DUP_THRESHOLD_PERCENT`]: a copy that
    /// *adds* statements around the original (the shape of the
    /// historical `render::json_str`, which wrapped `obs::escape_json`
    /// in quote pushes) must stay above the threshold, while two
    /// helpers that merely share an idiomatic skeleton — a tolerant
    /// and a strict variant of the same splitter, differing in their
    /// error arms — must stay below it.
    #[test]
    fn dup_threshold_separates_real_pairs() {
        let escape = "pub fn escape_json(s: &str) -> String {\n\
                      \u{20}   let mut out = String::with_capacity(s.len());\n\
                      \u{20}   for c in s.chars() {\n\
                      \u{20}       match c {\n\
                      \u{20}           '\\\"' => out.push_str(\"\\\\\\\"\"),\n\
                      \u{20}           '\\\\' => out.push_str(\"\\\\\\\\\"),\n\
                      \u{20}           '\\n' => out.push_str(\"\\\\n\"),\n\
                      \u{20}           '\\t' => out.push_str(\"\\\\t\"),\n\
                      \u{20}           c => out.push(c),\n\
                      \u{20}       }\n\
                      \u{20}   }\n\
                      \u{20}   out\n\
                      }\n";
        // The copy wraps the same loop in quote pushes — extra
        // shingles at the edges, core identical.
        let wrapper = "pub fn json_str(s: &str) -> String {\n\
                       \u{20}   let mut out = String::with_capacity(s.len() + 2);\n\
                       \u{20}   out.push('\\\"');\n\
                       \u{20}   for c in s.chars() {\n\
                       \u{20}       match c {\n\
                       \u{20}           '\\\"' => out.push_str(\"\\\\\\\"\"),\n\
                       \u{20}           '\\\\' => out.push_str(\"\\\\\\\\\"),\n\
                       \u{20}           '\\n' => out.push_str(\"\\\\n\"),\n\
                       \u{20}           '\\t' => out.push_str(\"\\\\t\"),\n\
                       \u{20}           c => out.push(c),\n\
                       \u{20}       }\n\
                       \u{20}   }\n\
                       \u{20}   out.push('\\\"');\n\
                       \u{20}   out\n\
                       }\n";
        let a = LintSource::new("crates/obs/src/a.rs", escape);
        let b = LintSource::new("crates/analyze/src/b.rs", wrapper);
        let mut out = Vec::new();
        cross_file(&[a, b], &mut out);
        assert_eq!(codes(&out), ["L006"], "wrapper-around-copy must flag");

        // Structural siblings: same splitting skeleton, but the strict
        // variant validates and errors where the tolerant one skips.
        let tolerant = "pub fn split_parts(s: &str) -> Vec<String> {\n\
                        \u{20}   let mut parts = Vec::new();\n\
                        \u{20}   let mut depth = 0usize;\n\
                        \u{20}   let mut cur = String::new();\n\
                        \u{20}   for c in s.chars() {\n\
                        \u{20}       match c {\n\
                        \u{20}           '(' => { depth += 1; cur.push(c); }\n\
                        \u{20}           ')' => { depth = depth.saturating_sub(1); cur.push(c); }\n\
                        \u{20}           ',' if depth == 0 => { parts.push(cur.trim().to_owned()); cur.clear(); }\n\
                        \u{20}           _ => cur.push(c),\n\
                        \u{20}       }\n\
                        \u{20}   }\n\
                        \u{20}   if !cur.trim().is_empty() { parts.push(cur.trim().to_owned()); }\n\
                        \u{20}   parts\n\
                        }\n";
        let strict = "pub fn split_checked(input: &str) -> Result<Vec<String>, String> {\n\
                      \u{20}   let mut fields = Vec::new();\n\
                      \u{20}   let mut nesting = 0i32;\n\
                      \u{20}   let mut start = 0usize;\n\
                      \u{20}   for (pos, ch) in input.char_indices() {\n\
                      \u{20}       if ch == '(' {\n\
                      \u{20}           nesting += 1;\n\
                      \u{20}       } else if ch == ')' {\n\
                      \u{20}           nesting -= 1;\n\
                      \u{20}           if nesting < 0 { return Err(format!(\"unbalanced at {pos}\")); }\n\
                      \u{20}       } else if ch == ',' && nesting == 0 {\n\
                      \u{20}           fields.push(validate(input[start..pos].trim())?);\n\
                      \u{20}           start = pos + 1;\n\
                      \u{20}       }\n\
                      \u{20}   }\n\
                      \u{20}   if nesting != 0 { return Err(\"unbalanced\".to_owned()); }\n\
                      \u{20}   fields.push(validate(input[start..].trim())?);\n\
                      \u{20}   Ok(fields)\n\
                      }\n";
        let a = LintSource::new("crates/core/src/a.rs", tolerant);
        let b = LintSource::new("crates/relstore/src/b.rs", strict);
        let mut out = Vec::new();
        cross_file(&[a, b], &mut out);
        assert!(out.is_empty(), "structural siblings must not flag: {out:?}");
    }

    #[test]
    fn l006_same_crate_copies_are_not_flagged() {
        let body = "pub fn helper(s: &str) -> String {\n\
                    \u{20}   let mut out = String::with_capacity(s.len());\n\
                    \u{20}   for c in s.chars() {\n\
                    \u{20}       match c {\n\
                    \u{20}           'a' => out.push_str(\"A\"),\n\
                    \u{20}           'b' => out.push_str(\"B\"),\n\
                    \u{20}           'c' => out.push_str(\"C\"),\n\
                    \u{20}           c => out.push(c),\n\
                    \u{20}       }\n\
                    \u{20}   }\n\
                    \u{20}   out\n\
                    }\n";
        let a = LintSource::new("crates/core/src/a.rs", body);
        let b = LintSource::new("crates/core/src/b.rs", body);
        let mut out = Vec::new();
        cross_file(&[a, b], &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
