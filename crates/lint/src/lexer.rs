//! A tolerant token-level Rust lexer.
//!
//! The lint rules need just enough lexical structure to reason about
//! source soundly: comments and string literals must never be mistaken
//! for code (a `HashMap` inside a doc comment is not a violation), and
//! spans must carry 1-based line:col positions for diagnostics. The
//! lexer is *total*: any byte sequence — valid Rust, truncated Rust,
//! or arbitrary garbage — produces a token stream without panicking.
//! Unterminated strings and comments simply run to end of input, and
//! bytes that fit no token class become single [`TokKind::Unknown`]
//! tokens.
//!
//! Covered literal forms: line and (nested) block comments, string and
//! byte-string literals with escapes, raw strings `r#"…"#` with any
//! number of hashes, raw identifiers `r#ident`, char and byte-char
//! literals, and lifetimes (disambiguated from char literals the same
//! way rustc's lexer does: `'a` followed by another `'` is a char,
//! otherwise a lifetime).

/// What class of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime such as `'a` (including the quote).
    Lifetime,
    /// String, byte-string, or raw-string literal (quotes included).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single punctuation character (`.`, `:`, `{`, …).
    Punct,
    /// `// …` or `/* … */` comment, doc comments included.
    Comment,
    /// Anything that fits no other class (stray bytes).
    Unknown,
}

/// One token: kind plus byte range and 1-based position in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based char column of the first byte.
    pub col: usize,
}

impl Tok {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Lex `src` into tokens. Total: never panics, never loses position.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.char_indices().collect(),
        src_len: src.len(),
        i: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer {
    /// `(byte_offset, char)` pairs; indexing is by char position.
    chars: Vec<(usize, char)>,
    src_len: usize,
    i: usize,
    line: usize,
    col: usize,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars.get(self.i).map_or(self.src_len, |&(o, _)| o)
    }

    /// Consume one char, maintaining line/col.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.i) {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_while(&mut self, f: impl Fn(char) -> bool) {
        while self.peek(0).is_some_and(&f) {
            self.bump();
        }
    }

    fn run(mut self) -> Vec<Tok> {
        let mut toks = Vec::new();
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
                continue;
            }
            let (start, line, col) = (self.offset(), self.line, self.col);
            let kind = self.token(c);
            toks.push(Tok {
                kind,
                start,
                end: self.offset(),
                line,
                col,
            });
        }
        toks
    }

    /// Lex one token starting at `c`; consumes at least one char.
    fn token(&mut self, c: char) -> TokKind {
        match c {
            '/' if self.peek(1) == Some('/') => {
                self.bump_while(|c| c != '\n');
                TokKind::Comment
            }
            '/' if self.peek(1) == Some('*') => {
                self.block_comment();
                TokKind::Comment
            }
            '"' => {
                self.string();
                TokKind::Str
            }
            'b' if self.peek(1) == Some('"') => {
                self.bump();
                self.string();
                TokKind::Str
            }
            'b' if self.peek(1) == Some('\'') => {
                self.bump();
                self.char_lit();
                TokKind::Char
            }
            'r' | 'b' if self.raw_string_ahead(c) => {
                if c == 'b' {
                    self.bump(); // the `b` of `br`
                }
                self.raw_string();
                TokKind::Str
            }
            'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#ident`.
                self.bump();
                self.bump();
                self.bump_while(is_ident_continue);
                TokKind::Ident
            }
            '\'' => self.lifetime_or_char(),
            c if is_ident_start(c) => {
                self.bump_while(is_ident_continue);
                TokKind::Ident
            }
            c if c.is_ascii_digit() => {
                self.number();
                TokKind::Num
            }
            c if c.is_ascii_punctuation() => {
                self.bump();
                TokKind::Punct
            }
            _ => {
                self.bump();
                TokKind::Unknown
            }
        }
    }

    /// Does a raw string (not a raw identifier) start here? `r"`,
    /// `r#…#"`, `br"`, `br#…#"`.
    fn raw_string_ahead(&self, c: char) -> bool {
        let mut j = 1 + usize::from(c == 'b');
        if c == 'b' && self.peek(1) != Some('r') {
            return false;
        }
        while self.peek(j) == Some('#') {
            j += 1;
        }
        self.peek(j) == Some('"')
    }

    /// `/* … */` with nesting; tolerant of EOF.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => return,
            }
        }
    }

    /// `"…"` with backslash escapes; tolerant of EOF.
    fn string(&mut self) {
        self.bump();
        loop {
            match self.peek(0) {
                None => return,
                Some('"') => {
                    self.bump();
                    return;
                }
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// `r#"…"#` with the opening hash count; tolerant of EOF.
    fn raw_string(&mut self) {
        self.bump(); // `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => return,
                Some('"') => {
                    self.bump();
                    if (0..hashes).all(|k| self.peek(k) == Some('#')) {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        return;
                    }
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// `'…'` after the opening quote was identified as a char literal.
    fn char_lit(&mut self) {
        self.bump(); // `'`
        match self.peek(0) {
            Some('\\') => {
                self.bump();
                self.bump();
                // Escapes like `\u{1f600}` span until the closing quote.
                self.bump_while(|c| c != '\'' && c != '\n');
            }
            Some(_) => self.bump(),
            None => return,
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime): an identifier
    /// after the quote is a lifetime unless a closing quote follows it
    /// immediately.
    fn lifetime_or_char(&mut self) -> TokKind {
        match self.peek(1) {
            Some(c) if is_ident_start(c) => {
                let mut j = 2;
                while self.peek(j).is_some_and(is_ident_continue) {
                    j += 1;
                }
                if self.peek(j) == Some('\'') {
                    self.char_lit();
                    TokKind::Char
                } else {
                    self.bump();
                    self.bump_while(is_ident_continue);
                    TokKind::Lifetime
                }
            }
            _ => {
                self.char_lit();
                TokKind::Char
            }
        }
    }

    /// Numbers, tolerantly: digits, then any alphanumerics, `_`, and
    /// single `.`s that are not the start of a `..` range.
    fn number(&mut self) {
        self.bump();
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => self.bump(),
                Some('.') if self.peek(1) != Some('.') => self.bump(),
                _ => return,
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn basic_stream() {
        let src = "let mut m: HashMap<u32, f64> = HashMap::new(); // done";
        let toks = kinds(src);
        assert_eq!(toks[0], (TokKind::Ident, "let"));
        assert_eq!(toks[3], (TokKind::Punct, ":"));
        assert_eq!(toks[4], (TokKind::Ident, "HashMap"));
        assert_eq!(toks.last().unwrap(), &(TokKind::Comment, "// done"));
    }

    #[test]
    fn strings_and_raw_strings() {
        let src = r####"("a \" b", r#"raw " str"#, br##"x"##, b"bytes")"####;
        let strs: Vec<&str> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(
            strs,
            [
                "\"a \\\" b\"",
                "r#\"raw \" str\"#",
                "br##\"x\"##",
                "b\"bytes\""
            ]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let q = b'q'; }";
        let toks = kinds(src);
        assert!(toks.contains(&(TokKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokKind::Char, "'x'")));
        assert!(toks.contains(&(TokKind::Char, "'\\n'")));
        assert!(toks.contains(&(TokKind::Char, "b'q'")));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(kinds("r#fn")[0], (TokKind::Ident, "r#fn"));
        assert_eq!(kinds("r\"s\"")[0], (TokKind::Str, "r\"s\""));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still */ b";
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::Comment);
        assert_eq!(toks[2], (TokKind::Ident, "b"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { let x = 1.5e3_f64; }");
        assert!(toks.contains(&(TokKind::Num, "0")));
        assert!(toks.contains(&(TokKind::Num, "10")));
        assert!(toks.contains(&(TokKind::Num, "1.5e3_f64")));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let src = "ab\n  cd \"s\"\n/* c */ e";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[1].text(src), "cd");
        let e = toks.last().unwrap();
        assert_eq!((e.line, e.col), (3, 9));
    }

    #[test]
    fn total_on_garbage() {
        for bad in [
            "\"unterminated",
            "r###\"never closed",
            "/* still open",
            "'",
            "'\\",
            "b'",
            "\u{0}\u{7f}\u{80}",
            "🦀🦀'🦀",
        ] {
            let toks = lex(bad);
            // Every byte is covered in order, nothing panics.
            assert!(toks.windows(2).all(|w| w[0].end <= w[1].start), "{bad:?}");
        }
    }
}
