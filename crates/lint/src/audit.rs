//! Cross-artifact audits, `L007`–`L011`.
//!
//! The lint rules keep single files honest; these audits keep the
//! *artifacts that describe the system* honest against the system
//! itself:
//!
//! - `assets/obs/counters.txt` ↔ metric emit sites (`L007`/`L008`):
//!   every catalogued name must be emitted or mentioned somewhere in
//!   library/binary source, and every literal-name emit must be
//!   catalogued. Catalogue lines may be prefixed `aux ` for names the
//!   benches do not pin (`repro validate-bench` skips them, the audit
//!   does not), and may end in `.*` to cover a family of
//!   `format!`-built names.
//! - catalogue names ↔ Prometheus naming (`L009`): each name must be
//!   lower-case dotted (`[a-z0-9._]`) and survive
//!   [`exq_obs::sanitize_name`] into a name the in-repo exposition
//!   checker ([`exq_obs::is_valid_metric_name`]) accepts.
//! - the `exq-analyze` diagnostic-code table ↔ reality (`L010`/`L011`):
//!   every code documented in `crates/analyze/src/diag.rs` must be
//!   constructed somewhere and exercised by a
//!   `crates/analyze/tests/fixtures/bad/*.expected` golden.

use crate::lexer::TokKind;
use crate::LintSource;
use exq_analyze::{Diagnostic, SourceFile, Span};
use std::collections::BTreeSet;
use std::path::Path;

/// Repo-relative path of the counter catalogue.
pub const CATALOGUE_PATH: &str = "assets/obs/counters.txt";
/// Repo-relative path of the diagnostic-code table.
pub const DIAG_TABLE_PATH: &str = "crates/analyze/src/diag.rs";
/// Repo-relative dir of the analyzer's seeded-violation goldens.
pub const BAD_FIXTURES_DIR: &str = "crates/analyze/tests/fixtures/bad";

/// What kind of metric an emit site or catalogue entry names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitKind {
    /// `MetricsSink::add`/`incr`.
    Counter,
    /// `MetricsSink::span`/`time`/`record_span`.
    Span,
    /// `MetricsSink::observe`/`observe_duration`.
    Hist,
}

impl EmitKind {
    fn label(self) -> &'static str {
        match self {
            EmitKind::Counter => "counter",
            EmitKind::Span => "span",
            EmitKind::Hist => "histogram",
        }
    }
}

/// One parsed `counters.txt` line.
#[derive(Debug, Clone)]
pub struct CatEntry {
    /// Metric name, `span:`/`hist:` prefix and `.*` suffix stripped.
    pub name: String,
    /// Counter, span, or histogram.
    pub kind: EmitKind,
    /// `aux` entries are emitted by the system but not pinned by the
    /// benches; `repro validate-bench` skips them.
    pub aux: bool,
    /// `name` is a prefix covering a `format!`-built family.
    pub wildcard: bool,
    /// 1-based line in the catalogue.
    pub line: usize,
}

/// Parse the catalogue. Total: unparseable lines are skipped (the
/// audit checks names, not grammar; `repro validate-bench` has its own
/// parser for the bench-pinning subset).
pub fn parse_catalogue(text: &str) -> Vec<CatEntry> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (aux, line) = match line.strip_prefix("aux ") {
            Some(rest) => (true, rest.trim()),
            None => (false, line),
        };
        let (kind, name) = if let Some(n) = line.strip_prefix("span:") {
            (EmitKind::Span, n)
        } else if let Some(n) = line.strip_prefix("hist:") {
            (EmitKind::Hist, n)
        } else {
            (EmitKind::Counter, line)
        };
        let (wildcard, name) = match name.strip_suffix(".*") {
            Some(prefix) => (true, format!("{prefix}.")),
            None => (false, name.to_owned()),
        };
        entries.push(CatEntry {
            name,
            kind,
            aux,
            wildcard,
            line: i + 1,
        });
    }
    entries
}

/// A literal-name metric emission found in source.
#[derive(Debug)]
pub struct EmitSite {
    /// Counter, span, or histogram (from the method called).
    pub kind: EmitKind,
    /// The emitted name; for `format!`-built names, the literal prefix
    /// up to the first `{`.
    pub name: String,
    /// `true` when `name` is only a `format!` prefix.
    pub prefix_only: bool,
    /// Source path.
    pub path: String,
    /// 1-based position of the name argument.
    pub line: usize,
    /// 1-based column of the name argument.
    pub col: usize,
}

fn emit_kind_of(method: &str) -> Option<EmitKind> {
    match method {
        "add" | "incr" => Some(EmitKind::Counter),
        "span" | "time" | "record_span" => Some(EmitKind::Span),
        "observe" | "observe_duration" => Some(EmitKind::Hist),
        _ => None,
    }
}

/// The value of a string-literal token, quotes and `b`/`r#` framing
/// stripped. Escape sequences are left raw — metric names never
/// contain them, so an escaped literal simply matches nothing.
fn str_value(lit: &str) -> Option<&str> {
    let s = lit.strip_prefix('b').unwrap_or(lit);
    let s = match s.strip_prefix('r') {
        Some(rest) => rest
            .trim_start_matches('#')
            .strip_suffix('#')
            .unwrap_or(rest),
        None => s,
    };
    let s = s.trim_end_matches('#');
    s.strip_prefix('"')?.strip_suffix('"')
}

/// Scan `.method("name", …)` call shapes for metric emissions with a
/// literal (or literal-prefixed `format!`) name argument.
pub fn collect_emits(sources: &[LintSource]) -> Vec<EmitSite> {
    let mut emits = Vec::new();
    for s in sources {
        let text = |i: usize| s.code.get(i).map_or("", |t| t.text(&s.text));
        for i in 0..s.code.len() {
            if text(i) != "." {
                continue;
            }
            let Some(kind) = emit_kind_of(text(i + 1)) else {
                continue;
            };
            if text(i + 2) != "(" {
                continue;
            }
            // First argument: `"lit"` or `[&]format!("lit{…}", …)`.
            let mut j = i + 3;
            if text(j) == "&" {
                j += 1;
            }
            let is_format = text(j) == "format" && text(j + 1) == "!" && text(j + 2) == "(";
            if is_format {
                j += 3;
            }
            let Some(tok) = s.code.get(j).filter(|t| t.kind == TokKind::Str) else {
                continue;
            };
            let Some(value) = str_value(tok.text(&s.text)) else {
                continue;
            };
            let (name, prefix_only) = match value.split_once('{') {
                Some((prefix, _)) => (prefix.to_owned(), true),
                None if is_format => (value.to_owned(), false),
                None => (value.to_owned(), false),
            };
            emits.push(EmitSite {
                kind,
                name,
                prefix_only,
                path: s.path.clone(),
                line: tok.line,
                col: tok.col,
            });
        }
    }
    emits
}

/// Every string-literal value in (non-test) code, for `L007` mention
/// evidence: a catalogued name that appears in a literal — a
/// `match`-table arm, a counter-name array — is wired up even if the
/// emit call itself passes a variable.
fn collect_mentions(sources: &[LintSource]) -> BTreeSet<String> {
    let mut mentions = BTreeSet::new();
    for s in sources {
        for t in s.code.iter().filter(|t| t.kind == TokKind::Str) {
            if let Some(v) = str_value(t.text(&s.text)) {
                mentions.insert(v.to_owned());
            }
        }
    }
    mentions
}

fn entry_matches_emit(entry: &CatEntry, emit: &EmitSite) -> bool {
    if entry.kind != emit.kind {
        return false;
    }
    if entry.wildcard {
        // A `format!` prefix may be shorter than the catalogued prefix
        // (`"cube.{}"`) or longer (`"cube.cells.level.{}"` vs
        // `cube.*`); either direction is a match.
        emit.name.starts_with(&entry.name) || entry.name.starts_with(&emit.name)
    } else {
        !emit.prefix_only && entry.name == emit.name
    }
}

/// `L007`/`L008`/`L009`: the catalogue ↔ emit-site ↔ Prometheus audit.
pub fn counters_audit(root: &Path, sources: &[LintSource]) -> std::io::Result<Vec<Diagnostic>> {
    let text = std::fs::read_to_string(root.join(CATALOGUE_PATH))?;
    let entries = parse_catalogue(&text);
    let emits = collect_emits(sources);
    let mentions = collect_mentions(sources);
    let mut diags = Vec::new();

    for entry in &entries {
        // L009 first: a malformed name will never match anything.
        let bad_char = entry
            .name
            .chars()
            .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || matches!(c, '.' | '_')));
        let sanitized = exq_obs::sanitize_name(entry.name.trim_end_matches('.'));
        if bad_char.is_some() || !exq_obs::is_valid_metric_name(&sanitized) {
            diags.push(
                Diagnostic::error(
                    "L009",
                    CATALOGUE_PATH,
                    Span::new(entry.line, 1, entry.name.chars().count().max(1)),
                    format!(
                        "catalogue name `{}` cannot render to a legal Prometheus metric name",
                        entry.name
                    ),
                )
                .with_help("metric names are lower-case dotted: [a-z0-9._]"),
            );
            continue;
        }
        let emitted = emits.iter().any(|e| entry_matches_emit(entry, e));
        let mentioned = if entry.wildcard {
            mentions.iter().any(|m| m.starts_with(&entry.name))
        } else {
            mentions.contains(&entry.name)
        };
        if !emitted && !mentioned {
            diags.push(
                Diagnostic::error(
                    "L007",
                    CATALOGUE_PATH,
                    Span::new(entry.line, 1, entry.name.chars().count().max(1)),
                    format!(
                        "catalogued {} `{}` has no emit site or mention in workspace source",
                        entry.kind.label(),
                        entry.name
                    ),
                )
                .with_help(
                    "emit it through the MetricsSink, or delete the entry — a stale \
                     catalogue line makes `repro validate-bench` lie",
                ),
            );
        }
    }

    for emit in &emits {
        if !entries.iter().any(|e| entry_matches_emit(e, emit)) {
            diags.push(
                Diagnostic::error(
                    "L008",
                    &emit.path,
                    Span::new(emit.line, emit.col, emit.name.chars().count().max(1)),
                    format!(
                        "{} `{}` is emitted here but missing from {}",
                        emit.kind.label(),
                        emit.name,
                        CATALOGUE_PATH
                    ),
                )
                .with_help(
                    "add it to the catalogue (prefix the line with `aux ` if the benches \
                     do not pin it; suffix `.*` for a format!-built family)",
                ),
            );
        }
    }
    Ok(diags)
}

/// `L010`/`L011`: every code in the analyzer's documented table must be
/// constructed somewhere and covered by a bad-fixture golden.
pub fn diag_code_audit(root: &Path, sources: &[LintSource]) -> std::io::Result<Vec<Diagnostic>> {
    let Some(diag_src) = sources.iter().find(|s| s.path.ends_with(DIAG_TABLE_PATH)) else {
        return Ok(Vec::new()); // partial source set (explicit paths): skip
    };

    // Table rows live in the module doc: `//! | E001 | … |`.
    let mut table: Vec<(String, usize)> = Vec::new();
    for (i, line) in diag_src.text.lines().enumerate() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix("//! |") else {
            continue;
        };
        let code = rest.split('|').next().unwrap_or("").trim();
        if is_diag_code(code) {
            table.push((code.to_owned(), i + 1));
        }
    }

    // Construction evidence: the code as a string literal anywhere in
    // (non-test) workspace source — diag constructors take the code as
    // a `&'static str`, and the engine crates share the same codes.
    let constructed = collect_mentions(sources);

    // Fixture coverage: first column of each golden line.
    let mut covered: BTreeSet<String> = BTreeSet::new();
    let fixtures = root.join(BAD_FIXTURES_DIR);
    if fixtures.is_dir() {
        let mut paths: Vec<_> = std::fs::read_dir(&fixtures)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "expected"))
            .collect();
        paths.sort();
        for p in paths {
            for line in std::fs::read_to_string(&p)?.lines() {
                if let Some(code) = line.split_whitespace().next() {
                    if is_diag_code(code) {
                        covered.insert(code.to_owned());
                    }
                }
            }
        }
    }

    let mut diags = Vec::new();
    for (code, line) in &table {
        if !constructed.contains(code) {
            diags.push(
                Diagnostic::error(
                    "L010",
                    DIAG_TABLE_PATH,
                    Span::new(*line, 1, 4),
                    format!("diagnostic code {code} is documented but never constructed"),
                )
                .with_help("implement the check or drop the table row"),
            );
        }
        if !covered.contains(code) {
            diags.push(
                Diagnostic::error(
                    "L011",
                    DIAG_TABLE_PATH,
                    Span::new(*line, 1, 4),
                    format!("diagnostic code {code} has no golden under {BAD_FIXTURES_DIR}"),
                )
                .with_help("seed a bad fixture whose .expected lists the code"),
            );
        }
    }
    Ok(diags)
}

fn is_diag_code(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 4 && (b[0] == b'E' || b[0] == b'W') && b[1..].iter().all(u8::is_ascii_digit)
}

/// Run all cross-artifact audits. Returns the diagnostics (allow
/// directives applied, sorted) plus extra [`SourceFile`]s — the
/// catalogue — so callers can render carets into non-Rust artifacts
/// too.
pub fn audit_workspace(
    root: &Path,
    sources: &[LintSource],
) -> std::io::Result<(Vec<Diagnostic>, Vec<SourceFile>)> {
    let mut diags = counters_audit(root, sources)?;
    diags.extend(diag_code_audit(root, sources)?);
    crate::apply_allows(sources, &mut diags);
    crate::sort_diags(&mut diags);
    let mut extra = Vec::new();
    if let Ok(text) = std::fs::read_to_string(root.join(CATALOGUE_PATH)) {
        extra.push(SourceFile::rust(CATALOGUE_PATH, text));
    }
    Ok((diags, extra))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_parsing_covers_all_forms() {
        let text = "# comment\n\
                    join.runs\n\
                    aux cube.cells.level.*\n\
                    span:prepare # trailing comment\n\
                    hist:join.component_rows\n";
        let e = parse_catalogue(text);
        assert_eq!(e.len(), 4);
        assert_eq!(
            (e[0].name.as_str(), e[0].kind),
            ("join.runs", EmitKind::Counter)
        );
        assert!(e[1].aux && e[1].wildcard);
        assert_eq!(e[1].name, "cube.cells.level.");
        assert_eq!((e[2].name.as_str(), e[2].kind), ("prepare", EmitKind::Span));
        assert_eq!(e[2].line, 4);
        assert_eq!(e[3].kind, EmitKind::Hist);
    }

    #[test]
    fn emit_collection_sees_literals_and_format_prefixes() {
        let src = LintSource::new(
            "crates/core/src/x.rs",
            "fn f(sink: &S) {\n\
             \u{20}   sink.add(\"join.runs\", 1);\n\
             \u{20}   sink.observe(\n\
             \u{20}       \"join.component_rows\",\n\
             \u{20}       3,\n\
             \u{20}   );\n\
             \u{20}   sink.add(&format!(\"cube.cells.level.{}\", 2), 5);\n\
             \u{20}   sink.time(\"prepare\", || ());\n\
             \u{20}   sink.add(dynamic_name, 1);\n\
             }\n",
        );
        let emits = collect_emits(std::slice::from_ref(&src));
        let got: Vec<(EmitKind, &str, bool)> = emits
            .iter()
            .map(|e| (e.kind, e.name.as_str(), e.prefix_only))
            .collect();
        assert_eq!(
            got,
            [
                (EmitKind::Counter, "join.runs", false),
                (EmitKind::Hist, "join.component_rows", false),
                (EmitKind::Counter, "cube.cells.level.", true),
                (EmitKind::Span, "prepare", false),
            ]
        );
        // The multiline observe's span points at the name literal.
        assert_eq!(emits[1].line, 4);
    }

    #[test]
    fn wildcard_entries_match_both_prefix_directions() {
        let entry = &parse_catalogue("aux cube.cells.level.*\n")[0];
        let emit = |name: &str, prefix_only| EmitSite {
            kind: EmitKind::Counter,
            name: name.to_owned(),
            prefix_only,
            path: String::new(),
            line: 1,
            col: 1,
        };
        assert!(entry_matches_emit(entry, &emit("cube.cells.level.", true)));
        assert!(entry_matches_emit(
            entry,
            &emit("cube.cells.level.3", false)
        ));
        assert!(!entry_matches_emit(entry, &emit("cube.runs", false)));
    }

    #[test]
    fn diag_code_shape() {
        assert!(is_diag_code("E001"));
        assert!(is_diag_code("W005"));
        assert!(!is_diag_code("L001") && !is_diag_code("E1") && !is_diag_code("code"));
    }
}
