//! # exq-lint — workspace determinism & observability auditor
//!
//! The engine's headline guarantee — explanations bit-identical at any
//! thread count, with a pinned semantic-counter catalogue — is easy to
//! break silently: one `HashMap` iteration in a hot path, one
//! `Instant::now()` folded into a result, one counter emitted without a
//! catalogue entry. This crate checks those invariants *statically*,
//! the same way `exq check` already lints the `.exq` DSLs, and is wired
//! into CI as `exq lint --deny-warnings`.
//!
//! Three layers:
//!
//! 1. [`lexer`] — a tolerant token-level Rust lexer (comments, strings,
//!    raw strings, lifetimes) that is total over arbitrary bytes.
//! 2. [`rules`] — token-pattern rules with stable `L001`–`L006` codes
//!    over each source file (plus one cross-file rule), rendered with
//!    `exq-analyze`'s rustc-style/JSON renderers.
//! 3. [`audit`] — cross-artifact audits (`L007`–`L011`) tying
//!    `assets/obs/counters.txt`, the Prometheus naming rules, and the
//!    `exq-analyze` diagnostic-code table to actual source.
//!
//! ## Code catalogue
//!
//! | code | meaning |
//! |------|---------|
//! | L001 | `HashMap`/`HashSet` iteration in a determinism-scoped crate (`relstore`, `core`) |
//! | L002 | wall-clock read (`Instant::now`, `SystemTime`, `UNIX_EPOCH`) outside `crates/obs` |
//! | L003 | `thread::current()` outside `relstore/src/par.rs` / `obs/src/trace.rs` |
//! | L004 | float accumulation over an unordered (`HashMap`/`HashSet`) iterator |
//! | L005 | `print!`/`println!`/`eprint!`/`eprintln!`/`dbg!` in a library crate |
//! | L006 | near-duplicate helper function defined in two crates |
//! | L007 | `counters.txt` entry with no emit site or source mention |
//! | L008 | metric emitted with a name missing from `counters.txt` |
//! | L009 | `counters.txt` entry that cannot render to a legal Prometheus name |
//! | L010 | diagnostic code in the `exq-analyze` table never constructed |
//! | L011 | diagnostic code with no `tests/fixtures/bad` coverage |
//!
//! ## Suppression
//!
//! A violation is silenced by a justified allow comment on the same
//! line or the line directly above it:
//!
//! ```text
//! // exq-lint: allow(L001): per-level counts are order-independent sums
//! for (coords, count) in cells.iter() { … }
//! ```
//!
//! The justification after the `:` is mandatory by convention (review
//! enforces it); the codes in `allow(…)` are what the engine honours.
//! Tokens inside `#[cfg(test)]` items are never linted.

pub mod audit;
pub mod lexer;
pub mod rules;

pub use exq_analyze::{render_json, render_pretty, Diagnostic, Severity, SourceFile, Span};

use lexer::{lex, Tok, TokKind};
use std::path::{Path, PathBuf};

/// One Rust source file prepared for linting: lexed, with test-only
/// token ranges masked out and allow directives extracted.
#[derive(Debug)]
pub struct LintSource {
    /// Display path (repo-relative when collected via
    /// [`collect_sources`]); used in diagnostics.
    pub path: String,
    /// Full text.
    pub text: String,
    /// Crate the file belongs to (`relstore`, `core`, …; the root
    /// binary/package is `exq`), derived from the path unless
    /// overridden.
    pub krate: String,
    /// `true` for library sources — anything not under a `bin/` or
    /// `tests/` directory. Several rules only apply to library code.
    pub is_lib: bool,
    /// Code tokens: the full lex stream minus comments and minus
    /// everything inside `#[cfg(test)]` items.
    pub code: Vec<Tok>,
    allows: Vec<Allow>,
}

/// A parsed `// exq-lint: allow(Lxxx[, Lyyy]): reason` directive.
#[derive(Debug)]
struct Allow {
    codes: Vec<String>,
    line: usize,
}

impl LintSource {
    /// Prepare a source, deriving the crate name from the path.
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> LintSource {
        Self::with_crate(path, text, None)
    }

    /// Prepare a source with an explicit crate name (CLI
    /// `--assume-crate`, and fixtures via `// exq-lint-fixture:`).
    pub fn with_crate(
        path: impl Into<String>,
        text: impl Into<String>,
        krate: Option<&str>,
    ) -> LintSource {
        let path = path.into();
        let text = text.into();
        let toks = lex(&text);
        let directive = fixture_crate_directive(&toks, &text);
        // A fixture pretending to live in another crate also counts as
        // library code there, even though the file itself sits under a
        // `tests/` directory — otherwise the lib-only rules could never
        // be exercised from the seeded-violation corpus.
        let is_lib = directive.is_some() || is_lib_path(&path);
        let krate = krate
            .map(str::to_owned)
            .or(directive)
            .unwrap_or_else(|| crate_of(&path));
        let allows = parse_allows(&toks, &text);
        let masked = test_mask(&toks, &text);
        let code = toks
            .iter()
            .enumerate()
            .filter(|&(i, t)| t.kind != TokKind::Comment && !masked[i])
            .map(|(_, t)| *t)
            .collect();
        LintSource {
            path,
            text,
            krate,
            is_lib,
            code,
            allows,
        }
    }

    /// The text of a token of this source.
    pub fn tok_text(&self, t: &Tok) -> &str {
        t.text(&self.text)
    }

    /// Is diagnostic `code` at `line` silenced by an allow directive on
    /// that line or the line above?
    fn suppressed(&self, code: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.codes.iter().any(|c| c == code))
    }
}

/// `// exq-lint-fixture: crate=NAME` — lets a seeded-violation fixture
/// pretend to live in a determinism-scoped crate.
fn fixture_crate_directive(toks: &[Tok], text: &str) -> Option<String> {
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        if let Some(rest) = t.text(text).split("exq-lint-fixture:").nth(1) {
            if let Some(name) = rest.split("crate=").nth(1) {
                let name: String = name
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '-')
                    .collect();
                if !name.is_empty() {
                    return Some(name);
                }
            }
        }
    }
    None
}

/// Extract every `exq-lint: allow(…)` directive from comment tokens.
fn parse_allows(toks: &[Tok], text: &str) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
        let body = t.text(text);
        let Some(rest) = body.split("exq-lint:").nth(1) else {
            continue;
        };
        let Some(args) = rest
            .split("allow(")
            .nth(1)
            .and_then(|s| s.split(')').next())
        else {
            continue;
        };
        let codes: Vec<String> = args
            .split([',', ' '])
            .map(str::trim)
            .filter(|c| !c.is_empty())
            .map(str::to_owned)
            .collect();
        if !codes.is_empty() {
            // A multi-line block comment allows on its *last* line so
            // `/* … */` directly above the code behaves like `//`.
            let end_line = t.line + body.matches('\n').count();
            allows.push(Allow {
                codes,
                line: end_line,
            });
        }
    }
    allows
}

/// Mark every token inside a `#[cfg(test)]` item (`mod`, `fn`, `use`,
/// …): the attribute tokens themselves, any stacked attributes after
/// it, and the item up to its matching close brace (or terminating
/// semicolon for brace-less items).
fn test_mask(toks: &[Tok], text: &str) -> Vec<bool> {
    let is = |i: usize, s: &str| toks.get(i).is_some_and(|t| t.text(text) == s);
    let mut masked = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        // `# [ cfg ( test ) ]`
        let hit = is(i, "#")
            && is(i + 1, "[")
            && is(i + 2, "cfg")
            && is(i + 3, "(")
            && is(i + 4, "test")
            && is(i + 5, ")")
            && is(i + 6, "]");
        if !hit {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 7;
        // Skip any further attributes stacked on the same item.
        while is(j, "#") && is(j + 1, "[") {
            let mut depth = 0usize;
            j += 1;
            while j < toks.len() {
                if is(j, "[") {
                    depth += 1;
                } else if is(j, "]") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Consume the item: to the matching `}` of its first body
        // brace, or to a `;` if one comes first.
        let mut depth = 0usize;
        while j < toks.len() {
            if toks[j].kind == TokKind::Punct {
                match toks[j].text(text) {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let end = (j + 1).min(toks.len());
        for m in &mut masked[start..end] {
            *m = true;
        }
        i = end;
    }
    masked
}

/// Crate name from a repo-relative path: `crates/relstore/src/…` →
/// `relstore`; anything under the root `src/` belongs to the umbrella
/// package `exq`; otherwise the first path segment.
fn crate_of(path: &str) -> String {
    let norm = path.replace('\\', "/");
    let parts: Vec<&str> = norm.split('/').filter(|p| !p.is_empty()).collect();
    match parts.as_slice() {
        ["crates", name, ..] => (*name).to_owned(),
        ["src", ..] => "exq".to_owned(),
        [first, ..] => (*first).to_owned(),
        [] => String::new(),
    }
}

/// Library source = not under a `bin/` or `tests/` directory and not a
/// `build.rs`. `main.rs` under `src/` counts as a binary root too.
fn is_lib_path(path: &str) -> bool {
    let norm = path.replace('\\', "/");
    !(norm.contains("/bin/")
        || norm.starts_with("bin/")
        || norm.contains("/tests/")
        || norm.starts_with("tests/")
        || norm.ends_with("/main.rs")
        || norm.ends_with("build.rs"))
}

/// Run rules `L001`–`L006` over the sources, apply allow directives,
/// and return diagnostics ordered by (file, line, col).
pub fn lint_sources(sources: &[LintSource]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for s in sources {
        rules::per_file(s, &mut diags);
    }
    rules::cross_file(sources, &mut diags);
    apply_allows(sources, &mut diags);
    sort_diags(&mut diags);
    diags
}

/// Drop diagnostics silenced by `exq-lint: allow` directives.
pub(crate) fn apply_allows(sources: &[LintSource], diags: &mut Vec<Diagnostic>) {
    diags.retain(|d| {
        sources
            .iter()
            .find(|s| s.path == d.file)
            .is_none_or(|s| !s.suppressed(d.code, d.span.line))
    });
}

pub(crate) fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (&a.file, a.span.line, a.span.col, a.code).cmp(&(&b.file, b.span.line, b.span.col, b.code))
    });
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect every lintable workspace source: `crates/*/src/**/*.rs` and
/// the root package's `src/**/*.rs`. Vendored stubs (`vendor/`) and
/// integration-test trees are out of scope. Deterministic order.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<LintSource>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            walk_rs(&member.join("src"), &mut files)?;
        }
    }
    walk_rs(&root.join("src"), &mut files)?;
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for f in files {
        let text = std::fs::read_to_string(&f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push(LintSource::new(rel, text));
    }
    Ok(sources)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The sources as `exq-analyze` [`SourceFile`]s, for
/// [`render_pretty`]'s caret output.
pub fn to_source_files(sources: &[LintSource]) -> Vec<SourceFile> {
    sources
        .iter()
        .map(|s| SourceFile::rust(s.path.clone(), s.text.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_derivation() {
        assert_eq!(crate_of("crates/relstore/src/cube.rs"), "relstore");
        assert_eq!(crate_of("src/bin/exq.rs"), "exq");
        assert_eq!(crate_of("src/lib.rs"), "exq");
    }

    #[test]
    fn lib_vs_bin_paths() {
        assert!(is_lib_path("crates/serve/src/server.rs"));
        assert!(!is_lib_path("src/bin/exq.rs"));
        assert!(!is_lib_path("crates/bench/src/bin/repro.rs"));
        assert!(!is_lib_path("crates/core/tests/x.rs"));
    }

    #[test]
    fn allow_directive_parsing() {
        let src = LintSource::new(
            "crates/core/src/x.rs",
            "// exq-lint: allow(L001, L004): sums commute\nfn f() {}\n// plain comment\n",
        );
        assert!(src.suppressed("L001", 1));
        assert!(src.suppressed("L004", 2)); // line after the comment
        assert!(!src.suppressed("L002", 1));
        assert!(!src.suppressed("L001", 3));
    }

    #[test]
    fn cfg_test_items_are_masked() {
        let src = LintSource::new(
            "crates/core/src/x.rs",
            "fn live() { real(); }\n#[cfg(test)]\nmod tests {\n    fn t() { masked(); }\n}\n",
        );
        let texts: Vec<&str> = src.code.iter().map(|t| src.tok_text(t)).collect();
        assert!(texts.contains(&"real"));
        assert!(!texts.contains(&"masked"));
        assert!(!texts.contains(&"cfg"));
    }

    #[test]
    fn fixture_crate_directive_wins() {
        let src = LintSource::new(
            "tests/fixtures/lint/x.rs",
            "// exq-lint-fixture: crate=relstore\nfn f() {}\n",
        );
        assert_eq!(src.krate, "relstore");
    }
}
