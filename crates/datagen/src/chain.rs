//! The adversarial chain of Example 3.7 / Figure 5.
//!
//! Schema `R1(a)`, `R2(b)`, `R3(c, a, b)` with two back-and-forth keys
//! `R3.a ↪ R1.a` and `R3.b ↪ R2.b`. With `p` segments the instance has
//! `n = 4p + 1` tuples:
//!
//! * `R1 = {r_1, …, r_p}`,
//! * `R2 = {t_0, …, t_p}`,
//! * `R3 = {s_1a, s_1b, …, s_pa, s_pb}` where `s_ia = (c_ia, r_i, t_{i−1})`
//!   and `s_ib = (c_ib, r_i, t_i)`.
//!
//! For `φ: [R3.c = c_1a]`, program **P** alternates Rules (ii) and (iii)
//! down the chain and needs exactly `n − 1 = 4p` iterations — the witness
//! that the Proposition 3.4 bound is essentially tight and that recursion
//! is unavoidable when a relation carries two back-and-forth keys
//! (Section 3.3).

use exq_relstore::{Database, SchemaBuilder, Value, ValueType as T};

/// The Example 3.7 schema.
pub fn chain_schema() -> exq_relstore::DatabaseSchema {
    SchemaBuilder::new()
        .relation("R1", &[("a", T::Str)], &["a"])
        .relation("R2", &[("b", T::Str)], &["b"])
        .relation("R3", &[("c", T::Str), ("a", T::Str), ("b", T::Str)], &["c"])
        .back_and_forth_fk("R3", &["a"], "R1")
        .back_and_forth_fk("R3", &["b"], "R2")
        .build()
        .expect("static schema is valid")
}

/// Build the chain instance with `p ≥ 1` segments (`4p + 1` tuples).
pub fn chain(p: usize) -> Database {
    assert!(p >= 1, "need at least one segment");
    let mut db = Database::new(chain_schema());
    for i in 1..=p {
        db.insert("R1", vec![Value::str(format!("r{i}"))]).unwrap();
    }
    for i in 0..=p {
        db.insert("R2", vec![Value::str(format!("t{i}"))]).unwrap();
    }
    for i in 1..=p {
        db.insert(
            "R3",
            vec![
                Value::str(format!("c{i}a")),
                Value::str(format!("r{i}")),
                Value::str(format!("t{}", i - 1)),
            ],
        )
        .unwrap();
        db.insert(
            "R3",
            vec![
                Value::str(format!("c{i}b")),
                Value::str(format!("r{i}")),
                Value::str(format!("t{i}")),
            ],
        )
        .unwrap();
    }
    db.validate().expect("chain instance is valid");
    db
}

/// The explanation `φ: [R3.c = c1a]` that triggers the full cascade.
pub fn chain_phi(db: &Database) -> exq_relstore::Conjunction {
    let c = db.schema().attr("R3", "c").expect("chain schema");
    exq_relstore::Conjunction::new(vec![exq_relstore::Atom::eq(c, "c1a")])
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::Universal;

    #[test]
    fn sizes_match_formula() {
        for p in [1, 2, 5, 10] {
            let db = chain(p);
            assert_eq!(db.total_tuples(), 4 * p + 1, "n = 4p + 1 for p={p}");
            assert_eq!(db.relation_len(0), p);
            assert_eq!(db.relation_len(1), p + 1);
            assert_eq!(db.relation_len(2), 2 * p);
        }
    }

    #[test]
    fn instance_is_semijoin_reduced() {
        let db = chain(3);
        let view = db.full_view();
        assert!(exq_relstore::semijoin::is_reduced(&db, &view));
        let u = Universal::compute(&db, &view);
        assert_eq!(u.len(), 2 * 3, "one universal tuple per R3 row");
    }

    #[test]
    fn schema_requires_recursion() {
        let db = chain(2);
        let g = db.schema().causal_graph();
        assert_eq!(g.max_back_and_forth_per_relation(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_rejected() {
        chain(0);
    }
}
