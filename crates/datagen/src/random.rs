//! Random tree-schema databases for property-based testing.
//!
//! Generates an arbitrary acyclic schema (a random tree over `k`
//! relations, each foreign key independently standard or back-and-forth)
//! and a random instance, then semijoin-reduces and materializes it so the
//! result satisfies the paper's standing assumptions (referential
//! integrity, global consistency). This exercises program **P** far beyond
//! the fixed DBLP shape: multiple back-and-forth keys per relation
//! (recursion required), deep cascades, mixed key kinds.

use exq_relstore::{semijoin, Database, SchemaBuilder, Value, ValueType as T};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for the random generator.
#[derive(Debug, Clone)]
pub struct RandomDbConfig {
    /// Number of relations (≥ 1); the schema is a random tree over them.
    pub relations: usize,
    /// Rows generated per relation before reduction.
    pub rows_per_relation: usize,
    /// Distinct primary-key values per relation (smaller → denser joins).
    pub key_domain: usize,
    /// Probability that a foreign key is back-and-forth.
    pub back_and_forth_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDbConfig {
    fn default() -> RandomDbConfig {
        RandomDbConfig {
            relations: 4,
            rows_per_relation: 12,
            key_domain: 8,
            back_and_forth_probability: 0.5,
            seed: 0,
        }
    }
}

/// Generate a random, validated, semijoin-reduced instance. Returns
/// `None` when the reduction empties the instance (possible for sparse
/// draws) — callers typically resample.
pub fn random_tree_db(config: &RandomDbConfig) -> Option<Database> {
    assert!(config.relations >= 1);
    assert!(config.key_domain >= 1);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let k = config.relations;

    // Random tree: parent(i) ∈ [0, i) for i ≥ 1. Relation i has a pk
    // `id`, a data attribute, and one fk column per *child* — no: fks go
    // from child to parent, so relation i (i ≥ 1) carries `parent_id`.
    let parents: Vec<usize> = (0..k)
        .map(|i| if i == 0 { 0 } else { rng.random_range(0..i) })
        .collect();

    let mut b = SchemaBuilder::new();
    for i in 0..k {
        let name = format!("R{i}");
        if i == 0 {
            b = b.relation(&name, &[("id", T::Int), ("data", T::Str)], &["id"]);
        } else {
            b = b.relation(
                &name,
                &[("id", T::Int), ("parent_id", T::Int), ("data", T::Str)],
                &["id"],
            );
        }
    }
    let mut kinds = Vec::with_capacity(k);
    kinds.push(false);
    for (i, &parent_idx) in parents.iter().enumerate().skip(1) {
        let name = format!("R{i}");
        let parent = format!("R{parent_idx}");
        let bf = rng.random::<f64>() < config.back_and_forth_probability;
        kinds.push(bf);
        b = if bf {
            b.back_and_forth_fk(&name, &["parent_id"], &parent)
        } else {
            b.standard_fk(&name, &["parent_id"], &parent)
        };
    }
    let schema = b.build().expect("random tree schema is acyclic");
    let mut db = Database::new(schema);

    // Instance: distinct pk values per relation; children reference
    // random *existing* parent keys so referential integrity holds by
    // construction.
    let mut keys_of: Vec<Vec<i64>> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut keys: Vec<i64> = (0..config.key_domain as i64).collect();
        // Keep a random non-empty subset.
        keys.retain(|_| rng.random::<f64>() < 0.8);
        if keys.is_empty() {
            keys.push(0);
        }
        keys.truncate(config.rows_per_relation);
        keys_of.push(keys);
    }
    for i in 0..k {
        let name = format!("R{i}");
        // Clone the key list to appease the borrow checker (parent keys
        // are read while inserting child rows).
        let keys = keys_of[i].clone();
        for &key in &keys {
            let data = Value::str(format!("v{}", rng.random_range(0..4)));
            if i == 0 {
                db.insert(&name, vec![Value::Int(key), data]).unwrap();
            } else {
                let parent_keys = &keys_of[parents[i]];
                let parent = parent_keys[rng.random_range(0..parent_keys.len())];
                db.insert(&name, vec![Value::Int(key), Value::Int(parent), data])
                    .unwrap();
            }
        }
    }
    db.validate().expect("generated instance has valid keys");

    // Reduce and materialize so the instance is globally consistent.
    let reduced = semijoin::reduce(&db, &db.full_view());
    if reduced.live.iter().any(|l| l.is_empty()) {
        return None;
    }
    let db = db.materialize(&reduced);
    db.validate().expect("reduced instance stays valid");
    debug_assert!(semijoin::is_reduced(&db, &db.full_view()));
    Some(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::Universal;

    #[test]
    fn generated_instances_are_reduced_and_valid() {
        let mut produced = 0;
        for seed in 0..30 {
            let cfg = RandomDbConfig {
                seed,
                relations: 1 + (seed as usize % 5),
                ..Default::default()
            };
            if let Some(db) = random_tree_db(&cfg) {
                produced += 1;
                db.validate().unwrap();
                assert!(exq_relstore::semijoin::is_reduced(&db, &db.full_view()));
                let u = Universal::compute(&db, &db.full_view());
                assert!(!u.is_empty());
            }
        }
        assert!(
            produced >= 20,
            "generator should rarely come up empty, got {produced}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomDbConfig {
            seed: 7,
            ..Default::default()
        };
        let a = random_tree_db(&cfg).unwrap();
        let b = random_tree_db(&cfg).unwrap();
        assert_eq!(a.total_tuples(), b.total_tuples());
        for rel in 0..a.schema().relation_count() {
            for row in 0..a.relation_len(rel) {
                assert_eq!(a.relation(rel).row(row), b.relation(rel).row(row));
            }
        }
    }

    #[test]
    fn schema_variety() {
        // Across seeds we should see both key kinds and varying depth.
        let mut saw_bf = false;
        let mut saw_std = false;
        for seed in 0..20 {
            let cfg = RandomDbConfig {
                seed,
                relations: 4,
                ..Default::default()
            };
            if let Some(db) = random_tree_db(&cfg) {
                saw_bf |= db.schema().has_back_and_forth();
                saw_std |= db.schema().back_and_forth_count() < db.schema().foreign_keys().len();
            }
        }
        assert!(saw_bf && saw_std);
    }

    #[test]
    fn single_relation_works() {
        let cfg = RandomDbConfig {
            relations: 1,
            seed: 3,
            ..Default::default()
        };
        let db = random_tree_db(&cfg).unwrap();
        assert_eq!(db.schema().relation_count(), 1);
        assert!(db.relation_len(0) > 0);
    }
}
