//! Synthetic DBLP-style bibliography (the Section 1 / Section 5.2 "bump"
//! dataset).
//!
//! The paper integrates DBLP with an affiliation table and observes that
//! industrial SIGMOD publications decline after ~2004 while academic ones
//! keep growing (Figure 1); the top explanations are prolific industrial
//! labs/authors of the 90s and academic groups that grew in the 2000s
//! (Figure 2). The real dataset cannot be shipped, so this generator
//! produces a seeded instance with the same statistical *shape*:
//!
//! * institution-level activity profiles — industrial labs (`ibm.com`,
//!   `bell-labs.com`, …) peak in the 90s and decline after 2004; a group
//!   of "rising" academic departments (`asu.edu`, `utah.edu`, `gwu.edu`)
//!   only becomes active in the mid-2000s;
//! * a few named prolific industrial authors concentrated in the 90s;
//! * 1–3 authors per paper, so the back-and-forth key
//!   `Authored.pubid ↪ Publication.pubid` has real fan-out;
//! * every author has at least one paper (the instance is
//!   semijoin-reduced by construction).

use crate::paper_examples::dblp_schema;
use exq_relstore::{Database, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Industrial institutions with (peak-era) weights.
const COM_INSTITUTIONS: &[(&str, f64)] = &[
    ("ibm.com", 3.0),
    ("bell-labs.com", 2.5),
    ("microsoft.com", 1.5),
    ("att.com", 1.0),
    ("hp.com", 0.7),
    ("oracle.com", 0.5),
];

/// Established academic institutions (steady growth).
const EDU_ESTABLISHED: &[(&str, f64)] = &[
    ("mit.edu", 1.5),
    ("stanford.edu", 1.5),
    ("wisc.edu", 1.3),
    ("berkeley.edu", 1.3),
    ("umich.edu", 1.0),
    ("cmu.edu", 1.0),
    ("ucla.edu", 0.9),
];

/// Academic groups that grow sharply in the mid-2000s (the Figure 2
/// explanations for the academic increase).
const EDU_RISING: &[(&str, f64)] = &[("asu.edu", 1.2), ("utah.edu", 1.0), ("gwu.edu", 0.8)];

/// Named prolific industrial authors of the 90s (stand-ins for the
/// Figure 2 author-level explanations).
const PROLIFIC_COM_AUTHORS: &[(&str, &str)] = &[
    ("Rajeev Rastogi", "bell-labs.com"),
    ("Hamid Pirahesh", "ibm.com"),
    ("Rakesh Agrawal", "ibm.com"),
];

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Baseline papers per year at the start of the range (total volume
    /// scales linearly with this).
    pub papers_per_year_base: usize,
    /// Inclusive year range.
    pub years: (i32, i32),
    /// Authors per institution pool.
    pub authors_per_institution: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> DblpConfig {
        DblpConfig {
            papers_per_year_base: 60,
            years: (1985, 2011),
            authors_per_institution: 12,
            seed: 42,
        }
    }
}

/// Activity multiplier of an industrial lab in `year`: rises through the
/// 90s, flat to 2004, then declines.
fn com_activity(year: i32) -> f64 {
    match year {
        ..=1989 => 0.5,
        1990..=1994 => 1.0,
        1995..=2004 => 1.6,
        2005..=2007 => 0.9,
        _ => 0.45,
    }
}

/// Activity multiplier of an established academic group: steady growth.
fn edu_established_activity(year: i32) -> f64 {
    0.6 + 0.05 * (year - 1985).max(0) as f64
}

/// Activity multiplier of a rising academic group: negligible before
/// 2004, strong after.
fn edu_rising_activity(year: i32) -> f64 {
    match year {
        ..=2003 => 0.05,
        2004..=2006 => 1.0,
        _ => 2.2,
    }
}

struct InstPool {
    inst: String,
    dom: &'static str,
    base_weight: f64,
    /// (author id, productivity weight); ids index into the Author table
    /// once inserted.
    authors: Vec<(String, String, f64)>, // (id, name, weight)
}

/// Generate the database.
pub fn generate(config: &DblpConfig) -> Database {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut db = Database::new(dblp_schema());

    // Build institution pools with author rosters.
    let mut pools: Vec<InstPool> = Vec::new();
    let mut author_seq = 0usize;
    let add_pool = |inst: &str, dom: &'static str, w: f64, seq: &mut usize, rng: &mut SmallRng| {
        let mut authors = Vec::new();
        for i in 0..config.authors_per_institution {
            let id = format!("A{:05}", *seq);
            *seq += 1;
            // Zipf-ish productivity: a few prolific authors per pool.
            let weight = 1.0 / (1.0 + i as f64) + rng.random::<f64>() * 0.1;
            authors.push((id, format!("{} author {i}", inst), weight));
        }
        InstPool {
            inst: inst.to_string(),
            dom,
            base_weight: w,
            authors,
        }
    };
    for &(inst, w) in COM_INSTITUTIONS {
        pools.push(add_pool(inst, "com", w, &mut author_seq, &mut rng));
    }
    for &(inst, w) in EDU_ESTABLISHED {
        pools.push(add_pool(inst, "edu", w, &mut author_seq, &mut rng));
    }
    for &(inst, w) in EDU_RISING {
        pools.push(add_pool(inst, "edu", w, &mut author_seq, &mut rng));
    }
    // Install the named prolific authors at the head of their pools with a
    // large weight so they dominate their lab's 90s output.
    for (name, inst) in PROLIFIC_COM_AUTHORS {
        let pool = pools
            .iter_mut()
            .find(|p| p.inst == *inst)
            .expect("known institution");
        let id = format!("A{author_seq:05}");
        author_seq += 1;
        pool.authors.insert(0, (id, (*name).to_string(), 3.0));
    }

    let rising_start = COM_INSTITUTIONS.len() + EDU_ESTABLISHED.len();
    let pool_activity = |pool_idx: usize, year: i32| -> f64 {
        let p = &pools[pool_idx];
        let era = if p.dom == "com" {
            com_activity(year)
        } else if pool_idx >= rising_start {
            edu_rising_activity(year)
        } else {
            edu_established_activity(year)
        };
        p.base_weight * era
    };

    // Generate publications year by year.
    let mut inserted_authors: HashMap<String, ()> = HashMap::new();
    let mut pub_seq = 0usize;
    let (y0, y1) = config.years;
    for year in y0..=y1 {
        // Total volume grows over time.
        let volume =
            (config.papers_per_year_base as f64 * (1.0 + 0.06 * (year - y0) as f64)) as usize;
        let weights: Vec<f64> = (0..pools.len()).map(|i| pool_activity(i, year)).collect();
        let total_w: f64 = weights.iter().sum();
        for _ in 0..volume {
            // Pick the lead institution.
            let mut pick = rng.random::<f64>() * total_w;
            let mut pool_idx = 0;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    pool_idx = i;
                    break;
                }
                pick -= w;
            }
            let pool = &pools[pool_idx];

            // Venue: mostly SIGMOD, some VLDB/ICDE/PODS noise.
            let venue = match rng.random_range(0..10) {
                0..=5 => "SIGMOD",
                6..=7 => "VLDB",
                8 => "ICDE",
                _ => "PODS",
            };
            let pubid = format!("P{pub_seq:06}");
            pub_seq += 1;
            db.insert(
                "Publication",
                vec![Value::str(&pubid), year.into(), venue.into()],
            )
            .expect("publication row");

            // 1-3 authors from the pool, weighted by productivity, no
            // repeats within a paper.
            let n_authors = 1 + rng.random_range(0..3).min(rng.random_range(0..3));
            let author_w: f64 = pool.authors.iter().map(|a| a.2).sum();
            let mut chosen: Vec<usize> = Vec::with_capacity(n_authors);
            for _ in 0..n_authors {
                let mut pick = rng.random::<f64>() * author_w;
                let mut idx = 0;
                for (i, a) in pool.authors.iter().enumerate() {
                    if pick < a.2 {
                        idx = i;
                        break;
                    }
                    pick -= a.2;
                }
                if !chosen.contains(&idx) {
                    chosen.push(idx);
                }
            }
            for idx in chosen {
                let (id, name, _) = &pool.authors[idx];
                if inserted_authors.insert(id.clone(), ()).is_none() {
                    db.insert(
                        "Author",
                        vec![
                            Value::str(id),
                            Value::str(name),
                            Value::str(&pool.inst),
                            pool.dom.into(),
                        ],
                    )
                    .expect("author row");
                }
                db.insert("Authored", vec![Value::str(id), Value::str(&pubid)])
                    .expect("authored row");
            }
        }
    }

    db.validate()
        .expect("generated instance satisfies all constraints");
    db
}

/// Count distinct publications matching venue/domain/year-window — the
/// series behind Figure 1.
pub fn window_count(
    db: &Database,
    u: &exq_relstore::Universal,
    venue: &str,
    dom: &str,
    years: (i32, i32),
) -> f64 {
    use exq_relstore::aggregate::{evaluate, AggFunc};
    use exq_relstore::Predicate;
    let schema = db.schema();
    let sel = Predicate::and([
        Predicate::eq(schema.attr("Publication", "venue").unwrap(), venue),
        Predicate::eq(schema.attr("Author", "dom").unwrap(), dom),
        Predicate::between(
            schema.attr("Publication", "year").unwrap(),
            years.0,
            years.1,
        ),
    ]);
    let pubid = schema.attr("Publication", "pubid").unwrap();
    evaluate(db, u, &sel, &AggFunc::CountDistinct(pubid)).expect("count query")
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::Universal;

    fn small() -> Database {
        generate(&DblpConfig {
            papers_per_year_base: 20,
            ..DblpConfig::default()
        })
    }

    #[test]
    fn generated_instance_is_valid_and_reduced() {
        let db = small();
        db.validate().unwrap();
        assert!(exq_relstore::semijoin::is_reduced(&db, &db.full_view()));
        assert!(db.relation_len(0) > 50, "authors exist");
        assert!(db.relation_len(2) > 500, "publications exist");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&DblpConfig {
            papers_per_year_base: 10,
            ..DblpConfig::default()
        });
        let b = generate(&DblpConfig {
            papers_per_year_base: 10,
            ..DblpConfig::default()
        });
        assert_eq!(a.total_tuples(), b.total_tuples());
        let ua = Universal::compute(&a, &a.full_view());
        let ub = Universal::compute(&b, &b.full_view());
        assert_eq!(ua.len(), ub.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DblpConfig {
            papers_per_year_base: 10,
            seed: 1,
            ..DblpConfig::default()
        });
        let b = generate(&DblpConfig {
            papers_per_year_base: 10,
            seed: 2,
            ..DblpConfig::default()
        });
        assert_ne!(a.total_tuples(), b.total_tuples());
    }

    #[test]
    fn bump_shape_holds() {
        // The Figure 1 phenomenon: com counts fall from 2000-04 to
        // 2007-11, edu counts rise.
        let db = small();
        let u = Universal::compute(&db, &db.full_view());
        let com_early = window_count(&db, &u, "SIGMOD", "com", (2000, 2004));
        let com_late = window_count(&db, &u, "SIGMOD", "com", (2007, 2011));
        let edu_early = window_count(&db, &u, "SIGMOD", "edu", (2000, 2004));
        let edu_late = window_count(&db, &u, "SIGMOD", "edu", (2007, 2011));
        assert!(
            com_early > com_late,
            "industrial decline: {com_early} vs {com_late}"
        );
        assert!(
            edu_late > edu_early,
            "academic growth: {edu_early} vs {edu_late}"
        );
    }

    #[test]
    fn prolific_authors_present() {
        let db = small();
        let name = db.schema().attr("Author", "name").unwrap();
        let names: Vec<String> = (0..db.relation_len(0))
            .map(|r| db.value(name, r).to_string())
            .collect();
        for (expected, _) in PROLIFIC_COM_AUTHORS {
            assert!(names.iter().any(|n| n == expected), "{expected} missing");
        }
    }
}
