//! Synthetic natality dataset (Section 5.1).
//!
//! The paper uses the CDC/NCHS 2010 natality file (4,007,106 births, 233
//! attributes) to explain APGAR-score observations. That file cannot be
//! shipped, so this generator produces a seeded single-table instance with
//! the attributes the experiments use and a probabilistic model encoding
//! the correlations the paper's findings rest on:
//!
//! * race mix ≈ Figure 7's marginals (White ≫ Black > Asian > Am. Indian);
//! * Asian mothers skew married / educated / older / non-smoking / early
//!   prenatal care (so those predicates become the Figure 10 top
//!   explanations for `Q_Race`);
//! * the probability of a poor APGAR score rises with smoking, late or no
//!   prenatal care, low education, teen or missing-covariate pregnancies,
//!   and unmarried status (calibrated so the good/poor ratio is ≈ 60–80
//!   for favourable strata and the `Q_Marital` double ratio lands near the
//!   paper's 1.46).
//!
//! The schema is a single relation with no foreign keys, so COUNT(*)
//! numerical queries are intervention-additive and the cube pipeline
//! (Algorithm 1) applies exactly, as in the paper's Section 5.1 runs.

use exq_relstore::{Database, SchemaBuilder, Value, ValueType as T};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Attribute domains (recoded in groups like the paper's Section 5.1.1).
pub mod domains {
    /// APGAR recoded: `[7,10] = good`, `[0,6] = poor`.
    pub const AP: &[&str] = &["good", "poor"];
    /// Race of the mother.
    pub const RACE: &[&str] = &["White", "Black", "AmInd", "Asian"];
    /// Marital status.
    pub const MARITAL: &[&str] = &["married", "unmarried"];
    /// Age groups.
    pub const AGE: &[&str] = &["<15", "15-19", "20-24", "25-29", "30-34", "35-39", "40-44"];
    /// Tobacco use during pregnancy.
    pub const TOBACCO: &[&str] = &["smoking", "non smoking"];
    /// Month prenatal care began.
    pub const PRENATAL: &[&str] = &["1st trim", "2nd trim", "3rd trim", "none"];
    /// Education groups.
    pub const EDU: &[&str] = &["<9yrs", "9-11yrs", "12yrs", "13-15yrs", ">=16yrs"];
    /// Sex of the infant.
    pub const SEX: &[&str] = &["M", "F"];
    /// Yes/no flags.
    pub const FLAG: &[&str] = &["yes", "no"];
}

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct NatalityConfig {
    /// Number of rows (the real file has ~4M; benches sweep this).
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NatalityConfig {
    fn default() -> NatalityConfig {
        NatalityConfig {
            rows: 50_000,
            seed: 7,
        }
    }
}

/// The natality schema: one relation, no foreign keys.
pub fn natality_schema() -> exq_relstore::DatabaseSchema {
    SchemaBuilder::new()
        .relation(
            "Natality",
            &[
                ("id", T::Int),
                ("ap", T::Str),
                ("race", T::Str),
                ("marital", T::Str),
                ("age", T::Str),
                ("tobacco", T::Str),
                ("prenatal", T::Str),
                ("edu", T::Str),
                ("sex", T::Str),
                ("hypertension", T::Str),
                ("diabetes", T::Str),
            ],
            &["id"],
        )
        .build()
        .expect("static schema is valid")
}

fn pick<'a>(rng: &mut SmallRng, choices: &[(&'a str, f64)]) -> &'a str {
    let total: f64 = choices.iter().map(|c| c.1).sum();
    let mut x = rng.random::<f64>() * total;
    for (v, w) in choices {
        if x < *w {
            return v;
        }
        x -= w;
    }
    choices.last().expect("non-empty choices").0
}

/// Generate the database.
pub fn generate(config: &NatalityConfig) -> Database {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut db = Database::new(natality_schema());

    for id in 0..config.rows {
        // Race marginals ≈ Figure 7.
        let race = pick(
            &mut rng,
            &[
                ("White", 0.764),
                ("Black", 0.158),
                ("AmInd", 0.012),
                ("Asian", 0.066),
            ],
        );

        // Favourability of the mother's circumstances, race-dependent so
        // that Asian > White > AmInd > Black in aggregate outcome.
        let favour: f64 = match race {
            "Asian" => 0.85,
            "White" => 0.70,
            "AmInd" => 0.55,
            _ => 0.50,
        };

        let married = rng.random::<f64>() < favour * 0.9;
        let marital = if married { "married" } else { "unmarried" };

        // Age skews older when married/favourable.
        let age = if married {
            pick(
                &mut rng,
                &[
                    ("<15", 0.001),
                    ("15-19", 0.02),
                    ("20-24", 0.15),
                    ("25-29", 0.28),
                    ("30-34", 0.30),
                    ("35-39", 0.18),
                    ("40-44", 0.07),
                ],
            )
        } else {
            pick(
                &mut rng,
                &[
                    ("<15", 0.01),
                    ("15-19", 0.20),
                    ("20-24", 0.35),
                    ("25-29", 0.22),
                    ("30-34", 0.13),
                    ("35-39", 0.07),
                    ("40-44", 0.02),
                ],
            )
        };

        let smoking = rng.random::<f64>() < (1.0 - favour) * 0.25;
        let tobacco = if smoking { "smoking" } else { "non smoking" };

        let prenatal = if rng.random::<f64>() < favour {
            "1st trim"
        } else {
            pick(
                &mut rng,
                &[
                    ("1st trim", 0.4),
                    ("2nd trim", 0.35),
                    ("3rd trim", 0.15),
                    ("none", 0.10),
                ],
            )
        };

        let edu = if rng.random::<f64>() < favour {
            pick(
                &mut rng,
                &[("12yrs", 0.2), ("13-15yrs", 0.3), (">=16yrs", 0.5)],
            )
        } else {
            pick(
                &mut rng,
                &[
                    ("<9yrs", 0.12),
                    ("9-11yrs", 0.28),
                    ("12yrs", 0.35),
                    ("13-15yrs", 0.18),
                    (">=16yrs", 0.07),
                ],
            )
        };

        let sex = if rng.random::<f64>() < 0.512 {
            "M"
        } else {
            "F"
        };
        let hypertension = if rng.random::<f64>() < 0.05 {
            "yes"
        } else {
            "no"
        };
        let diabetes = if rng.random::<f64>() < 0.06 {
            "yes"
        } else {
            "no"
        };

        // Poor-outcome log-odds style accumulation (base rate ~1.2%).
        let mut poor = 0.012;
        if smoking {
            poor += 0.012;
        }
        match prenatal {
            "3rd trim" => poor += 0.008,
            "none" => poor += 0.025,
            "2nd trim" => poor += 0.003,
            _ => {}
        }
        match edu {
            "<9yrs" => poor += 0.010,
            "9-11yrs" => poor += 0.007,
            _ => {}
        }
        match age {
            "<15" => poor += 0.020,
            "15-19" => poor += 0.006,
            "40-44" => poor += 0.008,
            _ => {}
        }
        if !married {
            poor += 0.004;
        }
        if hypertension == "yes" {
            poor += 0.010;
        }
        if diabetes == "yes" {
            poor += 0.004;
        }
        let ap = if rng.random::<f64>() < poor {
            "poor"
        } else {
            "good"
        };

        db.insert(
            "Natality",
            vec![
                Value::Int(id as i64),
                ap.into(),
                race.into(),
                marital.into(),
                age.into(),
                tobacco.into(),
                prenatal.into(),
                edu.into(),
                sex.into(),
                hypertension.into(),
                diabetes.into(),
            ],
        )
        .expect("natality row");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::aggregate::{evaluate, AggFunc};
    use exq_relstore::{Predicate, Universal};

    fn counts(db: &Database, pairs: &[(&str, &str)]) -> f64 {
        let u = Universal::compute(db, &db.full_view());
        let sel = Predicate::and(
            pairs
                .iter()
                .map(|(a, v)| Predicate::eq(db.schema().attr("Natality", a).unwrap(), *v)),
        );
        evaluate(db, &u, &sel, &AggFunc::CountStar).unwrap()
    }

    #[test]
    fn marginals_are_plausible() {
        let db = generate(&NatalityConfig {
            rows: 20_000,
            seed: 7,
        });
        assert_eq!(db.total_tuples(), 20_000);
        let white = counts(&db, &[("race", "White")]);
        let asian = counts(&db, &[("race", "Asian")]);
        assert!(white / 20_000.0 > 0.70);
        assert!(asian / 20_000.0 > 0.04 && asian / 20_000.0 < 0.10);
    }

    #[test]
    fn q_race_shape() {
        // good/poor ratio for Asian must exceed that for Black (Figure 8).
        let db = generate(&NatalityConfig {
            rows: 60_000,
            seed: 7,
        });
        let ratio = |race: &str| {
            counts(&db, &[("race", race), ("ap", "good")])
                / counts(&db, &[("race", race), ("ap", "poor")]).max(1.0)
        };
        assert!(
            ratio("Asian") > ratio("Black"),
            "{} vs {}",
            ratio("Asian"),
            ratio("Black")
        );
        assert!(ratio("White") > ratio("Black"));
    }

    #[test]
    fn q_marital_shape() {
        // The double ratio (married good/poor) / (unmarried good/poor)
        // is > 1 (the paper reports 1.46).
        let db = generate(&NatalityConfig {
            rows: 60_000,
            seed: 7,
        });
        let married = counts(&db, &[("marital", "married"), ("ap", "good")])
            / counts(&db, &[("marital", "married"), ("ap", "poor")]).max(1.0);
        let unmarried = counts(&db, &[("marital", "unmarried"), ("ap", "good")])
            / counts(&db, &[("marital", "unmarried"), ("ap", "poor")]).max(1.0);
        let q = married / unmarried;
        assert!(q > 1.1 && q < 3.0, "Q_Marital = {q}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&NatalityConfig {
            rows: 1000,
            seed: 3,
        });
        let b = generate(&NatalityConfig {
            rows: 1000,
            seed: 3,
        });
        for r in 0..1000 {
            assert_eq!(a.relation(0).row(r), b.relation(0).row(r));
        }
    }

    #[test]
    fn favourable_strata_have_better_outcomes() {
        let db = generate(&NatalityConfig {
            rows: 60_000,
            seed: 7,
        });
        let ratio = |pairs: &[(&str, &str)]| {
            let mut good = pairs.to_vec();
            good.push(("ap", "good"));
            let mut poor = pairs.to_vec();
            poor.push(("ap", "poor"));
            counts(&db, &good) / counts(&db, &poor).max(1.0)
        };
        assert!(ratio(&[("tobacco", "non smoking")]) > ratio(&[("tobacco", "smoking")]));
        assert!(ratio(&[("prenatal", "1st trim")]) > ratio(&[("prenatal", "none")]));
        assert!(ratio(&[("edu", ">=16yrs")]) > ratio(&[("edu", "9-11yrs")]));
    }
}
