//! The exact instances used in the paper's running examples: Figure 3
//! (Example 2.2), Example 2.9, and Example 2.10.

use exq_relstore::{Database, Result, SchemaBuilder, ValueType as T};

/// The running example's schema with the Eq. (2) foreign keys:
/// `Authored.id → Author.id` (standard) and
/// `Authored.pubid ↪ Publication.pubid` (back-and-forth).
pub fn dblp_schema() -> exq_relstore::DatabaseSchema {
    SchemaBuilder::new()
        .relation(
            "Author",
            &[
                ("id", T::Str),
                ("name", T::Str),
                ("inst", T::Str),
                ("dom", T::Str),
            ],
            &["id"],
        )
        .relation(
            "Authored",
            &[("id", T::Str), ("pubid", T::Str)],
            &["id", "pubid"],
        )
        .relation(
            "Publication",
            &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
            &["pubid"],
        )
        .standard_fk("Authored", &["id"], "Author")
        .back_and_forth_fk("Authored", &["pubid"], "Publication")
        .build()
        .expect("static schema is valid")
}

/// The same schema with both keys standard (for the Example 2.8 contrast).
pub fn dblp_schema_standard_only() -> exq_relstore::DatabaseSchema {
    SchemaBuilder::new()
        .relation(
            "Author",
            &[
                ("id", T::Str),
                ("name", T::Str),
                ("inst", T::Str),
                ("dom", T::Str),
            ],
            &["id"],
        )
        .relation(
            "Authored",
            &[("id", T::Str), ("pubid", T::Str)],
            &["id", "pubid"],
        )
        .relation(
            "Publication",
            &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
            &["pubid"],
        )
        .standard_fk("Authored", &["id"], "Author")
        .standard_fk("Authored", &["pubid"], "Publication")
        .build()
        .expect("static schema is valid")
}

fn fill_figure3(db: &mut Database) -> Result<()> {
    for (id, name, inst, dom) in [
        ("A1", "JG", "C.edu", "edu"),
        ("A2", "RR", "M.com", "com"),
        ("A3", "CM", "I.com", "com"),
    ] {
        db.insert(
            "Author",
            vec![id.into(), name.into(), inst.into(), dom.into()],
        )?;
    }
    // Row ids match the paper's s1..s6.
    for (id, pubid) in [
        ("A1", "P1"),
        ("A2", "P1"),
        ("A1", "P2"),
        ("A3", "P2"),
        ("A2", "P3"),
        ("A3", "P3"),
    ] {
        db.insert("Authored", vec![id.into(), pubid.into()])?;
    }
    // t1..t3.
    for (pubid, year, venue) in [
        ("P1", 2001, "SIGMOD"),
        ("P2", 2011, "VLDB"),
        ("P3", 2001, "SIGMOD"),
    ] {
        db.insert("Publication", vec![pubid.into(), year.into(), venue.into()])?;
    }
    db.validate()
}

/// The Figure 3 instance (three authors, three publications, six
/// authorship records), semijoin-reduced, with the Eq. (2) foreign keys.
pub fn figure3() -> Database {
    let mut db = Database::new(dblp_schema());
    fill_figure3(&mut db).expect("static instance is valid");
    db
}

/// The Figure 3 instance over the standard-only schema.
pub fn figure3_standard_only() -> Database {
    let mut db = Database::new(dblp_schema_standard_only());
    fill_figure3(&mut db).expect("static instance is valid");
    db
}

/// Example 2.9's path schema and instance:
/// `D = {R1(a), S1(a,b), R2(b), S2(b,c), R3(c)}` with four standard keys.
pub fn example_29() -> Database {
    let schema = SchemaBuilder::new()
        .relation("R1", &[("x", T::Str)], &["x"])
        .relation("S1", &[("x", T::Str), ("y", T::Str)], &["x", "y"])
        .relation("R2", &[("y", T::Str)], &["y"])
        .relation("S2", &[("y", T::Str), ("z", T::Str)], &["y", "z"])
        .relation("R3", &[("z", T::Str)], &["z"])
        .standard_fk("S1", &["x"], "R1")
        .standard_fk("S1", &["y"], "R2")
        .standard_fk("S2", &["y"], "R2")
        .standard_fk("S2", &["z"], "R3")
        .build()
        .expect("static schema is valid");
    let mut db = Database::new(schema);
    db.insert("R1", vec!["a".into()]).unwrap();
    db.insert("S1", vec!["a".into(), "b".into()]).unwrap();
    db.insert("R2", vec!["b".into()]).unwrap();
    db.insert("S2", vec!["b".into(), "c".into()]).unwrap();
    db.insert("R3", vec!["c".into()]).unwrap();
    db.validate().expect("static instance is valid");
    db
}

/// Example 2.10: Example 2.9 plus `S1(a,b')`, `R2(b')`, `S2(b',c)` — the
/// instance showing `Δ^φ` is *non-monotone* in the input database.
pub fn example_210() -> Database {
    let mut db = example_29();
    db.insert("S1", vec!["a".into(), "b2".into()]).unwrap();
    db.insert("R2", vec!["b2".into()]).unwrap();
    db.insert("S2", vec!["b2".into(), "c".into()]).unwrap();
    db.validate().expect("static instance is valid");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::Universal;

    #[test]
    fn figure3_matches_figure4() {
        let db = figure3();
        assert_eq!(db.total_tuples(), 12);
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(u.len(), 6, "Figure 4 has six universal tuples");
        assert!(db.schema().has_back_and_forth());
    }

    #[test]
    fn standard_variant_differs_only_in_fk_kind() {
        let db = figure3_standard_only();
        assert!(!db.schema().has_back_and_forth());
        assert_eq!(db.total_tuples(), 12);
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(u.len(), 6);
    }

    #[test]
    fn example_29_is_reduced_path() {
        let db = example_29();
        assert_eq!(db.total_tuples(), 5);
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(u.len(), 1, "a single join path a-b-c");
    }

    #[test]
    fn example_210_has_two_paths() {
        let db = example_210();
        assert_eq!(db.total_tuples(), 8);
        let u = Universal::compute(&db, &db.full_view());
        assert_eq!(u.len(), 2, "paths a-b-c and a-b2-c");
    }
}
