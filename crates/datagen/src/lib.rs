//! # exq-datagen — seeded synthetic datasets for the explanation engine
//!
//! The paper evaluates on two real datasets (the CDC natality file and
//! DBLP integrated with Geo-DBLP) that cannot be shipped. This crate
//! provides seeded generators reproducing their schemas and the
//! statistical *shape* the experiments depend on, plus the exact instances
//! of the paper's running examples and the adversarial convergence chain:
//!
//! * [`paper_examples`] — Figure 3 / Example 2.9 / Example 2.10,
//! * [`chain`] — the Example 3.7 / Figure 5 instance needing `n − 1`
//!   fixpoint iterations,
//! * [`dblp`] — the Figure 1/2 "SIGMOD bump" bibliography,
//! * [`natality`] — the Section 5.1 APGAR dataset,
//! * [`geodblp`] — the Section 5.2 8-table DBLP ⋈ Geo-DBLP integration.
//!
//! All generators are deterministic given their config's `seed`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chain;
pub mod dblp;
pub mod geodblp;
pub mod natality;
pub mod paper_examples;
pub mod random;
