//! Synthetic DBLP ⋈ Geo-DBLP integration (Section 5.2 / Figure 15).
//!
//! The paper joins three DBLP tables with five Geo-DBLP tables (crawled
//! affiliation / city / country data) and asks why the UK has *more* PODS
//! than SIGMOD papers in 2001–2011 — `(Q, low)` with `Q = q1/q2`, both
//! eight-table joins. This generator reproduces the 8-relation join tree
//! and the statistical signal:
//!
//! * UK institutions are PODS-heavy (>50% of their SIGMOD∪PODS output),
//!   other countries SIGMOD-heavy;
//! * Oxford hosts two PODS-leaning institutions (`Oxford Univ.` and
//!   `Semmle Ltd.`), so the city-level explanation `[city = Oxford]`
//!   outranks the institution-level one, as in Figure 15b;
//! * exactly one crawled affiliation record per publication, which makes
//!   `COUNT(DISTINCT pubid)` intervention-additive (every `Authored` row
//!   appears in exactly one universal row) so the cube pipeline applies.
//!
//! Schema (arrows = foreign keys; ↪ = back-and-forth):
//!
//! ```text
//! Author(id, name)                     AuthorG(agid, gname)
//!   ▲ id                                  ▲ agid
//! Authored(id, pubid) ─pubid↪ Publication(pubid, year, venue)
//!                                       ▲ pubid
//!        AffilRec(arid, pubid, agid, affid) ─affid→ AffiliationG(affid, inst, cityid)
//!                                                       │ cityid
//!                                                       ▼
//!                                      CityG(cityid, city, countryid) ─→ CountryG(countryid, country)
//! ```

use exq_relstore::{Database, SchemaBuilder, Value, ValueType as T};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Countries with publication share and PODS share (of SIGMOD∪PODS).
const COUNTRIES: &[(&str, f64, f64)] = &[
    ("USA", 0.50, 0.22),
    ("Germany", 0.13, 0.18),
    ("China", 0.10, 0.05),
    ("Canada", 0.09, 0.25),
    ("United Kingdom", 0.08, 0.58),
    ("Netherlands", 0.05, 0.30),
    ("France", 0.05, 0.40),
];

/// Cities and their institutions per country.
#[allow(clippy::type_complexity)] // static nested literal, clearest as-is
const GEOGRAPHY: &[(&str, &[(&str, &[&str])])] = &[
    (
        "USA",
        &[
            ("New York", &["Columbia Univ.", "IBM Research"]),
            ("San Jose", &["IBM Almaden"]),
            ("Madison", &["Univ. of Wisconsin"]),
            ("Stanford", &["Stanford Univ."]),
        ],
    ),
    (
        "Germany",
        &[
            ("Munich", &["TU Munich"]),
            ("Saarbruecken", &["MPI Informatik"]),
        ],
    ),
    (
        "China",
        &[("Beijing", &["Tsinghua Univ."]), ("Hong Kong", &["HKUST"])],
    ),
    (
        "Canada",
        &[
            ("Toronto", &["Univ. of Toronto"]),
            ("Waterloo", &["Univ. of Waterloo"]),
        ],
    ),
    (
        "United Kingdom",
        &[
            ("Oxford", &["Oxford Univ.", "Semmle Ltd."]),
            ("Edinburgh", &["Univ. of Edinburgh"]),
            ("London", &["Imperial College"]),
        ],
    ),
    ("Netherlands", &[("Amsterdam", &["CWI"])]),
    ("France", &[("Paris", &["INRIA"])]),
];

/// Authors per institution pool.
const AUTHORS_PER_INSTITUTION: usize = 5;

/// Configuration.
#[derive(Debug, Clone)]
pub struct GeoDblpConfig {
    /// Number of publications to generate.
    pub papers: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeoDblpConfig {
    fn default() -> GeoDblpConfig {
        GeoDblpConfig {
            papers: 4000,
            seed: 11,
        }
    }
}

/// The 8-relation schema.
pub fn geodblp_schema() -> exq_relstore::DatabaseSchema {
    SchemaBuilder::new()
        .relation("Author", &[("id", T::Str), ("name", T::Str)], &["id"])
        .relation(
            "Authored",
            &[("id", T::Str), ("pubid", T::Str)],
            &["id", "pubid"],
        )
        .relation(
            "Publication",
            &[("pubid", T::Str), ("year", T::Int), ("venue", T::Str)],
            &["pubid"],
        )
        .relation(
            "AffilRec",
            &[
                ("arid", T::Str),
                ("pubid", T::Str),
                ("agid", T::Str),
                ("affid", T::Str),
            ],
            &["arid"],
        )
        .relation("AuthorG", &[("agid", T::Str), ("gname", T::Str)], &["agid"])
        .relation(
            "AffiliationG",
            &[("affid", T::Str), ("inst", T::Str), ("cityid", T::Str)],
            &["affid"],
        )
        .relation(
            "CityG",
            &[("cityid", T::Str), ("city", T::Str), ("countryid", T::Str)],
            &["cityid"],
        )
        .relation(
            "CountryG",
            &[("countryid", T::Str), ("country", T::Str)],
            &["countryid"],
        )
        .standard_fk("Authored", &["id"], "Author")
        .back_and_forth_fk("Authored", &["pubid"], "Publication")
        .standard_fk("AffilRec", &["pubid"], "Publication")
        .standard_fk("AffilRec", &["agid"], "AuthorG")
        .standard_fk("AffilRec", &["affid"], "AffiliationG")
        .standard_fk("AffiliationG", &["cityid"], "CityG")
        .standard_fk("CityG", &["countryid"], "CountryG")
        .build()
        .expect("static schema is valid")
}

/// Name of the institution at flat index `idx` in [`GEOGRAPHY`] order.
fn institution_name(idx: usize) -> &'static str {
    let mut flat = 0usize;
    for (_, cities) in GEOGRAPHY {
        for (_, insts) in *cities {
            for name in *insts {
                if flat == idx {
                    return name;
                }
                flat += 1;
            }
        }
    }
    unreachable!("institution index {idx} out of range")
}

/// Generate the integrated database.
pub fn generate(config: &GeoDblpConfig) -> Database {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut db = Database::new(geodblp_schema());

    // Geography tables.
    struct Inst {
        affid: String,
        country: &'static str,
        authors: Vec<(String, String)>, // (author id, name) — shared pool
    }
    let mut institutions: Vec<Inst> = Vec::new();
    let mut used_insts: Vec<usize> = Vec::new(); // indices inserted lazily? No: insert all geo upfront, prune later is not allowed; instead only insert referenced rows.

    // We must keep the instance semijoin-reduced: only emit geography rows
    // that end up referenced. Generate publication plan first, then emit.
    #[allow(clippy::type_complexity)]
    let mut plan: Vec<(String, i32, &'static str, usize, Vec<usize>)> = Vec::new();
    // (pubid, year, venue, institution index, author indices within pool)

    // Flatten geography into an institution list with country info.
    for (country, cities) in GEOGRAPHY {
        for (city, insts) in *cities {
            for inst in *insts {
                let idx = institutions.len();
                let mut authors = Vec::new();
                for a in 0..AUTHORS_PER_INSTITUTION {
                    authors.push((
                        format!("GA{:04}-{a}", idx),
                        format!("{inst} researcher {a}"),
                    ));
                }
                institutions.push(Inst {
                    affid: format!("AF{idx:03}"),
                    country,
                    authors,
                });
                let _ = city;
            }
        }
    }

    let country_weight = |country: &str| {
        COUNTRIES
            .iter()
            .find(|c| c.0 == country)
            .map(|c| c.1)
            .unwrap_or(0.0)
    };
    let pods_share = |country: &str| {
        COUNTRIES
            .iter()
            .find(|c| c.0 == country)
            .map(|c| c.2)
            .unwrap_or(0.2)
    };

    let inst_weights: Vec<f64> = institutions
        .iter()
        .map(|i| {
            let per_country = institutions
                .iter()
                .filter(|j| j.country == i.country)
                .count() as f64;
            country_weight(i.country) / per_country
        })
        .collect();
    let total_w: f64 = inst_weights.iter().sum();

    for p in 0..config.papers {
        let mut pickw = rng.random::<f64>() * total_w;
        let mut inst_idx = 0;
        for (i, w) in inst_weights.iter().enumerate() {
            if pickw < *w {
                inst_idx = i;
                break;
            }
            pickw -= w;
        }
        let inst = &institutions[inst_idx];
        let year = rng.random_range(2001..=2011);
        // Semmle Ltd. is a theory-heavy outfit: its papers are almost all
        // PODS, which is what pushes [city = Oxford] above
        // [inst = Oxford Univ.] in Figure 15b.
        let inst_name = institution_name(inst_idx);
        let pods_p = if inst_name == "Semmle Ltd." {
            0.9
        } else {
            pods_share(inst.country)
        };
        let venue = if rng.random::<f64>() < pods_p {
            "PODS"
        } else if rng.random::<f64>() < 0.7 {
            "SIGMOD"
        } else {
            "VLDB"
        };
        let n_authors = 1 + usize::from(rng.random::<f64>() < 0.6);
        let mut author_idxs = Vec::with_capacity(n_authors);
        for _ in 0..n_authors {
            let a = rng.random_range(0..AUTHORS_PER_INSTITUTION);
            if !author_idxs.contains(&a) {
                author_idxs.push(a);
            }
        }
        plan.push((format!("P{p:06}"), year, venue, inst_idx, author_idxs));
        if !used_insts.contains(&inst_idx) {
            used_insts.push(inst_idx);
        }
    }

    // Emit geography (referenced rows only).
    let mut emitted_countries: Vec<&str> = Vec::new();
    let mut emitted_cities: Vec<(usize, usize)> = Vec::new(); // (country idx in GEOGRAPHY, city idx)
    let mut inst_city: Vec<Option<String>> = vec![None; institutions.len()];
    {
        // Locate each institution's (country, city) coordinates.
        let mut flat_idx = 0usize;
        for (ci, (country, cities)) in GEOGRAPHY.iter().enumerate() {
            for (cj, (_city, insts)) in cities.iter().enumerate() {
                for _ in *insts {
                    if used_insts.contains(&flat_idx) {
                        inst_city[flat_idx] = Some(format!("CT{ci:02}-{cj:02}"));
                        if !emitted_cities.contains(&(ci, cj)) {
                            emitted_cities.push((ci, cj));
                        }
                        if !emitted_countries.contains(country) {
                            emitted_countries.push(country);
                        }
                    }
                    flat_idx += 1;
                }
            }
        }
    }
    for country in &emitted_countries {
        let ci = GEOGRAPHY
            .iter()
            .position(|g| g.0 == *country)
            .expect("known country");
        db.insert(
            "CountryG",
            vec![Value::str(format!("CO{ci:02}")), (*country).into()],
        )
        .expect("country row");
    }
    for &(ci, cj) in &emitted_cities {
        let city = GEOGRAPHY[ci].1[cj].0;
        db.insert(
            "CityG",
            vec![
                Value::str(format!("CT{ci:02}-{cj:02}")),
                city.into(),
                Value::str(format!("CO{ci:02}")),
            ],
        )
        .expect("city row");
    }
    for &inst_idx in &used_insts {
        let inst_name = institution_name(inst_idx);
        db.insert(
            "AffiliationG",
            vec![
                Value::str(&institutions[inst_idx].affid),
                inst_name.into(),
                Value::str(
                    inst_city[inst_idx]
                        .clone()
                        .expect("used institutions have a city"),
                ),
            ],
        )
        .expect("affiliation row");
    }

    // Emit publications, authors, authored, affil records, geo authors.
    let mut emitted_authors: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut emitted_gauthors: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (p, (pubid, year, venue, inst_idx, author_idxs)) in plan.iter().enumerate() {
        db.insert(
            "Publication",
            vec![Value::str(pubid), (*year).into(), (*venue).into()],
        )
        .expect("publication row");
        let inst = &institutions[*inst_idx];
        for &a in author_idxs {
            let (id, name) = &inst.authors[a];
            if emitted_authors.insert(id.clone()) {
                db.insert("Author", vec![Value::str(id), Value::str(name)])
                    .expect("author row");
            }
            db.insert("Authored", vec![Value::str(id), Value::str(pubid)])
                .expect("authored row");
        }
        // One crawled affiliation record per publication; the geo author is
        // the first author's geo mirror.
        let (gid, gname) = &inst.authors[author_idxs[0]];
        let gaid = format!("G{gid}");
        if emitted_gauthors.insert(gaid.clone()) {
            db.insert("AuthorG", vec![Value::str(&gaid), Value::str(gname)])
                .expect("geo author row");
        }
        db.insert(
            "AffilRec",
            vec![
                Value::str(format!("AR{p:06}")),
                Value::str(pubid),
                Value::str(&gaid),
                Value::str(&inst.affid),
            ],
        )
        .expect("affil record row");
    }

    db.validate()
        .expect("generated instance satisfies all constraints");
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use exq_relstore::aggregate::{evaluate, AggFunc};
    use exq_relstore::{Predicate, Universal};

    fn uk_count(db: &Database, u: &Universal, venue: &str) -> f64 {
        let schema = db.schema();
        let sel = Predicate::and([
            Predicate::eq(
                schema.attr("CountryG", "country").unwrap(),
                "United Kingdom",
            ),
            Predicate::eq(schema.attr("Publication", "venue").unwrap(), venue),
            Predicate::between(schema.attr("Publication", "year").unwrap(), 2001, 2011),
        ]);
        let pubid = schema.attr("Publication", "pubid").unwrap();
        evaluate(db, u, &sel, &AggFunc::CountDistinct(pubid)).unwrap()
    }

    #[test]
    fn eight_relations_one_component() {
        let db = generate(&GeoDblpConfig {
            papers: 300,
            seed: 11,
        });
        assert_eq!(db.schema().relation_count(), 8);
        assert_eq!(db.schema().components().len(), 1);
        db.validate().unwrap();
        assert!(exq_relstore::semijoin::is_reduced(&db, &db.full_view()));
    }

    #[test]
    fn uk_is_pods_heavy_others_are_not() {
        let db = generate(&GeoDblpConfig {
            papers: 3000,
            seed: 11,
        });
        let u = Universal::compute(&db, &db.full_view());
        let uk_pods = uk_count(&db, &u, "PODS");
        let uk_sigmod = uk_count(&db, &u, "SIGMOD");
        assert!(
            uk_pods > uk_sigmod,
            "UK should be PODS-heavy: {uk_pods} PODS vs {uk_sigmod} SIGMOD"
        );

        let schema = db.schema();
        let usa_sel = |venue: &str| {
            Predicate::and([
                Predicate::eq(schema.attr("CountryG", "country").unwrap(), "USA"),
                Predicate::eq(schema.attr("Publication", "venue").unwrap(), venue),
            ])
        };
        let pubid = schema.attr("Publication", "pubid").unwrap();
        let usa_pods = evaluate(&db, &u, &usa_sel("PODS"), &AggFunc::CountDistinct(pubid)).unwrap();
        let usa_sigmod =
            evaluate(&db, &u, &usa_sel("SIGMOD"), &AggFunc::CountDistinct(pubid)).unwrap();
        assert!(usa_sigmod > usa_pods, "USA should be SIGMOD-heavy");
    }

    #[test]
    fn one_affil_record_per_publication_makes_count_distinct_additive() {
        let db = generate(&GeoDblpConfig {
            papers: 500,
            seed: 11,
        });
        let u = Universal::compute(&db, &db.full_view());
        // Each Authored row occurs exactly once in the universal relation.
        let authored = db.schema().relation_index("Authored").unwrap();
        let mut counts = vec![0u32; db.relation_len(authored)];
        for t in u.iter() {
            counts[t[authored] as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn oxford_has_two_institutions() {
        let db = generate(&GeoDblpConfig {
            papers: 3000,
            seed: 11,
        });
        let u = Universal::compute(&db, &db.full_view());
        let schema = db.schema();
        let inst = schema.attr("AffiliationG", "inst").unwrap();
        let city = schema.attr("CityG", "city").unwrap();
        let pubid = schema.attr("Publication", "pubid").unwrap();
        let by_city = evaluate(
            &db,
            &u,
            &Predicate::eq(city, "Oxford"),
            &AggFunc::CountDistinct(pubid),
        )
        .unwrap();
        let by_inst = evaluate(
            &db,
            &u,
            &Predicate::eq(inst, "Oxford Univ."),
            &AggFunc::CountDistinct(pubid),
        )
        .unwrap();
        assert!(
            by_city > by_inst,
            "Semmle Ltd. adds to the Oxford city count"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate(&GeoDblpConfig {
            papers: 200,
            seed: 5,
        });
        let b = generate(&GeoDblpConfig {
            papers: 200,
            seed: 5,
        });
        assert_eq!(a.total_tuples(), b.total_tuples());
    }
}
